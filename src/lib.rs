//! # csqp — client-server query processing tradeoffs
//!
//! A from-scratch Rust reproduction of Franklin, Jónsson and Kossmann,
//! *Performance Tradeoffs for Client-Server Query Processing* (SIGMOD
//! 1996): the data-/query-/hybrid-shipping policy framework, the
//! randomized two-phase query optimizer, the cost model, a detailed
//! discrete-event simulator (CPU, disk with elevator scheduling and
//! controller cache, network), a Volcano-style execution engine with
//! hybrid-hash joins, and the benchmark harness that regenerates every
//! table and figure of the paper's evaluation.
//!
//! This crate is a facade: it re-exports the workspace's crates under
//! stable module names and hosts the repository's examples and
//! cross-crate integration tests. Start with [`prelude`], the
//! `quickstart` example, or the README.
//!
//! ```
//! use csqp::prelude::*;
//!
//! // The paper's 2-way benchmark join on one server (Table 2 settings).
//! let query = csqp::workload::two_way();
//! let catalog = csqp::workload::single_server_placement(&query);
//! let sys = SystemConfig::default();
//!
//! // Optimize for communication under pure query-shipping…
//! let model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT);
//! let optimizer = Optimizer::new(
//!     &model, Policy::QueryShipping, Objective::Communication, OptConfig::fast());
//! let plan = optimizer.optimize(&query, &mut SimRng::seed_from_u64(7)).plan;
//!
//! // …bind it to physical sites and simulate it.
//! let bound = bind(&plan, BindContext { catalog: &catalog, query_site: SiteId::CLIENT })?;
//! let metrics = ExecutionBuilder::new(&query, &catalog, &sys).execute(&bound);
//! assert_eq!(metrics.pages_sent, 250); // ships exactly the result
//! # Ok::<(), csqp::core::BindError>(())
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub use csqp_catalog as catalog;
pub use csqp_core as core;
pub use csqp_cost as cost;
pub use csqp_disk as disk;
pub use csqp_engine as engine;
pub use csqp_experiments as experiments;
pub use csqp_json as json;
pub use csqp_memo as memo;
pub use csqp_net as net;
pub use csqp_optimizer as optimizer;
pub use csqp_serve as serve;
pub use csqp_simkernel as simkernel;
pub use csqp_verify as verify;
pub use csqp_workload as workload;

/// The names almost every user of the library needs.
pub mod prelude {
    pub use csqp_catalog::{BufAlloc, Catalog, QuerySpec, RelId, SiteId, SystemConfig};
    pub use csqp_core::{bind, BindContext, BoundPlan, JoinTree, Plan, Policy};
    pub use csqp_cost::{CostModel, Objective};
    pub use csqp_engine::{ExecutionBuilder, ExecutionMetrics};
    pub use csqp_optimizer::{OptConfig, Optimizer, TwoStepPlanner};
    pub use csqp_simkernel::rng::SimRng;
    pub use csqp_verify::{Checker, DiagCode, Diagnostic, Report};
}
