//! `csqp-check` — drive the static analyzer over generated workloads,
//! optimizer traces, and hand-built negative fixtures.
//!
//! ```text
//! cargo run --release --bin csqp-check -- [--plans N] [--servers M] [--seed S]
//!     [--protocol] [--system] [--memo] [--catalog] [--bounds] [--sessions N]
//!     [--depth D] [--budget-secs S]
//! ```
//!
//! Six stages, any failure exits non-zero (`--protocol` runs only
//! stage 4, `--system` only stage 5, and `--memo` only stage 6 — the
//! modes the CI `lint-and-model` and `memo-bench` jobs use):
//!
//! 1. **Positive sweep** — `--plans` (default 1000) random plans per
//!    policy, drawn across the paper's 2-way, 10-way, and SPJ benchmark
//!    queries, each run through all analyzer passes. Any diagnostic on a
//!    generator-produced plan is a false positive (or a real bug in the
//!    generator) and fails the run.
//! 2. **Optimizer traces** — full two-phase optimizations for every
//!    policy × objective, plus long `random_neighbor` walks, verifying
//!    every plan the search accepts; also a determinism lint over an
//!    exponentially-spaced event schedule.
//! 3. **Negative fixtures** — ten hand-built broken artifacts (cyclic
//!    and DAG-shaped plans, policy violations, negative resource
//!    vectors, inverted cost scaling, a selectivity above one, inverted
//!    disk timings, same-timestamp event ties, a regressing trace). Each
//!    must be flagged with the expected diagnostic code.
//! 4. **Protocol model check** — bounded-exhaustive exploration of the
//!    serving engine's session machine (`csqp_verify::protocol::step`,
//!    the exact transition function the event engine interprets) over
//!    every client/worker/fault interleaving to `--depth` events
//!    (default 8), across a spread of pipeline windows. Asserts no
//!    stuck state, no double reply, window conservation, and that
//!    cancellation releases workers; any violation prints its minimal
//!    event trace.
//! 5. **System model check** — bounded-exhaustive exploration of
//!    `--sessions` composed session machines over a shared admission
//!    queue, worker pool, and completion channel
//!    (`csqp_verify::system::system_step`, whose arbitration the engine
//!    interprets), with symmetry reduction and a bounded-lasso liveness
//!    pass. Asserts worker conservation, bounded overtake, no lost
//!    wakeup, and shutdown-sweep completeness; emits `BENCH_check.json`
//!    (states, states/sec, peak frontier, wall time, symmetry shrink)
//!    so checker-throughput regressions stay visible across PRs.
//!    `--budget-secs` turns the wall-time budget into a hard failure.
//! 6. **Memo consistency** — populate a `csqp-memo` table through the
//!    real memoized two-step entry points over a seeded spec × policy ×
//!    objective × cache-bucket mix, replay the mix asserting every
//!    probe hits with the byte-identical plan, then run
//!    `csqp_verify::memo::check_memo` over every live entry
//!    (fingerprints re-derive from witnesses, plans stay Table-1
//!    conformant, generations and costs are sane).
//! 7. **Catalog drift** (`--catalog`) — replay a seeded catalog-fault
//!    schedule (withheld, torn, reordered, poisoned deliveries) against
//!    a `ReplicatedCatalog`, twice, asserting byte-identical drift
//!    digests; run the `csqp_verify::catalog::check_drift` pass over
//!    the recorded trace; prove an epoch publication forces a memo
//!    recompute; and plant three seeded mutants (over-lag fresh serve,
//!    applied epoch regression, lag misaccounting), each of which must
//!    be caught with its typed diagnostic.
//! 8. **Bound soundness** (`--bounds`) — derive guaranteed worst-case
//!    intermediate-size bounds (`csqp_verify::bounds`) for every
//!    optimizer-produced plan across all policies × objectives and for
//!    seeded random-plan sweeps, asserting the engine's materialized
//!    output never exceeds the static bound on any operator edge; then
//!    plant four mutants (dropped key declaration, a growing operator,
//!    a key the statistics cannot justify, hostile tuple widths), each
//!    of which must be caught (`bound-violated`, `bound-key-unsound`,
//!    `bound-overflow`, or the collapsed bound itself).

use std::process::ExitCode;

use csqp::catalog::{QuerySpec, RelId, SiteId, SystemConfig};
use csqp::core::{Annotation, JoinTree, NodeId, Plan, Policy};
use csqp::cost::{CostModel, Objective, ResourceUsage};
use csqp::json::{obj, Json};
use csqp::optimizer::{random_neighbor, random_plan, MoveSet, OptConfig, Optimizer};
use csqp::simkernel::rng::SimRng;
use csqp::simkernel::SimTime;
use csqp::verify::protocol::ModelChecker;
use csqp::verify::system::{system_step, SystemChecker};
use csqp::verify::{determinism, invariants, structural, Checker, DiagCode, Report};
use csqp::workload::{random_placement, spj_query, ten_way, two_way, MODERATE_SEL};

struct Args {
    plans: usize,
    servers: u32,
    seed: u64,
    depth: usize,
    sessions: u8,
    protocol_only: bool,
    system_only: bool,
    memo_only: bool,
    catalog_only: bool,
    bounds_only: bool,
    budget_secs: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        plans: 1000,
        servers: 4,
        seed: 20260806,
        depth: 8,
        sessions: 3,
        protocol_only: false,
        system_only: false,
        memo_only: false,
        catalog_only: false,
        bounds_only: false,
        budget_secs: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| die(format!("{name} needs a numeric argument")))
        };
        match flag.as_str() {
            "--plans" => args.plans = val("--plans") as usize,
            "--servers" => args.servers = val("--servers") as u32,
            "--seed" => args.seed = val("--seed"),
            "--depth" => args.depth = val("--depth") as usize,
            "--sessions" => args.sessions = val("--sessions") as u8,
            "--protocol" => args.protocol_only = true,
            "--system" => args.system_only = true,
            "--memo" => args.memo_only = true,
            "--catalog" => args.catalog_only = true,
            "--bounds" => args.bounds_only = true,
            "--budget-secs" => {
                args.budget_secs = Some(
                    it.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .unwrap_or_else(|| die("--budget-secs needs a number".to_string())),
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: csqp-check [--plans N] [--servers M] [--seed S] \
                     [--protocol] [--system] [--memo] [--catalog] [--bounds] \
                     [--sessions N] [--depth D] [--budget-secs S]"
                );
                std::process::exit(0);
            }
            other => die(format!("unknown flag {other}")),
        }
    }
    if args.servers == 0 {
        die("--servers must be at least 1".to_string());
    }
    if args.sessions == 0 || args.sessions > 5 {
        // Canonicalization enumerates sessions! permutations; 5 is
        // already far past the symmetric saturation point.
        die("--sessions must be in 1..=5".to_string());
    }
    args
}

fn die(msg: String) -> ! {
    eprintln!("csqp-check: {msg}");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut failures = 0usize;

    let full = !args.protocol_only
        && !args.system_only
        && !args.memo_only
        && !args.catalog_only
        && !args.bounds_only;
    if full {
        failures += positive_sweep(&args);
        failures += optimizer_traces(&args);
        failures += negative_fixtures(&args);
    }
    if full || args.protocol_only {
        failures += protocol_model_check(&args);
    }
    if full || args.system_only {
        failures += system_model_check(&args);
    }
    if full || args.memo_only {
        failures += memo_consistency(&args);
    }
    if full || args.catalog_only {
        failures += catalog_consistency(&args);
    }
    if full || args.bounds_only {
        failures += bounds_soundness(&args);
    }

    if failures == 0 {
        println!("\ncsqp-check: all checks passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("\ncsqp-check: {failures} failure(s)");
        ExitCode::FAILURE
    }
}

/// Stage 1: every generator-produced plan must verify clean.
fn positive_sweep(args: &Args) -> usize {
    let config = SystemConfig::default();
    let queries: Vec<(&str, QuerySpec)> = vec![
        ("2-way", two_way()),
        ("10-way", ten_way()),
        ("spj-6", spj_query(6, MODERATE_SEL, 0.2, 2)),
    ];
    let mut failures = 0;
    for policy in Policy::ALL {
        let mut rng = SimRng::seed_from_u64(args.seed ^ policy.short().len() as u64);
        let mut checked = 0usize;
        for round in 0..args.plans {
            let (label, query) = &queries[round % queries.len()];
            let servers = args.servers.min(query.num_relations() as u32);
            let catalog = random_placement(query, servers, &mut rng);
            let plan = random_plan(query, policy, &mut rng);
            let report = Checker::new(query, &catalog, &config, SiteId::CLIENT)
                .with_policy(policy)
                .check(&plan);
            if !report.is_clean() {
                eprintln!(
                    "FAIL [{}] random {} plan #{round} produced diagnostics:\n{report}\n{plan}",
                    policy.short(),
                    label
                );
                failures += 1;
            }
            checked += 1;
        }
        println!(
            "positive sweep [{}]: {checked} random plans verified clean",
            policy.short()
        );
    }
    failures
}

/// Stage 2: verify what the optimizer actually produces and visits.
fn optimizer_traces(args: &Args) -> usize {
    let config = SystemConfig::default();
    let query = ten_way();
    let mut rng = SimRng::seed_from_u64(args.seed.wrapping_mul(3));
    let catalog = random_placement(&query, args.servers, &mut rng);
    let mut failures = 0;

    // Full two-phase optimizations, every policy × objective.
    for policy in Policy::ALL {
        for objective in [
            Objective::Communication,
            Objective::ResponseTime,
            Objective::TotalCost,
        ] {
            let model = CostModel::new(&config, &catalog, &query, SiteId::CLIENT);
            let opt = Optimizer::new(&model, policy, objective, OptConfig::fast());
            let result = opt.optimize(&query, &mut rng);
            let report = Checker::new(&query, &catalog, &config, SiteId::CLIENT)
                .with_policy(policy)
                .check(&result.plan);
            if !report.is_clean() {
                eprintln!(
                    "FAIL optimizer [{} / {objective}] returned an invalid plan:\n{report}",
                    policy.short()
                );
                failures += 1;
            }
        }
    }
    println!("optimizer traces: 9 policy x objective optimizations verified clean");

    // Long random-neighbor walks: the II/SA move trace in miniature.
    for policy in Policy::ALL {
        let mut plan = random_plan(&query, policy, &mut rng);
        let mut steps = 0usize;
        for _ in 0..500 {
            if let Some((next, _)) =
                random_neighbor(&plan, &query, policy, MoveSet::for_policy(policy), &mut rng)
            {
                let report = Checker::new(&query, &catalog, &config, SiteId::CLIENT)
                    .with_policy(policy)
                    .check(&next);
                if !report.is_clean() {
                    eprintln!(
                        "FAIL [{}] neighbor step {steps} invalid:\n{report}",
                        policy.short()
                    );
                    failures += 1;
                }
                plan = next;
                steps += 1;
            }
        }
        println!(
            "move walk [{}]: {steps} verified neighbor steps",
            policy.short()
        );
    }

    // Determinism lint over a generated event schedule: exponential
    // inter-arrival times with indistinguishable payloads are fine even
    // when collisions happen.
    let mut t = SimTime::ZERO;
    let mut events = Vec::new();
    for _ in 0..2_000 {
        t += rng.exp_duration(csqp::simkernel::SimDuration::from_micros(50));
        events.push((t, "arrival"));
    }
    let ds = determinism::check_queue_determinism(&events, args.seed, 8);
    if ds.is_empty() {
        println!("determinism lint: 2000-event schedule replays identically");
    } else {
        for d in &ds {
            eprintln!("FAIL determinism lint on generated schedule: {d}");
        }
        failures += ds.len();
    }
    failures
}

/// Stage 3: each broken artifact must be flagged with its code.
fn negative_fixtures(args: &Args) -> usize {
    let config = SystemConfig::default();
    let query = csqp::workload::chain_query(3, MODERATE_SEL);
    let mut rng = SimRng::seed_from_u64(args.seed ^ 0xF1F1);
    let catalog = random_placement(&query, 2, &mut rng);
    let checker = || Checker::new(&query, &catalog, &config, SiteId::CLIENT);
    let base = |jann, sann| {
        JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(&query, jann, sann)
    };

    let mut failures = 0;
    let mut fixture = |name: &str, code: DiagCode, report: Report| {
        if report.has(code) {
            println!("negative fixture {name}: flagged as expected ({code})");
        } else {
            eprintln!("FAIL negative fixture {name}: expected {code}, got: {report}");
            failures += 1;
        }
    };

    // 1. Two-node annotation cycle (§2.2.3).
    let mut cyclic = base(Annotation::Consumer, Annotation::PrimaryCopy);
    let joins = cyclic.join_nodes();
    cyclic.node_mut(joins[1]).ann = Annotation::InnerRel;
    fixture(
        "annotation-cycle",
        DiagCode::AnnotationCycle,
        checker().check(&cyclic),
    );

    // 2. Policy violation: a data-shipping plan in query-shipping space.
    let ds_plan = base(Annotation::Consumer, Annotation::Client);
    fixture(
        "policy-violation",
        DiagCode::PolicyViolation,
        checker().with_policy(Policy::QueryShipping).check(&ds_plan),
    );

    // 3. DAG: both join inputs are the same scan node.
    let mut dag = base(Annotation::Consumer, Annotation::Client);
    let scan0 = dag.scan_nodes()[0];
    let top = *dag.join_nodes().last().unwrap_or(&scan0);
    dag.node_mut(top).children[1] = Some(scan0);
    fixture("shared-node", DiagCode::SharedNode, checker().check(&dag));

    // 4. Arity violation: a join missing its probe input.
    let mut lopsided = base(Annotation::Consumer, Annotation::Client);
    let join = lopsided.join_nodes()[0];
    lopsided.node_mut(join).children[1] = None;
    fixture("bad-arity", DiagCode::BadArity, checker().check(&lopsided));

    // 5. Out-of-arena child reference.
    let mut dangling = base(Annotation::Consumer, Annotation::Client);
    let join = dangling.join_nodes()[0];
    dangling.node_mut(join).children[1] = Some(NodeId(4096));
    fixture(
        "dangling-child",
        DiagCode::DanglingChild,
        checker().check(&dangling),
    );

    // 6. Negative resource vector (a sign error in a cost term).
    let mut usage = ResourceUsage::zero(3);
    usage.disk[2] = -1.5;
    fixture(
        "negative-resource",
        DiagCode::NegativeResource,
        Report::from_diagnostics(invariants::check_usage(&usage)),
    );

    // 7. Non-monotone cost: "growing" the relations actually shrinks them.
    let plan = base(Annotation::InnerRel, Annotation::PrimaryCopy);
    let shrunk = {
        let mut q = query.clone();
        for r in &mut q.relations {
            r.tuples /= 4;
        }
        q
    };
    fixture(
        "non-monotone-cost",
        DiagCode::NonMonotoneCost,
        Report::from_diagnostics(invariants::check_monotone_against(
            &plan,
            &config,
            &catalog,
            &query,
            &shrunk,
            SiteId::CLIENT,
        )),
    );

    // 8. Join selectivity above 1.0: estimates exceed the base product.
    let mut inflated = query.clone();
    inflated.edges[0].selectivity = 3.0;
    fixture(
        "cardinality-bound",
        DiagCode::CardinalityBound,
        Report::from_diagnostics(invariants::check_cardinalities(&plan, &config, &inflated)),
    );

    // 9. Config with random I/O faster than sequential.
    let mut inverted = config.clone();
    inverted.disk_rand_page_ms = 1.0;
    fixture(
        "config-invariant",
        DiagCode::ConfigInvariant,
        Report::from_diagnostics(invariants::check_config(&inverted)),
    );

    // 10. Same-timestamp events with distinguishable payloads.
    let ties = vec![
        (SimTime(100), "grant-disk-to-q1"),
        (SimTime(100), "grant-disk-to-q2"),
        (SimTime(250), "done"),
    ];
    fixture(
        "tie-break-nondeterminism",
        DiagCode::TieBreakNondeterminism,
        Report::from_diagnostics(determinism::check_queue_determinism(&ties, args.seed, 16)),
    );

    // 11. A delivery trace that runs backwards.
    let trace = vec![SimTime(10), SimTime(30), SimTime(20)];
    fixture(
        "event-time-regression",
        DiagCode::EventTimeRegression,
        Report::from_diagnostics(determinism::check_pop_trace(&trace)),
    );

    // Structural pass must also survive a fully corrupt arena without
    // panicking (no fixture code asserted; surviving is the check).
    let corrupt = Plan::from_parts(
        vec![csqp::core::plan::PlanNode {
            op: csqp::core::LogicalOp::Join,
            ann: Annotation::Consumer,
            children: [Some(NodeId(7)), Some(NodeId(0))],
        }],
        NodeId(0),
    );
    let ds = structural::check_structure(&corrupt, Some(&query));
    if ds.is_empty() {
        eprintln!("FAIL corrupt arena produced no diagnostics");
        failures += 1;
    } else {
        println!(
            "negative fixture corrupt-arena: {} diagnostics, no panic",
            ds.len()
        );
    }

    failures
}

/// Stage 4: bounded-exhaustive model check of the session protocol.
///
/// Explores `csqp_verify::protocol::step` — the same transition function
/// `csqp-serve`'s event engine interprets — from a fresh session over
/// every enabled event interleaving, across a spread of pipeline
/// windows. The wall time is printed because the exploration carries an
/// explicit budget: depth 8 must finish well under ten seconds.
fn protocol_model_check(args: &Args) -> usize {
    let mut failures = 0;
    for window in [1u8, 2, 4, 16] {
        let start = std::time::Instant::now();
        let (report, stats) = ModelChecker::new(window, args.depth).check_real();
        let secs = start.elapsed().as_secs_f64();
        if report.is_clean() {
            println!(
                "protocol [window {window}]: {} states, {} transitions, \
                 depth {} (deepest new state {}) explored in {secs:.2}s — clean",
                stats.states, stats.transitions, stats.depth, stats.deepest_new_state
            );
        } else {
            eprintln!(
                "FAIL protocol [window {window}] after {} states / {} transitions:\n{report}",
                stats.states, stats.transitions
            );
            failures += report.len();
        }
    }
    failures
}

/// Stage 5: bounded-exhaustive model check of the composed system —
/// `--sessions` session machines over the shared admission queue,
/// worker pool, and completion channel — then the same search without
/// symmetry reduction, to measure (and record) how much the reduction
/// shrinks the visited set. Emits `BENCH_check.json` as the checker's
/// perf-trajectory record.
fn system_model_check(args: &Args) -> usize {
    let mut checker = SystemChecker::default();
    checker.sessions = args.sessions;
    checker.depth = args.depth as u32;
    let mut failures = 0;

    let start = std::time::Instant::now();
    let (report, stats) = checker.report();
    let secs = start.elapsed().as_secs_f64();
    if report.is_clean() {
        println!(
            "system [{} sessions, depth {}]: {} states, {} transitions, \
             peak frontier {} explored in {secs:.2}s — clean",
            args.sessions, args.depth, stats.states, stats.transitions, stats.peak_frontier
        );
    } else {
        eprintln!(
            "FAIL system [{} sessions, depth {}] after {} states:\n{report}",
            args.sessions, args.depth, stats.states
        );
        failures += report.len();
    }
    if let Some(budget) = args.budget_secs {
        if secs > budget {
            eprintln!("FAIL system check blew its wall-time budget: {secs:.2}s > {budget}s");
            failures += 1;
        }
    }

    // The same search keyed on raw (uncanonicalized) states: the
    // denominator of the symmetry-shrink figure.
    let mut raw = checker;
    raw.symmetry = false;
    let (_, raw_stats) = raw.run(system_step);
    let shrink = raw_stats.states as f64 / stats.states.max(1) as f64;
    println!(
        "symmetry reduction: {} raw states -> {} canonical ({shrink:.2}x smaller)",
        raw_stats.states, stats.states
    );

    let states_per_sec = if secs > 0.0 {
        stats.states as f64 / secs
    } else {
        0.0
    };
    let bench = obj(vec![
        ("bench", Json::from("csqp-check --system")),
        ("sessions", Json::from(u64::from(args.sessions))),
        ("depth", Json::from(args.depth as u64)),
        ("states", Json::from(stats.states)),
        ("transitions", Json::from(stats.transitions)),
        ("peak_frontier", Json::from(stats.peak_frontier)),
        ("wall_secs", Json::from(secs)),
        ("states_per_sec", Json::from(states_per_sec)),
        ("states_no_symmetry", Json::from(raw_stats.states)),
        ("symmetry_shrink", Json::from(shrink)),
    ]);
    match std::fs::write("BENCH_check.json", bench.render_pretty() + "\n") {
        Ok(()) => println!("wrote BENCH_check.json"),
        Err(e) => {
            eprintln!("FAIL writing BENCH_check.json: {e}");
            failures += 1;
        }
    }
    failures
}

/// Stage 6: memo-consistency — drive the real memoized two-step entry
/// points over a seeded mix, replay it asserting byte-identical hits,
/// then run the `csqp-verify` memo pass over every live entry.
fn memo_consistency(args: &Args) -> usize {
    use csqp::core::CancelToken;
    use csqp::memo::{bucket_fraction, CacheBuckets, Env, MemoConfig, MemoTable};
    use csqp::optimizer::{CompileTimeAssumption, MemoOutcome, TwoStepPlanner};
    use csqp::workload::WorkloadSpec;

    let sys = SystemConfig::default();
    let table = MemoTable::new(MemoConfig::default());
    let guard = CancelToken::inert();
    let specs = [
        WorkloadSpec::Chain {
            n: 3,
            selectivity: MODERATE_SEL,
        },
        WorkloadSpec::Star {
            n: 4,
            selectivity: MODERATE_SEL,
        },
        WorkloadSpec::Spj {
            n: 5,
            join_sel: MODERATE_SEL,
            selection: 0.2,
            every_k: 2,
        },
    ];
    let objectives = [
        Objective::Communication,
        Objective::ResponseTime,
        Objective::TotalCost,
    ];
    let mut failures = 0;
    let mut cells = 0usize;
    let mut cold_plans = Vec::new();

    // Two sweeps over the identical mix: the first populates (every
    // probe must miss), the second must hit byte-identically.
    for sweep in 0..2 {
        let mut cell = 0usize;
        for spec in &specs {
            let query = spec.build();
            let servers = args.servers.min(spec.num_relations()).max(1);
            let env = Env {
                placement_seed: args.seed,
                num_servers: servers,
            };
            for policy in Policy::ALL {
                for objective in objectives {
                    for bucket in [0u8, 4] {
                        let buckets = CacheBuckets::quantize(&vec![
                            bucket_fraction(bucket);
                            spec.num_relations() as usize
                        ]);
                        let mut catalog = {
                            let mut c = csqp::catalog::Catalog::new(servers);
                            for (i, r) in query.relations.iter().enumerate() {
                                c.place(r.id, SiteId::server(1 + (i as u32 % servers)));
                            }
                            c
                        };
                        for (rel_index, fraction) in buckets.planning_fractions() {
                            if (rel_index as usize) < query.relations.len() {
                                catalog.set_cached_fraction(
                                    query.relations[rel_index as usize].id,
                                    fraction,
                                );
                            }
                        }
                        let planner = TwoStepPlanner {
                            policy,
                            objective,
                            config: OptConfig::fast(),
                        };
                        let (compiled, _) = planner.compile_memoized(
                            spec,
                            &query,
                            &sys,
                            CompileTimeAssumption::Centralized,
                            env,
                            Some(&table),
                        );
                        let outcome = planner.site_select_memoized(
                            spec,
                            &compiled,
                            &query,
                            &sys,
                            &catalog,
                            &buckets,
                            env,
                            Some(&table),
                            &guard,
                        );
                        let (plan, memo_outcome) = match outcome {
                            Ok(v) => v,
                            Err(r) => {
                                eprintln!("FAIL memo cell #{cell} stopped: {r}");
                                failures += 1;
                                cell += 1;
                                continue;
                            }
                        };
                        match sweep {
                            0 => {
                                if memo_outcome != MemoOutcome::Miss {
                                    eprintln!(
                                        "FAIL memo cell #{cell}: first sweep expected a miss, \
                                         got {memo_outcome:?}"
                                    );
                                    failures += 1;
                                }
                                cold_plans.push(plan);
                                cells += 1;
                            }
                            _ => {
                                if memo_outcome != MemoOutcome::Hit {
                                    eprintln!(
                                        "FAIL memo cell #{cell}: replay expected a hit, \
                                         got {memo_outcome:?}"
                                    );
                                    failures += 1;
                                } else if cold_plans[cell] != plan {
                                    eprintln!(
                                        "FAIL memo cell #{cell}: hit diverged from cold plan"
                                    );
                                    failures += 1;
                                }
                            }
                        }
                        cell += 1;
                    }
                }
            }
        }
    }

    let snap = table.snapshot();
    if snap.hits == 0 {
        eprintln!("FAIL memo replay produced no hits");
        failures += 1;
    }
    let report = csqp::verify::memo::check_memo(&table);
    if report.is_clean() {
        println!(
            "memo consistency: {cells} cells populated and replayed byte-identically; \
             {} entries verified clean ({} hits, {} misses, {} bytes)",
            snap.entries, snap.hits, snap.misses, snap.bytes
        );
    } else {
        eprintln!("FAIL memo-consistency pass:\n{report}");
        failures += report.len();
    }

    // A generation bump must invalidate every entry: replaying one cell
    // now has to miss rather than serve a stale plan.
    table.bump_generation();
    let spec = &specs[0];
    let query = spec.build();
    let servers = args.servers.min(spec.num_relations()).max(1);
    let env = Env {
        placement_seed: args.seed,
        num_servers: servers,
    };
    let planner = TwoStepPlanner {
        policy: Policy::ALL[0],
        objective: objectives[0],
        config: OptConfig::fast(),
    };
    let (_, outcome) = planner.compile_memoized(
        spec,
        &query,
        &sys,
        CompileTimeAssumption::Centralized,
        env,
        Some(&table),
    );
    if outcome != MemoOutcome::Miss {
        eprintln!("FAIL generation bump did not invalidate: got {outcome:?}");
        failures += 1;
    } else {
        println!("memo invalidation: generation bump forces a recompute, never a stale plan");
    }
    failures
}

/// Stage 7: seeded catalog drift replay over the replication layer, the
/// drift-conformance pass, the epoch→memo invalidation proof, and three
/// planted mutants that must each be caught with its typed diagnostic.
fn catalog_consistency(args: &Args) -> usize {
    use csqp::catalog::{CatalogEpoch, DriftAction, DriftEvent, ReplicatedCatalog};
    use csqp::memo::{Env, MemoConfig, MemoTable};
    use csqp::net::chaos::{CatalogFault, FaultPlan};
    use csqp::optimizer::{CompileTimeAssumption, MemoOutcome, TwoStepPlanner};
    use csqp::serve::server::fnv1a;
    use csqp::verify::catalog::check_drift;
    use csqp::workload::WorkloadSpec;

    let mut failures = 0usize;
    let servers = args.servers.max(1);
    let bound = 2u64;
    const QUERIES: u64 = 256;

    // One full drift replay: every seeded query ticks the coordinator
    // (withheld refreshes tick it in a burst — the same escalation the
    // server's drift model uses), delivers or withholds a propagation
    // step at a rotating site, and records the serve decision the
    // degradation lattice dictates.
    let replay = || {
        let query = ten_way();
        let mut rng = SimRng::seed_from_u64(args.seed);
        let base = random_placement(&query, servers, &mut rng);
        let mut rc = ReplicatedCatalog::new(base, bound);
        let plan = FaultPlan::new(args.seed, 0.5);
        let mut trace: Vec<DriftEvent> = Vec::new();
        for i in 0..QUERIES {
            let seed = args.seed ^ i.wrapping_mul(0x9E37_79B9);
            let fault = plan.catalog_fault_for(seed);
            let site = SiteId::server(1 + (i % u64::from(servers)) as u32);
            let rel = RelId((i % query.num_relations() as u64) as u32);
            let publishes = match fault {
                CatalogFault::WithheldRefresh => 1 + plan.catalog_rng_for(seed).derive(1).below(4),
                _ => 1,
            };
            for p in 0..publishes {
                let fraction = 0.25 + 0.5 * (((i + p as u64) % 3) as f64) / 3.0;
                let epoch = rc.set_cached_fraction(rel, fraction);
                trace.push(DriftEvent::Publish { epoch: epoch.0 });
            }
            let coord = rc.coordinator().epoch();
            let from = rc.replica(site).map_or(0, |r| r.epoch().0);
            match fault {
                CatalogFault::None => {
                    if let Some(e) = rc.propagate(site) {
                        trace.push(DriftEvent::Refresh {
                            site: site.0,
                            from,
                            to: e.0,
                            applied: true,
                        });
                    }
                }
                CatalogFault::WithheldRefresh => {}
                CatalogFault::TornEpoch => {
                    // Partial delivery: the refresh lands one epoch short
                    // of the coordinator (never behind the replica).
                    let torn = CatalogEpoch(coord.0.saturating_sub(1).max(from));
                    if let Some(Ok(e)) = rc.deliver_at(site, torn) {
                        trace.push(DriftEvent::Refresh {
                            site: site.0,
                            from,
                            to: e.0,
                            applied: true,
                        });
                    }
                }
                CatalogFault::ReorderedEpoch => {
                    // A delivery from the past arrives late; the replica
                    // must refuse the regression.
                    let old = CatalogEpoch(from.saturating_sub(1));
                    match rc.deliver_at(site, old) {
                        Some(Ok(e)) => trace.push(DriftEvent::Refresh {
                            site: site.0,
                            from,
                            to: e.0,
                            applied: true,
                        }),
                        _ => trace.push(DriftEvent::Refresh {
                            site: site.0,
                            from,
                            to: old.0,
                            applied: false,
                        }),
                    }
                }
                CatalogFault::PoisonedFraction => {
                    if let Some(e) = rc.propagate(site) {
                        trace.push(DriftEvent::Refresh {
                            site: site.0,
                            from,
                            to: e.0,
                            applied: true,
                        });
                    }
                    if let Some(r) = rc.replica_mut(site) {
                        r.poison();
                    }
                    trace.push(DriftEvent::Poison { site: site.0 });
                }
            }
            let priced = rc.replica(site).map_or(0, |r| r.epoch().0);
            let lag = rc.lag(site).unwrap_or(0);
            let poisoned = rc.replica(site).is_some_and(|r| r.is_poisoned());
            // Every third query stands in for a QS request (nothing left
            // to downgrade to); the rest can degrade.
            let action = if poisoned {
                DriftAction::Degraded
            } else if lag <= bound {
                DriftAction::Fresh
            } else if i % 3 == 0 {
                DriftAction::Rejected
            } else {
                DriftAction::Degraded
            };
            trace.push(DriftEvent::Serve {
                site: site.0,
                priced_epoch: priced,
                coordinator_epoch: coord.0,
                lag,
                action,
            });
        }
        let mut rendered = String::new();
        for e in &trace {
            rendered.push_str(&format!("{e:?};"));
        }
        let digest = fnv1a(rendered.as_bytes());
        let coord = rc.coordinator().epoch().0;
        let replica1 = rc.replica(SiteId::server(1)).map_or(0, |r| r.epoch().0);
        (trace, digest, coord, replica1)
    };

    // Same seed, same drift trajectory, byte-identical digest.
    let (trace, digest_a, coord, replica1) = replay();
    let (_, digest_b, ..) = replay();
    if digest_a != digest_b {
        eprintln!("FAIL drift replay diverged: {digest_a:016x} vs {digest_b:016x}");
        failures += 1;
    }
    let degradations = trace
        .iter()
        .filter(|e| {
            matches!(
                e,
                DriftEvent::Serve {
                    action: DriftAction::Degraded | DriftAction::Rejected,
                    ..
                }
            )
        })
        .count();
    if degradations == 0 {
        eprintln!("FAIL drift replay never exercised the degradation path");
        failures += 1;
    }
    let report = check_drift(&trace, bound);
    if report.is_clean() {
        println!(
            "catalog drift: {QUERIES} queries replayed twice with identical digest \
             {digest_a:016x}; {} events verified clean ({} degraded/rejected, \
             coordinator at e{coord})",
            trace.len(),
            degradations
        );
    } else {
        eprintln!("FAIL drift-conformance pass over an honest replay:\n{report}");
        failures += report.len();
    }

    // An epoch publication must force a memo recompute: this is the
    // invalidation contract the server wires `bump_generation` to.
    {
        let table = MemoTable::new(MemoConfig::default());
        let spec = WorkloadSpec::Chain {
            n: 3,
            selectivity: MODERATE_SEL,
        };
        let query = spec.build();
        let env = Env {
            placement_seed: args.seed,
            num_servers: servers.min(spec.num_relations()).max(1),
        };
        let planner = TwoStepPlanner {
            policy: Policy::ALL[0],
            objective: Objective::Communication,
            config: OptConfig::fast(),
        };
        let compile = || {
            planner
                .compile_memoized(
                    &spec,
                    &query,
                    &SystemConfig::default(),
                    CompileTimeAssumption::Centralized,
                    env,
                    Some(&table),
                )
                .1
        };
        let _ = compile();
        if compile() != MemoOutcome::Hit {
            eprintln!("FAIL catalog/memo warmup never hit");
            failures += 1;
        }
        // Publish an epoch the way the coordinator does, and apply the
        // server's wiring: publication bumps the memo generation.
        let mut rng = SimRng::seed_from_u64(args.seed);
        let base = random_placement(&query, servers.min(spec.num_relations()).max(1), &mut rng);
        let mut rc = ReplicatedCatalog::new(base, bound);
        let _ = rc.set_cached_fraction(RelId(0), 0.5);
        table.bump_generation();
        if compile() != MemoOutcome::Miss {
            eprintln!("FAIL epoch publication did not force a memo recompute");
            failures += 1;
        } else {
            println!(
                "catalog invalidation: epoch publication bumps the memo generation and \
                 forces a recompute"
            );
        }
    }

    // Three planted mutants, each of which must be caught with exactly
    // its typed diagnostic. Mutants extend the honest trace, so the
    // reconstruction state they confront is the real one.
    let mutants: [(&str, DiagCode, Vec<DriftEvent>); 3] = [
        (
            "withheld refresh served fresh past the bound",
            DiagCode::CatalogStaleServed,
            {
                let mut t = trace.clone();
                for k in 1..=(bound + 1) {
                    t.push(DriftEvent::Publish { epoch: coord + k });
                }
                let new_coord = coord + bound + 1;
                t.push(DriftEvent::Serve {
                    site: 1,
                    priced_epoch: replica1,
                    coordinator_epoch: new_coord,
                    lag: new_coord - replica1,
                    action: DriftAction::Fresh,
                });
                t
            },
        ),
        (
            "replica applied an epoch regression",
            DiagCode::CatalogEpochRegress,
            {
                let mut t = trace.clone();
                t.push(DriftEvent::Refresh {
                    site: 1,
                    from: replica1,
                    to: replica1.saturating_sub(1),
                    applied: true,
                });
                t
            },
        ),
        (
            "serve decision misaccounted its lag",
            DiagCode::CatalogLagBound,
            {
                let mut t = trace.clone();
                t.push(DriftEvent::Serve {
                    site: 1,
                    priced_epoch: replica1,
                    coordinator_epoch: coord,
                    lag: (coord - replica1) + 1,
                    action: DriftAction::Degraded,
                });
                t
            },
        ),
    ];
    if replica1 == 0 {
        // The regression mutant needs a replica that has refreshed at
        // least once; with 256 seeded queries this cannot happen unless
        // the fault plan itself broke.
        eprintln!("FAIL site 1 never refreshed across the whole replay");
        failures += 1;
    }
    for (what, code, mutated) in &mutants {
        let report = check_drift(mutated, bound);
        if report.has(*code) {
            println!("catalog mutant caught: {what} -> {}", code.as_str());
        } else {
            eprintln!(
                "FAIL mutant not caught ({what}): expected {}",
                code.as_str()
            );
            failures += 1;
        }
    }
    failures
}

/// Stage 8: guaranteed-bound soundness — every plan the optimizer
/// produces (and a seeded random-plan sweep per policy) must keep its
/// materialized output within the static worst-case bound on every
/// operator edge; then four planted mutants must each be caught.
fn bounds_soundness(args: &Args) -> usize {
    use csqp::verify::bounds;
    use csqp::workload::{chain_query, star_query, HISEL_SEL};

    let config = SystemConfig::default();
    let left_deep = |query: &QuerySpec| -> Plan {
        let order: Vec<RelId> = query.relations.iter().map(|r| r.id).collect();
        JoinTree::left_deep(&order).into_plan(query, Annotation::Consumer, Annotation::Client)
    };
    let queries: Vec<(&str, QuerySpec)> = vec![
        ("chain-3", chain_query(3, MODERATE_SEL)),
        ("chain-5", chain_query(5, HISEL_SEL)),
        ("star-4", star_query(4, MODERATE_SEL)),
        ("spj-6", spj_query(6, MODERATE_SEL, 0.2, 2)),
        ("2-way", two_way()),
        ("10-way", ten_way()),
    ];
    let mut failures = 0usize;

    // Optimizer-produced plans: every spec × policy × objective. These
    // are the plans the server actually executes, so a bound violation
    // here is exactly the admission gate lying about worst-case memory.
    let mut optimized = 0usize;
    for (label, query) in &queries {
        let mut rng = SimRng::seed_from_u64(args.seed ^ 0xB0B0);
        let servers = args.servers.min(query.num_relations() as u32).max(1);
        let catalog = random_placement(query, servers, &mut rng);
        for policy in Policy::ALL {
            for objective in [
                Objective::Communication,
                Objective::ResponseTime,
                Objective::TotalCost,
            ] {
                let model = CostModel::new(&config, &catalog, query, SiteId::CLIENT);
                let opt = Optimizer::new(&model, policy, objective, OptConfig::fast());
                let result = opt.optimize(query, &mut rng);
                let diags = bounds::check_plan(query, config.page_size, &result.plan);
                if !diags.is_empty() {
                    eprintln!(
                        "FAIL bounds [{label} {} / {objective}]: optimizer plan \
                         escapes its guaranteed bound:",
                        policy.short()
                    );
                    for d in &diags {
                        eprintln!("  {d}");
                    }
                    failures += 1;
                }
                optimized += 1;
            }
        }
    }
    println!("bounds sweep: {optimized} optimizer plans stay within their static bounds");

    // Random plans: the generator's whole plan space, per policy, so the
    // bound rules hold for every shape the search may visit, not just
    // the shapes it prefers.
    for policy in Policy::ALL {
        let mut rng = SimRng::seed_from_u64(args.seed ^ 0xB0B1 ^ policy.short().len() as u64);
        let rounds = (args.plans / 4).max(100);
        let mut clean = 0usize;
        for round in 0..rounds {
            let (label, query) = &queries[round % queries.len()];
            let plan = random_plan(query, policy, &mut rng);
            let diags = bounds::check_plan(query, config.page_size, &plan);
            if diags.is_empty() {
                clean += 1;
            } else {
                eprintln!(
                    "FAIL bounds [{} random {label} #{round}]: {} diagnostics, first: {}",
                    policy.short(),
                    diags.len(),
                    diags[0]
                );
                failures += 1;
            }
        }
        println!(
            "bounds sweep [{}]: {clean}/{rounds} random plans within bounds",
            policy.short()
        );
    }

    // Mutant 1: dropped key. A peer that strips the key declarations
    // must lose the tight bound — every join collapses to the product
    // rule. If the bound did NOT move, the key rule was never
    // load-bearing and the analyzer is vacuous.
    {
        let keyed = chain_query(3, MODERATE_SEL);
        let mut dropped = keyed.clone();
        for r in &mut dropped.relations {
            r.key = false;
        }
        let plan = left_deep(&keyed);
        match (
            bounds::analyze(&plan, &keyed, config.page_size),
            bounds::analyze(&plan, &dropped, config.page_size),
        ) {
            (Ok(tight), Ok(loose)) if tight.root().tuples < loose.root().tuples => println!(
                "bounds mutant caught: dropped key collapses the root bound \
                 {} -> {} tuples (the key rule is load-bearing)",
                tight.root().tuples,
                loose.root().tuples
            ),
            _ => {
                eprintln!("FAIL bounds mutant not caught: dropping keys left the bound unchanged");
                failures += 1;
            }
        }
    }

    // Mutant 2: a growing operator. A join edge whose selectivity
    // exceeds one materializes more tuples than any instance consistent
    // with the base statistics admits — the dynamic check must flag the
    // executed output as exceeding the product bound.
    {
        let mut q = chain_query(3, 1e-3); // unkeyed: isolates the violation
        q.edges[0].selectivity = 2.0;
        let plan = left_deep(&q);
        let diags = bounds::check_plan(&q, config.page_size, &plan);
        if diags.iter().any(|d| d.code == DiagCode::BoundViolated) {
            println!(
                "bounds mutant caught: growing operator -> {}",
                DiagCode::BoundViolated.as_str()
            );
        } else {
            eprintln!(
                "FAIL bounds mutant not caught (growing operator): expected {}",
                DiagCode::BoundViolated.as_str()
            );
            failures += 1;
        }
    }

    // Mutant 3: an unsound key declaration. Keys the selectivities
    // cannot justify must be audited out — flagged, and *not* believed
    // by the analyzer (the bound stays at the product rule).
    {
        let mut q = chain_query(3, 1e-3); // 1e-3 > 1/10,000: no key is justified
        for r in &mut q.relations {
            r.key = true;
        }
        let plan = left_deep(&q);
        let diags = bounds::check_plan(&q, config.page_size, &plan);
        let flagged = diags.iter().any(|d| d.code == DiagCode::BoundKeyUnsound);
        let believed = bounds::analyze(&plan, &q, config.page_size)
            .map(|b| b.root().tuples < 1_000_000_000_000)
            .unwrap_or(true);
        if flagged && !believed {
            println!(
                "bounds mutant caught: unsound key declaration -> {} (and ignored)",
                DiagCode::BoundKeyUnsound.as_str()
            );
        } else {
            eprintln!(
                "FAIL bounds mutant not caught (unsound key): flagged={flagged} \
                 believed={believed}"
            );
            failures += 1;
        }
    }

    // Mutant 4: hostile statistics the page model cannot stand behind
    // (tuples wider than a page) must surface as a typed overflow, not
    // a panic or a silent wrap.
    {
        let mut q = chain_query(2, MODERATE_SEL);
        for r in &mut q.relations {
            r.tuple_bytes = 2 * config.page_size;
        }
        let plan = left_deep(&q);
        let diags = bounds::check_plan(&q, config.page_size, &plan);
        if diags.iter().any(|d| d.code == DiagCode::BoundOverflow) {
            println!(
                "bounds mutant caught: hostile tuple width -> {}",
                DiagCode::BoundOverflow.as_str()
            );
        } else {
            eprintln!(
                "FAIL bounds mutant not caught (hostile width): expected {}",
                DiagCode::BoundOverflow.as_str()
            );
            failures += 1;
        }
    }
    failures
}
