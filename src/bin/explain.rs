//! `csqp-explain` — optimize one query, explain the winning plan, and
//! simulate it.
//!
//! ```text
//! cargo run --release --bin csqp-explain -- \
//!     [--relations N] [--servers M] [--cached PCT] [--policy ds|qs|hy] \
//!     [--objective comm|rt] [--alloc min|max] [--load REQS] [--hisel] \
//!     [--groups G] [--seed S] [--save FILE | --plan FILE [--site-select]]
//! ```
//!
//! Prints the annotated plan, its physical binding, the cost-model
//! estimates, the simulated metrics, and the per-operator wait
//! breakdown. `--save` stores the optimized plan as JSON; `--plan`
//! reloads one (with `--site-select` re-running only runtime site
//! selection — the 2-step strategy of §5).

use csqp::catalog::{BufAlloc, SiteId, SystemConfig};
use csqp::core::{bind, BindContext, Plan, Policy};
use csqp::cost::{CostModel, Objective};
use csqp::engine::ExecutionBuilder;
use csqp::optimizer::{OptConfig, Optimizer, TwoStepPlanner};
use csqp::simkernel::rng::SimRng;
use csqp::workload::{
    cache_all, chain_query, load_utilization, random_placement, single_server_placement, HISEL_SEL,
    MODERATE_SEL,
};

struct Args {
    relations: u32,
    servers: u32,
    cached: f64,
    policy: Policy,
    objective: Objective,
    alloc: BufAlloc,
    load: f64,
    hisel: bool,
    groups: Option<u64>,
    seed: u64,
    save: Option<String>,
    plan: Option<String>,
    site_select: bool,
}

fn parse() -> Args {
    let mut a = Args {
        relations: 2,
        servers: 1,
        cached: 0.0,
        policy: Policy::HybridShipping,
        objective: Objective::ResponseTime,
        alloc: BufAlloc::Min,
        load: 0.0,
        hisel: false,
        groups: None,
        seed: 42,
        save: None,
        plan: None,
        site_select: false,
    };
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--relations" => {
                a.relations = next(&mut it, "--relations")
                    .parse()
                    .unwrap_or_else(|_| die("bad --relations"))
            }
            "--servers" => {
                a.servers = next(&mut it, "--servers")
                    .parse()
                    .unwrap_or_else(|_| die("bad --servers"))
            }
            "--cached" => {
                let pct: f64 = next(&mut it, "--cached")
                    .parse()
                    .unwrap_or_else(|_| die("bad --cached"));
                a.cached = pct / 100.0;
            }
            "--policy" => {
                a.policy = match next(&mut it, "--policy").to_lowercase().as_str() {
                    "ds" => Policy::DataShipping,
                    "qs" => Policy::QueryShipping,
                    "hy" => Policy::HybridShipping,
                    other => die(&format!("unknown policy '{other}'")),
                }
            }
            "--objective" => {
                a.objective = match next(&mut it, "--objective").to_lowercase().as_str() {
                    "comm" | "communication" => Objective::Communication,
                    "rt" | "response" => Objective::ResponseTime,
                    "cost" | "total" => Objective::TotalCost,
                    other => die(&format!("unknown objective '{other}'")),
                }
            }
            "--alloc" => {
                a.alloc = match next(&mut it, "--alloc").to_lowercase().as_str() {
                    "min" => BufAlloc::Min,
                    "max" => BufAlloc::Max,
                    other => die(&format!("unknown allocation '{other}'")),
                }
            }
            "--load" => {
                a.load = next(&mut it, "--load")
                    .parse()
                    .unwrap_or_else(|_| die("bad --load"))
            }
            "--hisel" => a.hisel = true,
            "--groups" => {
                a.groups = Some(
                    next(&mut it, "--groups")
                        .parse()
                        .unwrap_or_else(|_| die("bad --groups")),
                )
            }
            "--seed" => {
                a.seed = next(&mut it, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("bad --seed"))
            }
            "--save" => a.save = Some(next(&mut it, "--save")),
            "--plan" => a.plan = Some(next(&mut it, "--plan")),
            "--site-select" => a.site_select = true,
            "--help" | "-h" => {
                println!(
                    "usage: csqp-explain [--relations N] [--servers M] [--cached PCT] \
                     [--policy ds|qs|hy] [--objective comm|rt|cost] [--alloc min|max] \
                     [--load REQS] [--hisel] [--groups G] [--seed S] \
                     [--save FILE | --plan FILE [--site-select]]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag '{other}' (try --help)")),
        }
    }
    a
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let a = parse();
    let sel = if a.hisel { HISEL_SEL } else { MODERATE_SEL };
    let mut query = chain_query(a.relations, sel);
    if let Some(g) = a.groups {
        query = query.with_aggregate(g);
    }
    let mut catalog = if a.servers <= 1 {
        single_server_placement(&query)
    } else {
        random_placement(&query, a.servers, &mut SimRng::seed_from_u64(a.seed))
    };
    cache_all(&mut catalog, &query, a.cached);
    let mut sys = SystemConfig::default();
    sys.buf_alloc = a.alloc;

    let mut model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT);
    if a.load > 0.0 {
        model = model.with_disk_load(
            SiteId::server(1),
            load_utilization(a.load, sys.disk_rand_page_ms),
        );
    }

    let mut rng = SimRng::seed_from_u64(a.seed);
    let plan: Plan = match &a.plan {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            let stored =
                Plan::from_json(&json).unwrap_or_else(|e| die(&format!("bad plan file: {e}")));
            stored
                .validate_structure(&query)
                .unwrap_or_else(|e| die(&format!("stored plan does not fit this query: {e}")));
            if a.site_select {
                let planner = TwoStepPlanner {
                    policy: a.policy,
                    objective: a.objective,
                    config: OptConfig::default(),
                };
                planner.site_select(&stored, &query, &sys, &catalog, &mut rng)
            } else {
                stored
            }
        }
        None => {
            let optimizer = Optimizer::new(&model, a.policy, a.objective, OptConfig::default());
            optimizer.optimize(&query, &mut rng).plan
        }
    };

    if let Some(path) = &a.save {
        std::fs::write(path, plan.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("plan saved to {path}\n");
    }

    println!("== plan ({}, minimizing {}) ==", a.policy, a.objective);
    print!("{}", plan.render_tree());

    let bound = bind(
        &plan,
        BindContext {
            catalog: &catalog,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap_or_else(|e| die(&format!("plan does not bind: {e}")));
    println!("\nbound: {}", bound.render());
    println!(
        "estimates: {:.3} s response | {:.0} pages | {:.3} s total work",
        model.evaluate_bound(&bound, Objective::ResponseTime),
        model.evaluate_bound(&bound, Objective::Communication),
        model.evaluate_bound(&bound, Objective::TotalCost),
    );

    let mut builder = ExecutionBuilder::new(&query, &catalog, &sys).with_seed(a.seed);
    if a.load > 0.0 {
        builder = builder.with_load(SiteId::server(1), a.load);
    }
    let m = builder.execute(&bound);
    println!(
        "simulated: {:.3} s response | {} pages | {} result tuples",
        m.response_secs(),
        m.pages_sent,
        m.result_tuples
    );
    for (i, site_stats) in m.disk.iter().enumerate() {
        if site_stats.reads + site_stats.writes > 0 {
            println!(
                "  disk[{}]: {} reads, {} writes, {:.1}% busy",
                if i == 0 {
                    "client".into()
                } else {
                    format!("server{i}")
                },
                site_stats.reads,
                site_stats.writes,
                100.0 * site_stats.busy.as_secs_f64() / m.response_secs()
            );
        }
    }
    println!("\n== operator wait breakdown [s] ==");
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "operator", "cpu", "disk", "wire", "input", "emit", "drain"
    );
    for op in &m.operators {
        let w = &op.waits;
        println!(
            "{:<22} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            op.label,
            w.cpu.as_secs_f64(),
            w.disk.as_secs_f64(),
            w.wire.as_secs_f64(),
            w.input.as_secs_f64(),
            w.emit.as_secs_f64(),
            w.drain.as_secs_f64()
        );
    }
}
