//! `csqp-serve` — host the catalog, optimizers, and simulated engine as a
//! TCP query service.
//!
//! ```text
//! cargo run --release --bin csqp-serve -- [--addr HOST:PORT] [--servers N]
//!     [--workers N] [--queue N] [--high-water N] [--placement-seed S]
//!     [--pipeline-depth N] [--event-threads N] [--reactor poll|epoll]
//!     [--memo-bytes N] [--no-memo] [--catalog-lag N] [--mem-budget PAGES]
//!     [--seconds T]
//! ```
//!
//! `--high-water N` sets the admission high-water mark: past N in-flight
//! queries, HY/DS requests degrade to query shipping instead of queueing
//! expensive work (defaults to 3/4 of the queue depth).
//!
//! `--mem-budget PAGES` arms the guaranteed-bound admission gate
//! (DESIGN.md §16): a chosen plan whose worst-case client footprint —
//! derived by `csqp-verify::bounds` from audited key constraints —
//! exceeds the budget is degraded to query shipping (`degrade_reason =
//! mem-bound`); when even the QS plan cannot fit, the query is rejected
//! with the retryable `mem-bound-exceeded` error. Off by default.
//!
//! `--catalog-lag N` sets the replication staleness bound: the most
//! coordinator epochs a shard's catalog replica may trail while its
//! queries still serve fresh (default 3). Past the bound, queries take
//! the typed degradation path — QS downgrade with `stale-catalog`, or a
//! typed reject with a retry hint. The bound only matters once catalog
//! faults drive the epochs (`csqp-load --chaos --catalog-faults`).
//!
//! `--memo-bytes N` bounds the shared site-selection memo (default
//! 64 MiB); `--no-memo` disables it entirely. Served results are
//! byte-identical either way — the memo only trades CPU for memory.
//!
//! Sessions are served by the event-driven engine: a fixed set of
//! reactor loops (`--event-threads`) multiplexing every connection, with
//! up to `--pipeline-depth` queries in flight per session (capped at 16
//! so the session machine stays finite and model-checkable — see
//! `csqp-check --protocol`). `--reactor` picks the readiness backend:
//! `epoll` (the Linux default, O(ready) waits behind an interest cache)
//! or `poll` (the portable O(sessions) sweep); served bytes are
//! identical either way.
//!
//! Without `--seconds` the server runs until killed, printing a metrics
//! line every 10 seconds; with it, the server shuts down gracefully after
//! `T` seconds and prints the final STATS snapshot (the mode the CI smoke
//! test uses).

use std::process::ExitCode;
use std::time::Duration;

use csqp::serve::{Server, ServerConfig};

struct Args {
    config: ServerConfig,
    seconds: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        config: ServerConfig::default(),
        seconds: None,
    };
    args.config.addr = "127.0.0.1:7878".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut raw = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(format!("{name} needs an argument")))
        };
        match flag.as_str() {
            "--addr" => args.config.addr = raw("--addr"),
            "--servers" => args.config.num_servers = num(&raw("--servers"), "--servers") as u32,
            "--workers" => args.config.workers = num(&raw("--workers"), "--workers") as usize,
            "--queue" => args.config.queue_depth = num(&raw("--queue"), "--queue") as usize,
            "--high-water" => {
                args.config.high_water = Some(num(&raw("--high-water"), "--high-water") as usize)
            }
            "--placement-seed" => {
                args.config.placement_seed = num(&raw("--placement-seed"), "--placement-seed")
            }
            "--pipeline-depth" => {
                args.config.pipeline_depth =
                    num(&raw("--pipeline-depth"), "--pipeline-depth") as usize
            }
            "--event-threads" => {
                args.config.event_threads = num(&raw("--event-threads"), "--event-threads") as usize
            }
            "--reactor" => {
                let v = raw("--reactor");
                args.config.reactor = csqp::net::poll::Backend::parse(&v)
                    .unwrap_or_else(|| die(format!("--reactor must be poll or epoll, got {v}")));
            }
            "--memo-bytes" => {
                args.config.memo_bytes = num(&raw("--memo-bytes"), "--memo-bytes") as usize
            }
            "--no-memo" => args.config.memo = false,
            "--catalog-lag" => {
                args.config.catalog_lag = num(&raw("--catalog-lag"), "--catalog-lag")
            }
            "--mem-budget" => {
                args.config.mem_budget_pages = Some(num(&raw("--mem-budget"), "--mem-budget"))
            }
            "--seconds" => {
                let v = raw("--seconds");
                args.seconds = Some(
                    v.parse::<f64>()
                        .unwrap_or_else(|_| die("--seconds needs a numeric argument".to_string())),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: csqp-serve [--addr HOST:PORT] [--servers N] [--workers N] \
                     [--queue N] [--high-water N] [--placement-seed S] \
                     [--pipeline-depth N] [--event-threads N] [--reactor poll|epoll] \
                     [--memo-bytes N] [--no-memo] [--catalog-lag N] \
                     [--mem-budget PAGES] [--seconds T]"
                );
                std::process::exit(0);
            }
            other => die(format!("unknown flag {other}")),
        }
    }
    if args.config.num_servers == 0 {
        die("--servers must be at least 1".to_string());
    }
    if args.config.workers == 0 {
        die("--workers must be at least 1".to_string());
    }
    if args.config.pipeline_depth == 0 {
        die("--pipeline-depth must be at least 1".to_string());
    }
    if args.config.event_threads == 0 {
        die("--event-threads must be at least 1".to_string());
    }
    args
}

fn num(v: &str, name: &str) -> u64 {
    v.parse::<u64>()
        .unwrap_or_else(|_| die(format!("{name} needs a numeric argument")))
}

fn die(msg: String) -> ! {
    eprintln!("csqp-serve: {msg}");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args = parse_args();
    let server = match Server::bind(args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("csqp-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = match server.spawn() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("csqp-serve: spawn failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("csqp-serve: listening on {}", handle.addr());

    match args.seconds {
        Some(secs) => {
            std::thread::sleep(Duration::from_secs_f64(secs));
            let snap = handle.service().stats_snapshot();
            handle.shutdown();
            println!(
                "csqp-serve: {} submitted, served {} queries ({} rejected, {} errors, \
                 {} aborted, {} timed out, {} degraded), \
                 p50 {:.1} ms p95 {:.1} ms p99 {:.1} ms, {} pages / {} bytes shipped, \
                 memo {} hits / {} misses / {} evictions / {} bytes, \
                 mem-bound {} degraded / {} rejected",
                snap.submitted,
                snap.queries_served,
                snap.rejected,
                snap.errors,
                snap.aborted,
                snap.timed_out,
                snap.degraded,
                snap.p50_ms,
                snap.p95_ms,
                snap.p99_ms,
                snap.wire.data_pages_sent,
                snap.wire.bytes_sent,
                snap.memo_hits,
                snap.memo_misses,
                snap.memo_evictions,
                snap.memo_bytes,
                snap.mem_bound_degraded,
                snap.mem_bound_rejected
            );
        }
        None => loop {
            std::thread::sleep(Duration::from_secs(10));
            let snap = handle.service().stats_snapshot();
            println!(
                "csqp-serve: {} served, {} rejected, {} errors, {} aborted, \
                 {} timed out, {} degraded, p50 {:.1} ms, p99 {:.1} ms",
                snap.queries_served,
                snap.rejected,
                snap.errors,
                snap.aborted,
                snap.timed_out,
                snap.degraded,
                snap.p50_ms,
                snap.p99_ms
            );
        },
    }
    ExitCode::SUCCESS
}
