//! `csqp-load` — drive a seeded workload mix against a `csqp-serve`
//! instance and report throughput and latency percentiles.
//!
//! ```text
//! cargo run --release --bin csqp-load -- [--addr HOST:PORT] [--clients N]
//!     [--seconds T | --queries N] [--seed S] [--policy DS|QS|HY|mix]
//!     [--objective communication|response-time|total-cost]
//!     [--optimizer two-phase|two-step] [--rate R] [--retry-rejected]
//!     [--deadline-ms D] [--pipeline N] [--serve] [--fail-on-rejects]
//!     [--chaos SEED] [--schedules N] [--chaos-queries N] [--intensity F]
//!     [--reply-faults] [--catalog-faults] [--memo-smoke]
//!     [--bench-serve] [--min-qps F]
//! ```
//!
//! `--serve` spins up an in-process server on a free port and loads it —
//! the one-command loopback smoke CI runs. `--queries N` issues exactly N
//! queries per client (deterministic runs: the printed digest is
//! identical for identical seeds). `--rate` switches from closed-loop to
//! paced open-loop arrivals. `--pipeline N` keeps up to N queries in
//! flight per connection (clamped to the window the server advertises);
//! the digest is unchanged by pipelining.
//!
//! `--memo-smoke` is the memoization acceptance check: it spins up two
//! in-process servers — one with the shared site-selection memo, one
//! with `--no-memo` semantics — drives the identical seeded two-step mix
//! against both, and fails unless the reply digests are byte-identical
//! and the memo server actually hit its table.
//!
//! `--chaos SEED` switches from load generation to the fault-injection
//! soak: the seeded fault schedule runs **twice** and the run fails if
//! the reply digests differ, if accounting conservation is violated, or
//! if a post-soak probe shows a leaked worker. Combine with `--serve`
//! for a self-contained chaos smoke. `--reply-faults` additionally arms
//! the reply path: with `--serve` the inline server mangles replies from
//! the matching seeded plan, and the soak accounts every mangled reply
//! deterministically.
//!
//! `--catalog-faults` arms the replicated catalog instead (requires
//! `--serve`; the soak manages its own pair of inline servers): each
//! server drives its per-shard replica epochs from the matching seeded
//! plan (withheld refreshes, torn and reordered deliveries, poisoned
//! cached-fraction snapshots), so some queries degrade to query shipping
//! with `stale-catalog` and over-bound QS requests are rejected with a
//! retry hint — all typed replies. Because epoch lag is *server state*
//! that carries across queries, repeatability is proved across two
//! fresh servers rather than back-to-back runs on one: same seed, same
//! fresh state, byte-identical digest. Both recorded drift traces are
//! then audited with `csqp-verify`'s drift-conformance pass: no serve
//! past the staleness bound, no applied epoch regression, faithful lag
//! accounting.
//!
//! `--bench-serve` is the serving-stack perf artifact: a pinned seeded
//! closed-loop run (combine with `--serve` for the self-contained CI
//! gate) whose QPS and latency percentiles land in `BENCH_serve.json`.
//! `--min-qps F` turns it into a regression gate: the run fails when
//! throughput drops below the floor.

use std::process::ExitCode;
use std::time::Duration;

use csqp::core::Policy;
use csqp::cost::Objective;
use csqp::json::{obj, Json};
use csqp::net::chaos::FaultPlan;
use csqp::serve::chaos::{run_chaos, ChaosConfig};
use csqp::serve::proto::OptimizerMode;
use csqp::serve::{run_load, LoadConfig, Server, ServerConfig, ServerHandle};

struct Args {
    load: LoadConfig,
    chaos: Option<ChaosConfig>,
    serve_inline: bool,
    fail_on_rejects: bool,
    memo_smoke: bool,
    bench_serve: bool,
    min_qps: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        load: LoadConfig::default(),
        chaos: None,
        serve_inline: false,
        fail_on_rejects: false,
        memo_smoke: false,
        bench_serve: false,
        min_qps: None,
    };
    let mut chaos = ChaosConfig::default();
    let mut chaos_seed = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut raw = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(format!("{name} needs an argument")))
        };
        match flag.as_str() {
            "--addr" => args.load.addr = raw("--addr"),
            "--clients" => args.load.clients = num(&raw("--clients"), "--clients") as usize,
            "--seconds" => {
                let v = raw("--seconds")
                    .parse::<f64>()
                    .unwrap_or_else(|_| die("--seconds needs a numeric argument".to_string()));
                args.load.duration = Duration::from_secs_f64(v);
            }
            "--queries" => args.load.queries_per_client = Some(num(&raw("--queries"), "--queries")),
            "--seed" => args.load.seed = num(&raw("--seed"), "--seed"),
            "--policy" => {
                args.load.policy = match raw("--policy").as_str() {
                    "DS" => Some(Policy::DataShipping),
                    "QS" => Some(Policy::QueryShipping),
                    "HY" => Some(Policy::HybridShipping),
                    "mix" => None,
                    other => die(format!("unknown policy {other} (want DS|QS|HY|mix)")),
                }
            }
            "--objective" => {
                args.load.objective = match raw("--objective").as_str() {
                    "communication" => Objective::Communication,
                    "response-time" => Objective::ResponseTime,
                    "total-cost" => Objective::TotalCost,
                    other => die(format!("unknown objective {other}")),
                }
            }
            "--optimizer" => {
                args.load.optimizer = match raw("--optimizer").as_str() {
                    "two-phase" => OptimizerMode::TwoPhase,
                    "two-step" => OptimizerMode::TwoStep,
                    other => die(format!(
                        "unknown optimizer {other} (want two-phase|two-step)"
                    )),
                }
            }
            "--rate" => {
                let v = raw("--rate")
                    .parse::<f64>()
                    .unwrap_or_else(|_| die("--rate needs a numeric argument".to_string()));
                args.load.rate = Some(v);
            }
            "--retry-rejected" => args.load.retry_rejected = true,
            "--pipeline" => args.load.pipeline = num(&raw("--pipeline"), "--pipeline") as usize,
            "--deadline-ms" => {
                let v = num(&raw("--deadline-ms"), "--deadline-ms");
                args.load.deadline_ms = Some(v);
                chaos.deadline_ms = Some(v);
            }
            "--chaos" => chaos_seed = Some(num(&raw("--chaos"), "--chaos")),
            "--schedules" => chaos.schedules = num(&raw("--schedules"), "--schedules"),
            "--chaos-queries" => {
                chaos.queries_per_schedule = num(&raw("--chaos-queries"), "--chaos-queries")
            }
            "--intensity" => {
                chaos.intensity = raw("--intensity")
                    .parse::<f64>()
                    .unwrap_or_else(|_| die("--intensity needs a numeric argument".to_string()));
            }
            "--reply-faults" => chaos.reply_faults = true,
            "--catalog-faults" => chaos.catalog_faults = true,
            "--serve" => args.serve_inline = true,
            "--fail-on-rejects" => args.fail_on_rejects = true,
            "--memo-smoke" => args.memo_smoke = true,
            "--bench-serve" => args.bench_serve = true,
            "--min-qps" => {
                args.min_qps = Some(
                    raw("--min-qps")
                        .parse::<f64>()
                        .unwrap_or_else(|_| die("--min-qps needs a numeric argument".to_string())),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: csqp-load [--addr HOST:PORT] [--clients N] [--seconds T | --queries N] \
                     [--seed S] [--policy DS|QS|HY|mix] [--objective O] \
                     [--optimizer two-phase|two-step] [--rate R] [--retry-rejected] \
                     [--deadline-ms D] [--pipeline N] [--serve] [--fail-on-rejects] \
                     [--chaos SEED] [--schedules N] [--chaos-queries N] [--intensity F] \
                     [--reply-faults] [--catalog-faults] [--memo-smoke] \
                     [--bench-serve] [--min-qps F]"
                );
                std::process::exit(0);
            }
            other => die(format!("unknown flag {other}")),
        }
    }
    if args.load.clients == 0 {
        die("--clients must be at least 1".to_string());
    }
    if let Some(seed) = chaos_seed {
        chaos.seed = seed;
        chaos.addr = args.load.addr.clone();
        if chaos.catalog_faults && !args.serve_inline {
            die(
                "--catalog-faults needs --serve (the soak manages its own pair of \
                 fresh inline servers to prove digest repeatability)"
                    .to_string(),
            );
        }
        args.chaos = Some(chaos);
    } else if chaos.catalog_faults {
        die("--catalog-faults needs --chaos SEED".to_string());
    }
    args
}

fn num(v: &str, name: &str) -> u64 {
    v.parse::<u64>()
        .unwrap_or_else(|_| die(format!("{name} needs a numeric argument")))
}

fn die(msg: String) -> ! {
    eprintln!("csqp-load: {msg}");
    std::process::exit(2)
}

/// With both `--pipeline N` and `--chaos`, a pipelined determinism smoke
/// precedes the soak: the same seeded mix runs stop-and-wait and then
/// pipelined, and the two reply digests must be byte-identical.
fn run_pipeline_smoke(load: &LoadConfig) -> Result<(), String> {
    let base = LoadConfig {
        queries_per_client: Some(load.queries_per_client.unwrap_or(8)),
        pipeline: 1,
        ..load.clone()
    };
    println!(
        "csqp-load: pipeline smoke, seed {} ({} clients x {} queries, window {})",
        base.seed,
        base.clients,
        base.queries_per_client.unwrap_or(8),
        load.pipeline
    );
    let sequential = run_load(&base).map_err(|e| format!("stop-and-wait load failed: {e}"))?;
    let pipelined = run_load(&LoadConfig {
        pipeline: load.pipeline,
        ..base
    })
    .map_err(|e| format!("pipelined load failed: {e}"))?;
    if sequential.errors > 0 || pipelined.errors > 0 {
        return Err(format!(
            "pipeline smoke saw errors ({} stop-and-wait, {} pipelined)",
            sequential.errors, pipelined.errors
        ));
    }
    if sequential.digest != pipelined.digest {
        return Err(format!(
            "pipeline smoke digest mismatch: {:016x} stop-and-wait vs {:016x} at window {}",
            sequential.digest, pipelined.digest, load.pipeline
        ));
    }
    println!(
        "csqp-load: pipeline x{} digest matches stop-and-wait ({:016x})",
        load.pipeline, sequential.digest
    );
    Ok(())
}

/// The memo acceptance smoke: the same seeded two-step mix against a
/// memo-enabled and a memo-disabled server must produce byte-identical
/// reply digests, and the memo server must report hits — proving the
/// memo changes CPU spent, never results served.
fn run_memo_smoke(load: &LoadConfig) -> Result<(), String> {
    let spawn = |memo: bool| {
        Server::bind(ServerConfig {
            memo,
            ..ServerConfig::default()
        })
        .and_then(|s| s.spawn())
        .map_err(|e| format!("memo smoke server (memo={memo}) failed: {e}"))
    };
    let on = spawn(true)?;
    let off = spawn(false)?;
    let base = LoadConfig {
        queries_per_client: Some(load.queries_per_client.unwrap_or(6)),
        optimizer: OptimizerMode::TwoStep,
        ..load.clone()
    };
    println!(
        "csqp-load: memo smoke, seed {} ({} clients x {} queries, two-step)",
        base.seed,
        base.clients,
        base.queries_per_client.unwrap_or(6)
    );
    let result = (|| {
        let warm = run_load(&LoadConfig {
            addr: on.addr().to_string(),
            ..base.clone()
        })
        .map_err(|e| format!("memo-on load failed: {e}"))?;
        let cold = run_load(&LoadConfig {
            addr: off.addr().to_string(),
            ..base.clone()
        })
        .map_err(|e| format!("memo-off load failed: {e}"))?;
        if warm.errors > 0 || cold.errors > 0 {
            return Err(format!(
                "memo smoke saw errors ({} memo-on, {} memo-off)",
                warm.errors, cold.errors
            ));
        }
        if warm.digest != cold.digest {
            return Err(format!(
                "memo smoke digest mismatch: {:016x} with the memo vs {:016x} without",
                warm.digest, cold.digest
            ));
        }
        let snap = on.service().stats_snapshot();
        if snap.memo_hits == 0 {
            return Err(format!(
                "memo smoke never hit the table over a repeated mix: {snap:?}"
            ));
        }
        println!(
            "csqp-load: memo digest matches --no-memo ({:016x}); {} hits / {} misses / {} bytes",
            warm.digest, snap.memo_hits, snap.memo_misses, snap.memo_bytes
        );
        Ok(())
    })();
    on.shutdown();
    off.shutdown();
    result
}

/// Run the soak twice with the same seed: the second run must reproduce
/// the first one's reply digest, and both must hold the robustness
/// invariants.
fn run_chaos_twice(cfg: &ChaosConfig) -> Result<(), String> {
    println!(
        "csqp-load: chaos soak, seed {} ({} schedules x {} queries, intensity {:.2})",
        cfg.seed, cfg.schedules, cfg.queries_per_schedule, cfg.intensity
    );
    let first = run_chaos(cfg).map_err(|e| format!("chaos soak failed: {e}"))?;
    println!("{}", first.render());
    if !first.healthy() {
        return Err("chaos soak violated a robustness invariant".to_string());
    }
    let second = run_chaos(cfg).map_err(|e| format!("chaos soak (repeat) failed: {e}"))?;
    if second.digest != first.digest {
        return Err(format!(
            "chaos digest mismatch: {:016x} then {:016x} for seed {}",
            first.digest, second.digest, cfg.seed
        ));
    }
    if !second.healthy() {
        return Err("chaos soak repeat violated a robustness invariant".to_string());
    }
    println!(
        "csqp-load: chaos repeat digest matches ({:016x})",
        first.digest
    );
    Ok(())
}

/// The catalog-fault soak: the same seeded schedule runs against two
/// *fresh* inline servers, each arming catalog propagation faults from
/// the matching seeded plan. The drift model is stateful on the server
/// (epoch lag carries across queries), so repeatability is proved
/// across servers rather than back-to-back runs on one — same seed,
/// same fresh state, same reply digest. Both recorded drift traces are
/// audited against the staleness bound afterwards.
fn run_catalog_chaos(chaos: &ChaosConfig) -> Result<(), String> {
    let bound = ServerConfig::default().catalog_lag;
    let spawn = || {
        // One event thread = one shard = one catalog replica: shard
        // routing is by file descriptor, which the seed does not
        // control, so a single shard is what makes the drift
        // trajectory a pure function of the request stream.
        Server::bind(ServerConfig {
            event_threads: 1,
            catalog_faults: Some(FaultPlan::new(chaos.seed, chaos.intensity)),
            ..ServerConfig::default()
        })
        .and_then(|s| s.spawn())
        .map_err(|e| format!("catalog chaos server failed: {e}"))
    };
    println!(
        "csqp-load: catalog chaos soak, seed {} ({} schedules x {} queries, \
         intensity {:.2}, lag bound {bound})",
        chaos.seed, chaos.schedules, chaos.queries_per_schedule, chaos.intensity
    );
    let a = spawn()?;
    let b = spawn()?;
    let result = (|| {
        let soak = |handle: &ServerHandle| {
            run_chaos(&ChaosConfig {
                addr: handle.addr().to_string(),
                ..chaos.clone()
            })
            .map_err(|e| format!("catalog chaos soak failed: {e}"))
        };
        let first = soak(&a)?;
        println!("{}", first.render());
        if !first.healthy() {
            return Err("catalog chaos soak violated a robustness invariant".to_string());
        }
        audit_drift(&a, bound)?;
        let second = soak(&b)?;
        if !second.healthy() {
            return Err(
                "catalog chaos soak on the fresh server violated a robustness invariant"
                    .to_string(),
            );
        }
        if second.digest != first.digest {
            return Err(format!(
                "catalog chaos digest mismatch across fresh servers: \
                 {:016x} vs {:016x} for seed {}",
                first.digest, second.digest, chaos.seed
            ));
        }
        audit_drift(&b, bound)?;
        println!(
            "csqp-load: catalog chaos digest matches across fresh servers ({:016x})",
            first.digest
        );
        Ok(())
    })();
    a.shutdown();
    b.shutdown();
    result
}

/// Audit a server's recorded catalog drift trace: replay it
/// through `csqp-verify`'s drift-conformance pass and fail on any
/// violation of the degradation lattice.
fn audit_drift(handle: &ServerHandle, bound: u64) -> Result<(), String> {
    let trace = handle.service().drift_trace();
    if trace.is_empty() {
        return Err("catalog faults were armed but the drift trace is empty".to_string());
    }
    let report = csqp::verify::catalog::check_drift(&trace, bound);
    if !report.is_clean() {
        return Err(format!(
            "drift trace failed conformance against bound {bound}:\n{report}"
        ));
    }
    let snap = handle.service().stats_snapshot();
    println!(
        "csqp-load: drift audit clean over {} events (coordinator e{}, {} refreshes, \
         {} degraded, {} rejected, max lag {})",
        trace.len(),
        snap.catalog_epoch,
        snap.catalog_refreshes,
        snap.catalog_stale_degraded,
        snap.catalog_stale_rejected,
        snap.catalog_max_lag
    );
    Ok(())
}

/// The pinned serving benchmark: a seeded closed-loop run whose QPS and
/// latency percentiles are written to `BENCH_serve.json`. `min_qps` is
/// the CI regression floor.
fn run_bench_serve(load: &LoadConfig, min_qps: Option<f64>) -> Result<(), String> {
    let queries = load.queries_per_client.unwrap_or(64);
    let cfg = LoadConfig {
        queries_per_client: Some(queries),
        ..load.clone()
    };
    println!(
        "csqp-load: serve bench, seed {} ({} clients x {queries} queries, closed loop)",
        cfg.seed, cfg.clients
    );
    let report = run_load(&cfg).map_err(|e| format!("bench load failed: {e}"))?;
    println!("{}", report.render());
    if report.errors > 0 {
        return Err(format!("bench run saw {} query errors", report.errors));
    }
    let bench = obj(vec![
        ("bench", Json::from("csqp-load --bench-serve")),
        ("seed", Json::from(cfg.seed)),
        ("clients", Json::from(cfg.clients as u64)),
        ("queries_per_client", Json::from(queries)),
        ("queries", Json::from(report.queries)),
        ("rejected", Json::from(report.rejected)),
        ("degraded", Json::from(report.degraded)),
        ("timed_out", Json::from(report.timed_out)),
        ("throughput_qps", Json::from(report.throughput_qps)),
        ("p50_ms", Json::from(report.p50_ms)),
        ("p95_ms", Json::from(report.p95_ms)),
        ("p99_ms", Json::from(report.p99_ms)),
    ]);
    std::fs::write("BENCH_serve.json", bench.render_pretty() + "\n")
        .map_err(|e| format!("writing BENCH_serve.json failed: {e}"))?;
    println!(
        "csqp-load: wrote BENCH_serve.json ({:.1} qps, p99 {:.1} ms)",
        report.throughput_qps, report.p99_ms
    );
    if let Some(floor) = min_qps {
        if report.throughput_qps < floor {
            return Err(format!(
                "throughput {:.1} qps fell below the --min-qps floor {floor:.1}",
                report.throughput_qps
            ));
        }
        println!("csqp-load: qps floor {floor:.1} holds");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = parse_args();

    // The memo smoke manages its own pair of inline servers.
    if args.memo_smoke {
        return match run_memo_smoke(&args.load) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("csqp-load: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    // The catalog-fault soak manages its own pair of fresh inline
    // servers (epoch lag is server state, so repeatability is proved
    // across servers, not runs).
    if let Some(chaos) = &args.chaos {
        if chaos.catalog_faults {
            return match run_catalog_chaos(chaos) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("csqp-load: {msg}");
                    ExitCode::FAILURE
                }
            };
        }
    }

    // In-process loopback server for one-command smokes. With
    // `--reply-faults` it is armed with the plan the soak expects
    // (seeded from `--chaos SEED` and `--intensity`).
    let inline = if args.serve_inline {
        let mut config = ServerConfig::default();
        if let Some(chaos) = &args.chaos {
            if chaos.reply_faults {
                config.reply_faults = Some(FaultPlan::new(chaos.seed, chaos.intensity));
            }
        }
        let server = match Server::bind(config) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("csqp-load: inline server bind failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let handle = match server.spawn() {
            Ok(h) => h,
            Err(e) => {
                eprintln!("csqp-load: inline server spawn failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        args.load.addr = handle.addr().to_string();
        if let Some(chaos) = args.chaos.as_mut() {
            chaos.addr = handle.addr().to_string();
        }
        println!("csqp-load: inline server on {}", handle.addr());
        Some(handle)
    } else {
        None
    };

    // Chaos mode: run the seeded fault schedule twice; fail on any
    // invariant violation or a digest mismatch between the two runs.
    // With `--pipeline N`, a pipelined determinism smoke runs first
    // (skipped when the reply path is armed: mangled replies would make
    // the client-side load generator see wire errors by design).
    if let Some(chaos) = &args.chaos {
        let smoke = if args.load.pipeline > 1 && !chaos.reply_faults {
            run_pipeline_smoke(&args.load)
        } else {
            Ok(())
        };
        let code = match smoke.and_then(|()| run_chaos_twice(chaos)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("csqp-load: {msg}");
                ExitCode::FAILURE
            }
        };
        if let Some(handle) = inline {
            handle.shutdown();
        }
        return code;
    }

    // Bench mode: a pinned closed-loop run whose figures land in
    // BENCH_serve.json, with an optional QPS regression floor.
    if args.bench_serve {
        let code = match run_bench_serve(&args.load, args.min_qps) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("csqp-load: {msg}");
                ExitCode::FAILURE
            }
        };
        if let Some(handle) = inline {
            handle.shutdown();
        }
        return code;
    }

    let report = match run_load(&args.load) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("csqp-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.render());

    if let Some(handle) = inline {
        handle.shutdown();
    }

    if report.errors > 0 {
        eprintln!("csqp-load: {} queries failed", report.errors);
        return ExitCode::FAILURE;
    }
    if args.fail_on_rejects && report.rejected > 0 {
        eprintln!(
            "csqp-load: {} queries rejected by admission control",
            report.rejected
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
