//! `csqp-load` — drive a seeded workload mix against a `csqp-serve`
//! instance and report throughput and latency percentiles.
//!
//! ```text
//! cargo run --release --bin csqp-load -- [--addr HOST:PORT] [--clients N]
//!     [--seconds T | --queries N] [--seed S] [--policy DS|QS|HY|mix]
//!     [--objective communication|response-time|total-cost]
//!     [--optimizer two-phase|two-step] [--rate R] [--retry-rejected]
//!     [--deadline-ms D] [--pipeline N] [--serve] [--fail-on-rejects]
//!     [--chaos SEED] [--schedules N] [--chaos-queries N] [--intensity F]
//!     [--reply-faults] [--catalog-faults] [--memo-smoke]
//!     [--mem-budget PAGES] [--bench-serve] [--min-qps F]
//!     [--reactor poll|epoll] [--bench-reactor] [--idle-sessions N]
//! ```
//!
//! `--serve` spins up an in-process server on a free port and loads it —
//! the one-command loopback smoke CI runs. `--queries N` issues exactly N
//! queries per client (deterministic runs: the printed digest is
//! identical for identical seeds). `--rate` switches from closed-loop to
//! paced open-loop arrivals. `--pipeline N` keeps up to N queries in
//! flight per connection (clamped to the window the server advertises);
//! the digest is unchanged by pipelining.
//!
//! `--memo-smoke` is the memoization acceptance check: it spins up two
//! in-process servers — one with the shared site-selection memo, one
//! with `--no-memo` semantics — drives the identical seeded two-step mix
//! against both, and fails unless the reply digests are byte-identical
//! and the memo server actually hit its table.
//!
//! `--mem-budget PAGES` is the guaranteed-bound admission smoke: a
//! budget-starved inline server and an unbudgeted one serve the same
//! seeded all-QS mix digest-identically (QS footprints are the result
//! bound alone, so the gate must not touch them), then a mixed-policy
//! mix against the starved server must degrade DS/HY plans to QS with
//! `mem-bound` while conservation holds. See DESIGN.md §16.
//!
//! `--chaos SEED` switches from load generation to the fault-injection
//! soak: the seeded fault schedule runs **twice** and the run fails if
//! the reply digests differ, if accounting conservation is violated, or
//! if a post-soak probe shows a leaked worker. Combine with `--serve`
//! for a self-contained chaos smoke. `--reply-faults` additionally arms
//! the reply path: with `--serve` the inline server mangles replies from
//! the matching seeded plan, and the soak accounts every mangled reply
//! deterministically.
//!
//! `--catalog-faults` arms the replicated catalog instead (requires
//! `--serve`; the soak manages its own pair of inline servers): each
//! server drives its per-shard replica epochs from the matching seeded
//! plan (withheld refreshes, torn and reordered deliveries, poisoned
//! cached-fraction snapshots), so some queries degrade to query shipping
//! with `stale-catalog` and over-bound QS requests are rejected with a
//! retry hint — all typed replies. Because epoch lag is *server state*
//! that carries across queries, repeatability is proved across two
//! fresh servers rather than back-to-back runs on one: same seed, same
//! fresh state, byte-identical digest. Both recorded drift traces are
//! then audited with `csqp-verify`'s drift-conformance pass: no serve
//! past the staleness bound, no applied epoch regression, faithful lag
//! accounting.
//!
//! `--bench-serve` is the serving-stack perf artifact: a pinned seeded
//! closed-loop run (combine with `--serve` for the self-contained CI
//! gate) whose QPS and latency percentiles land in `BENCH_serve.json`.
//! `--min-qps F` turns it into a regression gate: the run fails when
//! throughput drops below the floor.
//!
//! `--reactor poll|epoll` pins the readiness backend of every inline
//! server this binary spawns (default: the host default — `epoll` on
//! Linux). Served bytes are identical either way.
//!
//! `--bench-reactor` is the reactor perf artifact: for **each** backend
//! the host supports it spins up an inline server, parks
//! `--idle-sessions N` idle connections on it (default 512 — the mixed
//! idle+active shape the 100k scale suite extrapolates), drives the
//! same seeded closed-loop mix, and records QPS plus the reactor's
//! syscall counters (wait calls/sec, events dispatched/sec) in
//! `BENCH_reactor.json`. The run fails if the backends' reply digests
//! differ, if `--min-qps` is violated on any backend, or if the epoll
//! interest cache degrades into an `epoll_ctl` storm (ctl calls are
//! gated against the work actually done).

use std::process::ExitCode;
use std::time::Duration;

use csqp::core::Policy;
use csqp::cost::Objective;
use csqp::json::{obj, Json};
use csqp::net::chaos::FaultPlan;
use csqp::net::poll::Backend;
use csqp::serve::chaos::{run_chaos, ChaosConfig};
use csqp::serve::proto::OptimizerMode;
use csqp::serve::{run_load, LoadConfig, Server, ServerConfig, ServerHandle};

struct Args {
    load: LoadConfig,
    chaos: Option<ChaosConfig>,
    serve_inline: bool,
    fail_on_rejects: bool,
    memo_smoke: bool,
    mem_budget_smoke: Option<u64>,
    bench_serve: bool,
    min_qps: Option<f64>,
    reactor: Option<Backend>,
    bench_reactor: bool,
    idle_sessions: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        load: LoadConfig::default(),
        chaos: None,
        serve_inline: false,
        fail_on_rejects: false,
        memo_smoke: false,
        mem_budget_smoke: None,
        bench_serve: false,
        min_qps: None,
        reactor: None,
        bench_reactor: false,
        idle_sessions: 512,
    };
    let mut chaos = ChaosConfig::default();
    let mut chaos_seed = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut raw = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(format!("{name} needs an argument")))
        };
        match flag.as_str() {
            "--addr" => args.load.addr = raw("--addr"),
            "--clients" => args.load.clients = num(&raw("--clients"), "--clients") as usize,
            "--seconds" => {
                let v = raw("--seconds")
                    .parse::<f64>()
                    .unwrap_or_else(|_| die("--seconds needs a numeric argument".to_string()));
                args.load.duration = Duration::from_secs_f64(v);
            }
            "--queries" => args.load.queries_per_client = Some(num(&raw("--queries"), "--queries")),
            "--seed" => args.load.seed = num(&raw("--seed"), "--seed"),
            "--policy" => {
                args.load.policy = match raw("--policy").as_str() {
                    "DS" => Some(Policy::DataShipping),
                    "QS" => Some(Policy::QueryShipping),
                    "HY" => Some(Policy::HybridShipping),
                    "mix" => None,
                    other => die(format!("unknown policy {other} (want DS|QS|HY|mix)")),
                }
            }
            "--objective" => {
                args.load.objective = match raw("--objective").as_str() {
                    "communication" => Objective::Communication,
                    "response-time" => Objective::ResponseTime,
                    "total-cost" => Objective::TotalCost,
                    other => die(format!("unknown objective {other}")),
                }
            }
            "--optimizer" => {
                args.load.optimizer = match raw("--optimizer").as_str() {
                    "two-phase" => OptimizerMode::TwoPhase,
                    "two-step" => OptimizerMode::TwoStep,
                    other => die(format!(
                        "unknown optimizer {other} (want two-phase|two-step)"
                    )),
                }
            }
            "--rate" => {
                let v = raw("--rate")
                    .parse::<f64>()
                    .unwrap_or_else(|_| die("--rate needs a numeric argument".to_string()));
                args.load.rate = Some(v);
            }
            "--retry-rejected" => args.load.retry_rejected = true,
            "--pipeline" => args.load.pipeline = num(&raw("--pipeline"), "--pipeline") as usize,
            "--deadline-ms" => {
                let v = num(&raw("--deadline-ms"), "--deadline-ms");
                args.load.deadline_ms = Some(v);
                chaos.deadline_ms = Some(v);
            }
            "--chaos" => chaos_seed = Some(num(&raw("--chaos"), "--chaos")),
            "--schedules" => chaos.schedules = num(&raw("--schedules"), "--schedules"),
            "--chaos-queries" => {
                chaos.queries_per_schedule = num(&raw("--chaos-queries"), "--chaos-queries")
            }
            "--intensity" => {
                chaos.intensity = raw("--intensity")
                    .parse::<f64>()
                    .unwrap_or_else(|_| die("--intensity needs a numeric argument".to_string()));
            }
            "--reply-faults" => chaos.reply_faults = true,
            "--catalog-faults" => chaos.catalog_faults = true,
            "--serve" => args.serve_inline = true,
            "--fail-on-rejects" => args.fail_on_rejects = true,
            "--memo-smoke" => args.memo_smoke = true,
            "--mem-budget" => {
                args.mem_budget_smoke = Some(num(&raw("--mem-budget"), "--mem-budget"))
            }
            "--bench-serve" => args.bench_serve = true,
            "--reactor" => {
                let v = raw("--reactor");
                args.reactor =
                    Some(Backend::parse(&v).unwrap_or_else(|| {
                        die(format!("--reactor must be poll or epoll, got {v}"))
                    }));
            }
            "--bench-reactor" => args.bench_reactor = true,
            "--idle-sessions" => {
                args.idle_sessions = num(&raw("--idle-sessions"), "--idle-sessions") as usize
            }
            "--min-qps" => {
                args.min_qps = Some(
                    raw("--min-qps")
                        .parse::<f64>()
                        .unwrap_or_else(|_| die("--min-qps needs a numeric argument".to_string())),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: csqp-load [--addr HOST:PORT] [--clients N] [--seconds T | --queries N] \
                     [--seed S] [--policy DS|QS|HY|mix] [--objective O] \
                     [--optimizer two-phase|two-step] [--rate R] [--retry-rejected] \
                     [--deadline-ms D] [--pipeline N] [--serve] [--fail-on-rejects] \
                     [--chaos SEED] [--schedules N] [--chaos-queries N] [--intensity F] \
                     [--reply-faults] [--catalog-faults] [--memo-smoke] \
                     [--mem-budget PAGES] [--bench-serve] [--min-qps F] \
                     [--reactor poll|epoll] [--bench-reactor] [--idle-sessions N]"
                );
                std::process::exit(0);
            }
            other => die(format!("unknown flag {other}")),
        }
    }
    if args.load.clients == 0 {
        die("--clients must be at least 1".to_string());
    }
    if let Some(seed) = chaos_seed {
        chaos.seed = seed;
        chaos.addr = args.load.addr.clone();
        if chaos.catalog_faults && !args.serve_inline {
            die(
                "--catalog-faults needs --serve (the soak manages its own pair of \
                 fresh inline servers to prove digest repeatability)"
                    .to_string(),
            );
        }
        args.chaos = Some(chaos);
    } else if chaos.catalog_faults {
        die("--catalog-faults needs --chaos SEED".to_string());
    }
    args
}

fn num(v: &str, name: &str) -> u64 {
    v.parse::<u64>()
        .unwrap_or_else(|_| die(format!("{name} needs a numeric argument")))
}

fn die(msg: String) -> ! {
    eprintln!("csqp-load: {msg}");
    std::process::exit(2)
}

/// The server configuration every inline server starts from: the
/// defaults, with the readiness backend pinned when `--reactor` asked
/// for one.
fn base_server_config(reactor: Option<Backend>) -> ServerConfig {
    let mut config = ServerConfig::default();
    if let Some(backend) = reactor {
        config.reactor = backend;
    }
    config
}

/// With both `--pipeline N` and `--chaos`, a pipelined determinism smoke
/// precedes the soak: the same seeded mix runs stop-and-wait and then
/// pipelined, and the two reply digests must be byte-identical.
fn run_pipeline_smoke(load: &LoadConfig) -> Result<(), String> {
    let base = LoadConfig {
        queries_per_client: Some(load.queries_per_client.unwrap_or(8)),
        pipeline: 1,
        ..load.clone()
    };
    println!(
        "csqp-load: pipeline smoke, seed {} ({} clients x {} queries, window {})",
        base.seed,
        base.clients,
        base.queries_per_client.unwrap_or(8),
        load.pipeline
    );
    let sequential = run_load(&base).map_err(|e| format!("stop-and-wait load failed: {e}"))?;
    let pipelined = run_load(&LoadConfig {
        pipeline: load.pipeline,
        ..base
    })
    .map_err(|e| format!("pipelined load failed: {e}"))?;
    if sequential.errors > 0 || pipelined.errors > 0 {
        return Err(format!(
            "pipeline smoke saw errors ({} stop-and-wait, {} pipelined)",
            sequential.errors, pipelined.errors
        ));
    }
    if sequential.digest != pipelined.digest {
        return Err(format!(
            "pipeline smoke digest mismatch: {:016x} stop-and-wait vs {:016x} at window {}",
            sequential.digest, pipelined.digest, load.pipeline
        ));
    }
    println!(
        "csqp-load: pipeline x{} digest matches stop-and-wait ({:016x})",
        load.pipeline, sequential.digest
    );
    Ok(())
}

/// The memo acceptance smoke: the same seeded two-step mix against a
/// memo-enabled and a memo-disabled server must produce byte-identical
/// reply digests, and the memo server must report hits — proving the
/// memo changes CPU spent, never results served.
fn run_memo_smoke(load: &LoadConfig, reactor: Option<Backend>) -> Result<(), String> {
    let spawn = |memo: bool| {
        Server::bind(ServerConfig {
            memo,
            ..base_server_config(reactor)
        })
        .and_then(|s| s.spawn())
        .map_err(|e| format!("memo smoke server (memo={memo}) failed: {e}"))
    };
    let on = spawn(true)?;
    let off = spawn(false)?;
    let base = LoadConfig {
        queries_per_client: Some(load.queries_per_client.unwrap_or(6)),
        optimizer: OptimizerMode::TwoStep,
        ..load.clone()
    };
    println!(
        "csqp-load: memo smoke, seed {} ({} clients x {} queries, two-step)",
        base.seed,
        base.clients,
        base.queries_per_client.unwrap_or(6)
    );
    let result = (|| {
        let warm = run_load(&LoadConfig {
            addr: on.addr().to_string(),
            ..base.clone()
        })
        .map_err(|e| format!("memo-on load failed: {e}"))?;
        let cold = run_load(&LoadConfig {
            addr: off.addr().to_string(),
            ..base.clone()
        })
        .map_err(|e| format!("memo-off load failed: {e}"))?;
        if warm.errors > 0 || cold.errors > 0 {
            return Err(format!(
                "memo smoke saw errors ({} memo-on, {} memo-off)",
                warm.errors, cold.errors
            ));
        }
        if warm.digest != cold.digest {
            return Err(format!(
                "memo smoke digest mismatch: {:016x} with the memo vs {:016x} without",
                warm.digest, cold.digest
            ));
        }
        let snap = on.service().stats_snapshot();
        if snap.memo_hits == 0 {
            return Err(format!(
                "memo smoke never hit the table over a repeated mix: {snap:?}"
            ));
        }
        println!(
            "csqp-load: memo digest matches --no-memo ({:016x}); {} hits / {} misses / {} bytes",
            warm.digest, snap.memo_hits, snap.memo_misses, snap.memo_bytes
        );
        Ok(())
    })();
    on.shutdown();
    off.shutdown();
    result
}

/// The guaranteed-bound admission smoke (`--serve --mem-budget PAGES`):
///
/// 1. The same seeded all-QS mix runs against a budget-starved server
///    and an unbudgeted one. QS plans join at the servers, so their
///    guaranteed client footprint is the result bound alone — the gate
///    must admit every one untouched and the reply digests must be
///    byte-identical (the digest folds the whole RESULT frame, degrade
///    fields included, so this also proves no spurious degradation).
/// 2. A mixed-policy mix runs against the starved server: DS/HY plans
///    whose worst-case client join inputs exceed the budget must degrade
///    to QS with `mem-bound`, with zero errors and the accounting
///    conservation invariant intact.
fn run_mem_budget_smoke(
    load: &LoadConfig,
    budget: u64,
    reactor: Option<Backend>,
) -> Result<(), String> {
    let spawn = |budget: Option<u64>| {
        Server::bind(ServerConfig {
            mem_budget_pages: budget,
            ..base_server_config(reactor)
        })
        .and_then(|s| s.spawn())
        .map_err(|e| format!("mem-budget smoke server (budget={budget:?}) failed: {e}"))
    };
    let starved = spawn(Some(budget))?;
    let honest = spawn(None)?;
    let base = LoadConfig {
        queries_per_client: Some(load.queries_per_client.unwrap_or(8)),
        ..load.clone()
    };
    println!(
        "csqp-load: mem-budget smoke, seed {} ({} clients x {} queries, budget {budget} pages)",
        base.seed,
        base.clients,
        base.queries_per_client.unwrap_or(8)
    );
    let result = (|| {
        let qs = LoadConfig {
            policy: Some(Policy::QueryShipping),
            ..base.clone()
        };
        let gated = run_load(&LoadConfig {
            addr: starved.addr().to_string(),
            ..qs.clone()
        })
        .map_err(|e| format!("budget-starved QS load failed: {e}"))?;
        let ungated = run_load(&LoadConfig {
            addr: honest.addr().to_string(),
            ..qs
        })
        .map_err(|e| format!("unbudgeted QS load failed: {e}"))?;
        if gated.errors > 0 || gated.rejected > 0 || ungated.errors > 0 {
            return Err(format!(
                "QS mix must pass the gate untouched: {} errors / {} rejects starved, \
                 {} errors unbudgeted",
                gated.errors, gated.rejected, ungated.errors
            ));
        }
        if gated.digest != ungated.digest {
            return Err(format!(
                "mem-budget smoke digest mismatch: {:016x} starved vs {:016x} unbudgeted \
                 for an all-QS mix",
                gated.digest, ungated.digest
            ));
        }
        println!(
            "csqp-load: budget-starved QS digest matches unbudgeted ({:016x})",
            gated.digest
        );
        // Phase 2: the mixed-policy mix must take the degradation path.
        let mixed = run_load(&LoadConfig {
            addr: starved.addr().to_string(),
            policy: None,
            ..base.clone()
        })
        .map_err(|e| format!("mixed-policy load failed: {e}"))?;
        if mixed.errors > 0 {
            return Err(format!("mixed-policy mix saw {} errors", mixed.errors));
        }
        let snap = starved.service().stats_snapshot();
        if snap.mem_bound_degraded == 0 {
            return Err(format!(
                "budget {budget} never degraded a DS/HY plan over a mixed mix: {snap:?}"
            ));
        }
        let terminal =
            snap.queries_served + snap.rejected + snap.errors + snap.aborted + snap.timed_out;
        if snap.submitted != terminal {
            return Err(format!(
                "conservation violated after the smoke: {} submitted vs {terminal} terminal",
                snap.submitted
            ));
        }
        println!(
            "csqp-load: mixed mix degraded {} plans to QS under the {budget}-page budget \
             ({} rejected); conservation holds over {} submitted",
            snap.mem_bound_degraded, snap.mem_bound_rejected, snap.submitted
        );
        Ok(())
    })();
    starved.shutdown();
    honest.shutdown();
    result
}

/// Run the soak twice with the same seed: the second run must reproduce
/// the first one's reply digest, and both must hold the robustness
/// invariants.
fn run_chaos_twice(cfg: &ChaosConfig) -> Result<(), String> {
    println!(
        "csqp-load: chaos soak, seed {} ({} schedules x {} queries, intensity {:.2})",
        cfg.seed, cfg.schedules, cfg.queries_per_schedule, cfg.intensity
    );
    let first = run_chaos(cfg).map_err(|e| format!("chaos soak failed: {e}"))?;
    println!("{}", first.render());
    if !first.healthy() {
        return Err("chaos soak violated a robustness invariant".to_string());
    }
    let second = run_chaos(cfg).map_err(|e| format!("chaos soak (repeat) failed: {e}"))?;
    if second.digest != first.digest {
        return Err(format!(
            "chaos digest mismatch: {:016x} then {:016x} for seed {}",
            first.digest, second.digest, cfg.seed
        ));
    }
    if !second.healthy() {
        return Err("chaos soak repeat violated a robustness invariant".to_string());
    }
    println!(
        "csqp-load: chaos repeat digest matches ({:016x})",
        first.digest
    );
    Ok(())
}

/// The catalog-fault soak: the same seeded schedule runs against two
/// *fresh* inline servers, each arming catalog propagation faults from
/// the matching seeded plan. The drift model is stateful on the server
/// (epoch lag carries across queries), so repeatability is proved
/// across servers rather than back-to-back runs on one — same seed,
/// same fresh state, same reply digest. Both recorded drift traces are
/// audited against the staleness bound afterwards.
fn run_catalog_chaos(chaos: &ChaosConfig, reactor: Option<Backend>) -> Result<(), String> {
    let bound = ServerConfig::default().catalog_lag;
    let spawn = || {
        // One event thread = one shard = one catalog replica: shard
        // routing is by file descriptor, which the seed does not
        // control, so a single shard is what makes the drift
        // trajectory a pure function of the request stream.
        Server::bind(ServerConfig {
            event_threads: 1,
            catalog_faults: Some(FaultPlan::new(chaos.seed, chaos.intensity)),
            ..base_server_config(reactor)
        })
        .and_then(|s| s.spawn())
        .map_err(|e| format!("catalog chaos server failed: {e}"))
    };
    println!(
        "csqp-load: catalog chaos soak, seed {} ({} schedules x {} queries, \
         intensity {:.2}, lag bound {bound})",
        chaos.seed, chaos.schedules, chaos.queries_per_schedule, chaos.intensity
    );
    let a = spawn()?;
    let b = spawn()?;
    let result = (|| {
        let soak = |handle: &ServerHandle| {
            run_chaos(&ChaosConfig {
                addr: handle.addr().to_string(),
                ..chaos.clone()
            })
            .map_err(|e| format!("catalog chaos soak failed: {e}"))
        };
        let first = soak(&a)?;
        println!("{}", first.render());
        if !first.healthy() {
            return Err("catalog chaos soak violated a robustness invariant".to_string());
        }
        audit_drift(&a, bound)?;
        let second = soak(&b)?;
        if !second.healthy() {
            return Err(
                "catalog chaos soak on the fresh server violated a robustness invariant"
                    .to_string(),
            );
        }
        if second.digest != first.digest {
            return Err(format!(
                "catalog chaos digest mismatch across fresh servers: \
                 {:016x} vs {:016x} for seed {}",
                first.digest, second.digest, chaos.seed
            ));
        }
        audit_drift(&b, bound)?;
        println!(
            "csqp-load: catalog chaos digest matches across fresh servers ({:016x})",
            first.digest
        );
        Ok(())
    })();
    a.shutdown();
    b.shutdown();
    result
}

/// Audit a server's recorded catalog drift trace: replay it
/// through `csqp-verify`'s drift-conformance pass and fail on any
/// violation of the degradation lattice.
fn audit_drift(handle: &ServerHandle, bound: u64) -> Result<(), String> {
    let trace = handle.service().drift_trace();
    if trace.is_empty() {
        return Err("catalog faults were armed but the drift trace is empty".to_string());
    }
    let report = csqp::verify::catalog::check_drift(&trace, bound);
    if !report.is_clean() {
        return Err(format!(
            "drift trace failed conformance against bound {bound}:\n{report}"
        ));
    }
    let snap = handle.service().stats_snapshot();
    println!(
        "csqp-load: drift audit clean over {} events (coordinator e{}, {} refreshes, \
         {} degraded, {} rejected, max lag {})",
        trace.len(),
        snap.catalog_epoch,
        snap.catalog_refreshes,
        snap.catalog_stale_degraded,
        snap.catalog_stale_rejected,
        snap.catalog_max_lag
    );
    Ok(())
}

/// The pinned serving benchmark: a seeded closed-loop run whose QPS and
/// latency percentiles are written to `BENCH_serve.json`. `min_qps` is
/// the CI regression floor.
fn run_bench_serve(load: &LoadConfig, min_qps: Option<f64>) -> Result<(), String> {
    let queries = load.queries_per_client.unwrap_or(64);
    let cfg = LoadConfig {
        queries_per_client: Some(queries),
        ..load.clone()
    };
    println!(
        "csqp-load: serve bench, seed {} ({} clients x {queries} queries, closed loop)",
        cfg.seed, cfg.clients
    );
    let report = run_load(&cfg).map_err(|e| format!("bench load failed: {e}"))?;
    println!("{}", report.render());
    if report.errors > 0 {
        return Err(format!("bench run saw {} query errors", report.errors));
    }
    let bench = obj(vec![
        ("bench", Json::from("csqp-load --bench-serve")),
        ("seed", Json::from(cfg.seed)),
        ("clients", Json::from(cfg.clients as u64)),
        ("queries_per_client", Json::from(queries)),
        ("queries", Json::from(report.queries)),
        ("rejected", Json::from(report.rejected)),
        ("degraded", Json::from(report.degraded)),
        ("timed_out", Json::from(report.timed_out)),
        ("throughput_qps", Json::from(report.throughput_qps)),
        ("p50_ms", Json::from(report.p50_ms)),
        ("p95_ms", Json::from(report.p95_ms)),
        ("p99_ms", Json::from(report.p99_ms)),
    ]);
    std::fs::write("BENCH_serve.json", bench.render_pretty() + "\n")
        .map_err(|e| format!("writing BENCH_serve.json failed: {e}"))?;
    println!(
        "csqp-load: wrote BENCH_serve.json ({:.1} qps, p99 {:.1} ms)",
        report.throughput_qps, report.p99_ms
    );
    if let Some(floor) = min_qps {
        if report.throughput_qps < floor {
            return Err(format!(
                "throughput {:.1} qps fell below the --min-qps floor {floor:.1}",
                report.throughput_qps
            ));
        }
        println!("csqp-load: qps floor {floor:.1} holds");
    }
    Ok(())
}

/// One backend's figures from the reactor bench.
struct ReactorBenchRun {
    backend: Backend,
    digest: u64,
    queries: u64,
    qps: f64,
    p99_ms: f64,
    wait_calls: u64,
    ctl_calls: u64,
    events_dispatched: u64,
}

impl ReactorBenchRun {
    /// Syscalls per second of run wall clock, derived from the load
    /// report's own throughput (`elapsed = queries / qps`) so the bench
    /// needs no clock of its own.
    fn per_sec(&self, count: u64) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        count as f64 * self.qps / self.queries as f64
    }
}

/// Drive the pinned mixed idle+active mix against a fresh inline server
/// on `backend` and collect its reactor counters.
fn bench_reactor_backend(
    load: &LoadConfig,
    backend: Backend,
    idle: usize,
) -> Result<ReactorBenchRun, String> {
    let handle = Server::bind(ServerConfig {
        reactor: backend,
        ..ServerConfig::default()
    })
    .and_then(|s| s.spawn())
    .map_err(|e| format!("reactor bench server ({backend}) failed: {e}"))?;
    let result = (|| {
        // Park the idle population first, and wait for the shards to
        // adopt every socket, so the active run's waits all happen with
        // the full registration table in place.
        let mut parked = Vec::with_capacity(idle);
        for i in 0..idle {
            parked.push(
                std::net::TcpStream::connect(handle.addr())
                    .map_err(|e| format!("idle connection {i} failed ({backend}): {e}"))?,
            );
        }
        let metrics = handle.service().metrics();
        for _ in 0..2_000 {
            if metrics.sessions_open() >= idle as u64 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if metrics.sessions_open() < idle as u64 {
            return Err(format!(
                "only {}/{idle} idle sessions registered ({backend})",
                metrics.sessions_open()
            ));
        }
        let report = run_load(&LoadConfig {
            addr: handle.addr().to_string(),
            ..load.clone()
        })
        .map_err(|e| format!("reactor bench load failed ({backend}): {e}"))?;
        if report.errors > 0 {
            return Err(format!(
                "reactor bench saw {} query errors ({backend})",
                report.errors
            ));
        }
        let snap = handle.service().stats_snapshot();
        drop(parked);
        Ok(ReactorBenchRun {
            backend,
            digest: report.digest,
            queries: report.queries,
            qps: report.throughput_qps,
            p99_ms: report.p99_ms,
            wait_calls: snap.reactor_wait_calls,
            ctl_calls: snap.reactor_ctl_calls,
            events_dispatched: snap.reactor_events_dispatched,
        })
    })();
    handle.shutdown();
    result
}

/// The reactor perf artifact: the same pinned idle+active mix against an
/// inline server per supported backend, figures in `BENCH_reactor.json`.
/// Gates: byte-identical reply digests across backends, the `--min-qps`
/// floor on every backend, and no `epoll_ctl` storm (the interest cache
/// must keep ctl traffic proportional to work done, not to wait count).
fn run_bench_reactor(load: &LoadConfig, min_qps: Option<f64>, idle: usize) -> Result<(), String> {
    let queries = load.queries_per_client.unwrap_or(32);
    let cfg = LoadConfig {
        queries_per_client: Some(queries),
        ..load.clone()
    };
    println!(
        "csqp-load: reactor bench, seed {} ({} clients x {queries} queries + {idle} idle sessions)",
        cfg.seed, cfg.clients
    );
    let mut runs = Vec::new();
    for &backend in Backend::all_supported() {
        let run = bench_reactor_backend(&cfg, backend, idle)?;
        println!(
            "csqp-load: {}: {:.1} qps, p99 {:.1} ms, {} waits ({:.1}/s), \
             {} ctls, {} events ({:.1}/s), digest {:016x}",
            run.backend,
            run.qps,
            run.p99_ms,
            run.wait_calls,
            run.per_sec(run.wait_calls),
            run.ctl_calls,
            run.events_dispatched,
            run.per_sec(run.events_dispatched),
            run.digest
        );
        runs.push(run);
    }
    for pair in runs.windows(2) {
        if pair[0].digest != pair[1].digest {
            return Err(format!(
                "reactor digest mismatch: {:016x} under {} vs {:016x} under {}",
                pair[0].digest, pair[0].backend, pair[1].digest, pair[1].backend
            ));
        }
    }
    let active = cfg.clients as u64;
    for run in &runs {
        if let Some(floor) = min_qps {
            if run.qps < floor {
                return Err(format!(
                    "{} throughput {:.1} qps fell below the --min-qps floor {floor:.1}",
                    run.backend, run.qps
                ));
            }
        }
        if run.backend == Backend::Epoll {
            // The interest-cache regression gate: ctl traffic must be
            // proportional to queries and session churn, never to wait
            // count (an uncached backend would re-register the whole
            // table every wait — idle × waits, orders of magnitude
            // bigger).
            let budget = 8 * run.queries + 4 * (idle as u64 + active) + 64;
            if run.ctl_calls > budget {
                return Err(format!(
                    "epoll_ctl storm: {} ctl calls exceed the cache budget {budget} \
                     ({} queries, {idle} idle sessions)",
                    run.ctl_calls, run.queries
                ));
            }
        }
    }
    let backends: Vec<Json> = runs
        .iter()
        .map(|run| {
            obj(vec![
                ("backend", Json::from(run.backend.name())),
                ("queries", Json::from(run.queries)),
                ("throughput_qps", Json::from(run.qps)),
                ("p99_ms", Json::from(run.p99_ms)),
                ("wait_calls", Json::from(run.wait_calls)),
                (
                    "wait_calls_per_sec",
                    Json::from(run.per_sec(run.wait_calls)),
                ),
                ("ctl_calls", Json::from(run.ctl_calls)),
                ("events_dispatched", Json::from(run.events_dispatched)),
                (
                    "events_per_sec",
                    Json::from(run.per_sec(run.events_dispatched)),
                ),
            ])
        })
        .collect();
    let bench = obj(vec![
        ("bench", Json::from("csqp-load --bench-reactor")),
        ("seed", Json::from(cfg.seed)),
        ("clients", Json::from(cfg.clients as u64)),
        ("queries_per_client", Json::from(queries)),
        ("idle_sessions", Json::from(idle as u64)),
        ("backends", Json::from(backends)),
    ]);
    std::fs::write("BENCH_reactor.json", bench.render_pretty() + "\n")
        .map_err(|e| format!("writing BENCH_reactor.json failed: {e}"))?;
    println!(
        "csqp-load: wrote BENCH_reactor.json ({} backends, digests agree)",
        runs.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut args = parse_args();

    // The reactor bench manages its own inline server per backend.
    if args.bench_reactor {
        return match run_bench_reactor(&args.load, args.min_qps, args.idle_sessions) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("csqp-load: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    // The memo smoke manages its own pair of inline servers.
    if args.memo_smoke {
        return match run_memo_smoke(&args.load, args.reactor) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("csqp-load: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    // The mem-budget smoke manages its own starved/unbudgeted pair of
    // inline servers.
    if let Some(budget) = args.mem_budget_smoke {
        return match run_mem_budget_smoke(&args.load, budget, args.reactor) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("csqp-load: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    // The catalog-fault soak manages its own pair of fresh inline
    // servers (epoch lag is server state, so repeatability is proved
    // across servers, not runs).
    if let Some(chaos) = &args.chaos {
        if chaos.catalog_faults {
            return match run_catalog_chaos(chaos, args.reactor) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("csqp-load: {msg}");
                    ExitCode::FAILURE
                }
            };
        }
    }

    // In-process loopback server for one-command smokes. With
    // `--reply-faults` it is armed with the plan the soak expects
    // (seeded from `--chaos SEED` and `--intensity`).
    let inline = if args.serve_inline {
        let mut config = base_server_config(args.reactor);
        if let Some(chaos) = &args.chaos {
            if chaos.reply_faults {
                config.reply_faults = Some(FaultPlan::new(chaos.seed, chaos.intensity));
            }
        }
        let server = match Server::bind(config) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("csqp-load: inline server bind failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let handle = match server.spawn() {
            Ok(h) => h,
            Err(e) => {
                eprintln!("csqp-load: inline server spawn failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        args.load.addr = handle.addr().to_string();
        if let Some(chaos) = args.chaos.as_mut() {
            chaos.addr = handle.addr().to_string();
        }
        println!("csqp-load: inline server on {}", handle.addr());
        Some(handle)
    } else {
        None
    };

    // Chaos mode: run the seeded fault schedule twice; fail on any
    // invariant violation or a digest mismatch between the two runs.
    // With `--pipeline N`, a pipelined determinism smoke runs first
    // (skipped when the reply path is armed: mangled replies would make
    // the client-side load generator see wire errors by design).
    if let Some(chaos) = &args.chaos {
        let smoke = if args.load.pipeline > 1 && !chaos.reply_faults {
            run_pipeline_smoke(&args.load)
        } else {
            Ok(())
        };
        let code = match smoke.and_then(|()| run_chaos_twice(chaos)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("csqp-load: {msg}");
                ExitCode::FAILURE
            }
        };
        if let Some(handle) = inline {
            handle.shutdown();
        }
        return code;
    }

    // Bench mode: a pinned closed-loop run whose figures land in
    // BENCH_serve.json, with an optional QPS regression floor.
    if args.bench_serve {
        let code = match run_bench_serve(&args.load, args.min_qps) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("csqp-load: {msg}");
                ExitCode::FAILURE
            }
        };
        if let Some(handle) = inline {
            handle.shutdown();
        }
        return code;
    }

    let report = match run_load(&args.load) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("csqp-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.render());

    if let Some(handle) = inline {
        handle.shutdown();
    }

    if report.errors > 0 {
        eprintln!("csqp-load: {} queries failed", report.errors);
        return ExitCode::FAILURE;
    }
    if args.fail_on_rejects && report.rejected > 0 {
        eprintln!(
            "csqp-load: {} queries rejected by admission control",
            report.rejected
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
