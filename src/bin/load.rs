//! `csqp-load` — drive a seeded workload mix against a `csqp-serve`
//! instance and report throughput and latency percentiles.
//!
//! ```text
//! cargo run --release --bin csqp-load -- [--addr HOST:PORT] [--clients N]
//!     [--seconds T | --queries N] [--seed S] [--policy DS|QS|HY|mix]
//!     [--objective communication|response-time|total-cost]
//!     [--optimizer two-phase|two-step] [--rate R] [--retry-rejected]
//!     [--serve] [--fail-on-rejects]
//! ```
//!
//! `--serve` spins up an in-process server on a free port and loads it —
//! the one-command loopback smoke CI runs. `--queries N` issues exactly N
//! queries per client (deterministic runs: the printed digest is
//! identical for identical seeds). `--rate` switches from closed-loop to
//! paced open-loop arrivals.

use std::process::ExitCode;
use std::time::Duration;

use csqp::core::Policy;
use csqp::cost::Objective;
use csqp::serve::proto::OptimizerMode;
use csqp::serve::{run_load, LoadConfig, Server, ServerConfig};

struct Args {
    load: LoadConfig,
    serve_inline: bool,
    fail_on_rejects: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        load: LoadConfig::default(),
        serve_inline: false,
        fail_on_rejects: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut raw = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(format!("{name} needs an argument")))
        };
        match flag.as_str() {
            "--addr" => args.load.addr = raw("--addr"),
            "--clients" => args.load.clients = num(&raw("--clients"), "--clients") as usize,
            "--seconds" => {
                let v = raw("--seconds")
                    .parse::<f64>()
                    .unwrap_or_else(|_| die("--seconds needs a numeric argument".to_string()));
                args.load.duration = Duration::from_secs_f64(v);
            }
            "--queries" => args.load.queries_per_client = Some(num(&raw("--queries"), "--queries")),
            "--seed" => args.load.seed = num(&raw("--seed"), "--seed"),
            "--policy" => {
                args.load.policy = match raw("--policy").as_str() {
                    "DS" => Some(Policy::DataShipping),
                    "QS" => Some(Policy::QueryShipping),
                    "HY" => Some(Policy::HybridShipping),
                    "mix" => None,
                    other => die(format!("unknown policy {other} (want DS|QS|HY|mix)")),
                }
            }
            "--objective" => {
                args.load.objective = match raw("--objective").as_str() {
                    "communication" => Objective::Communication,
                    "response-time" => Objective::ResponseTime,
                    "total-cost" => Objective::TotalCost,
                    other => die(format!("unknown objective {other}")),
                }
            }
            "--optimizer" => {
                args.load.optimizer = match raw("--optimizer").as_str() {
                    "two-phase" => OptimizerMode::TwoPhase,
                    "two-step" => OptimizerMode::TwoStep,
                    other => die(format!(
                        "unknown optimizer {other} (want two-phase|two-step)"
                    )),
                }
            }
            "--rate" => {
                let v = raw("--rate")
                    .parse::<f64>()
                    .unwrap_or_else(|_| die("--rate needs a numeric argument".to_string()));
                args.load.rate = Some(v);
            }
            "--retry-rejected" => args.load.retry_rejected = true,
            "--serve" => args.serve_inline = true,
            "--fail-on-rejects" => args.fail_on_rejects = true,
            "--help" | "-h" => {
                println!(
                    "usage: csqp-load [--addr HOST:PORT] [--clients N] [--seconds T | --queries N] \
                     [--seed S] [--policy DS|QS|HY|mix] [--objective O] \
                     [--optimizer two-phase|two-step] [--rate R] [--retry-rejected] \
                     [--serve] [--fail-on-rejects]"
                );
                std::process::exit(0);
            }
            other => die(format!("unknown flag {other}")),
        }
    }
    if args.load.clients == 0 {
        die("--clients must be at least 1".to_string());
    }
    args
}

fn num(v: &str, name: &str) -> u64 {
    v.parse::<u64>()
        .unwrap_or_else(|_| die(format!("{name} needs a numeric argument")))
}

fn die(msg: String) -> ! {
    eprintln!("csqp-load: {msg}");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut args = parse_args();

    // In-process loopback server for one-command smokes.
    let inline = if args.serve_inline {
        let server = match Server::bind(ServerConfig::default()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("csqp-load: inline server bind failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let handle = match server.spawn() {
            Ok(h) => h,
            Err(e) => {
                eprintln!("csqp-load: inline server spawn failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        args.load.addr = handle.addr().to_string();
        println!("csqp-load: inline server on {}", handle.addr());
        Some(handle)
    } else {
        None
    };

    let report = match run_load(&args.load) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("csqp-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.render());

    if let Some(handle) = inline {
        handle.shutdown();
    }

    if report.errors > 0 {
        eprintln!("csqp-load: {} queries failed", report.errors);
        return ExitCode::FAILURE;
    }
    if args.fail_on_rejects && report.rejected > 0 {
        eprintln!(
            "csqp-load: {} queries rejected by admission control",
            report.rejected
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
