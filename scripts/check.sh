#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml, plus the static analyzer over
# the example workloads. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> csqp-check: random sweep + optimizer traces + negative fixtures"
cargo run --release --bin csqp-check -- --plans 1000

echo "==> csqp-check: example workloads (more servers, alternate seeds)"
cargo run --release --bin csqp-check -- --plans 250 --servers 4 --seed 17
cargo run --release --bin csqp-check -- --plans 250 --servers 8 --seed 42

echo "==> csqp-lint: source-level determinism lints"
cargo run --release -p csqp-lint --bin csqp-lint

echo "==> csqp-check --protocol: exhaustive session-protocol model check"
cargo run --release --bin csqp-check -- --protocol
cargo run --release --bin csqp-check -- --protocol --depth 12

echo "==> csqp-check --system: composed-system model check (budgeted)"
cargo run --release --bin csqp-check -- --system --sessions 3 --depth 10 --budget-secs 5

echo "==> mutant suite: seeded bugs must be caught with minimal traces"
cargo test --release -p csqp-verify mutant

echo "==> serve-smoke: 2-second loopback load against csqp-serve"
cargo run --release --bin csqp-load -- --serve --clients 8 --seconds 2 --fail-on-rejects

echo "==> memo-smoke: memo on/off digest equality + hits over loopback"
cargo run --release --bin csqp-load -- --memo-smoke --clients 4

echo "==> memo-bench: seeded cold/warm planning suite (>=5x regression gate)"
cargo run --release -p csqp-bench --bin csqp-bench -- --min-speedup 5

echo "==> csqp-check --memo: memo-consistency pass over a populated table"
cargo run --release --bin csqp-check -- --memo

echo "==> csqp-check --bounds: bound-soundness wall + seeded mutants"
cargo run --release --bin csqp-check -- --bounds

echo "==> bounds mutant tests in the analyzer crate"
cargo test --release -p csqp-verify bounds

echo "==> mem-budget smoke: budget-starved serving == honest all-QS digests"
cargo run --release --bin csqp-load -- --serve --mem-budget 300 --clients 2 --queries 6 --seed 42

echo "==> sim-bench: pinned simulator events/sec gate (BENCH_sim.json)"
cargo run --release -p csqp-bench --bin csqp-bench -- --sim --min-events-per-sec 1000000

echo "==> chaos-smoke: seeded fault-injection soak (digest must reproduce)"
for seed in 1 2 3 5 8 13 21 34; do
  cargo run --release --bin csqp-load -- --serve --chaos "$seed" --schedules 2 --chaos-queries 10 --intensity 0.5
done

echo "==> pipeline-smoke: pipelined digest equality + chaos on one server"
cargo run --release --bin csqp-load -- --serve --pipeline 8 --chaos 13 --clients 4 --queries 6 --schedules 2 --chaos-queries 10 --intensity 0.5

echo "==> reply-fault smoke: server-side reply truncation/corruption soak"
cargo run --release --bin csqp-load -- --serve --chaos 21 --reply-faults --schedules 2 --chaos-queries 10 --intensity 0.6

echo "==> idle-session scale: poll at 2,000 sessions + the epoll wall"
cargo test --release -p csqp-serve --test scale -- --ignored

echo "==> reactor-matrix: serve suites pinned to each backend"
for reactor in poll epoll; do
  CSQP_REACTOR="$reactor" cargo test --release -p csqp-serve \
    --test equivalence --test chaos --test pipeline --test memo
done

echo "==> bench-reactor: idle+active run per backend (BENCH_reactor.json)"
cargo run --release --bin csqp-load -- --serve --bench-reactor --clients 4 --queries 32 --seed 42 --min-qps 25

echo "==> csqp-check --catalog: replication drift replay + seeded mutants"
cargo run --release --bin csqp-check -- --catalog

echo "==> catalog-chaos: stale-catalog fault soaks across fresh servers"
for seed in 7 13 21 34; do
  cargo run --release --bin csqp-load -- --serve --chaos "$seed" --catalog-faults --schedules 2 --chaos-queries 12 --intensity 0.6
done

echo "==> bench-serve: pinned closed-loop QPS/latency gate (BENCH_serve.json)"
cargo run --release --bin csqp-load -- --serve --bench-serve --clients 4 --queries 64 --seed 42 --min-qps 25

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "All checks passed."
