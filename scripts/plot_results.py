#!/usr/bin/env python3
"""Plot the CSV series produced by `csqp-experiments --out results`.

Usage:
    python3 scripts/plot_results.py results/            # all figures
    python3 scripts/plot_results.py results/fig8.csv    # one figure

With matplotlib installed, writes <id>.png next to each CSV; without it,
falls back to an ASCII rendering on stdout so the shapes are still
inspectable on a headless box.
"""

import csv
import pathlib
import sys
from collections import defaultdict


def load(path):
    series = defaultdict(list)
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            series[row["series"]].append(
                (float(row["x"]), float(row["mean"]), float(row["ci90"]))
            )
    for pts in series.values():
        pts.sort()
    return dict(series)


def ascii_plot(name, series, width=64, height=16):
    pts = [(x, y) for s in series.values() for (x, y, _) in s]
    if not pts:
        return
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1
    grid = [[" "] * width for _ in range(height)]
    marks = "o+x*sd^v"
    print(f"\n== {name}  (y: {y0:.3g} .. {y1:.3g})")
    for i, (label, s) in enumerate(sorted(series.items())):
        m = marks[i % len(marks)]
        for x, y, _ in s:
            cx = round((x - x0) / (x1 - x0) * (width - 1))
            cy = round((y - y0) / (y1 - y0) * (height - 1))
            grid[height - 1 - cy][cx] = m
        print(f"   {m} = {label}")
    for row in grid:
        print("  |" + "".join(row))
    print("  +" + "-" * width)
    print(f"   x: {x0:g} .. {x1:g}")


def plot(path):
    series = load(path)
    name = pathlib.Path(path).stem
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        fig, ax = plt.subplots(figsize=(6, 4))
        for label, pts in sorted(series.items()):
            xs = [p[0] for p in pts]
            ys = [p[1] for p in pts]
            es = [p[2] for p in pts]
            ax.errorbar(xs, ys, yerr=es, marker="o", capsize=3, label=label)
        ax.set_title(name)
        ax.legend()
        ax.grid(True, alpha=0.3)
        out = pathlib.Path(path).with_suffix(".png")
        fig.tight_layout()
        fig.savefig(out, dpi=150)
        print(f"wrote {out}")
    except ImportError:
        ascii_plot(name, series)


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    target = pathlib.Path(sys.argv[1])
    files = sorted(target.glob("fig*.csv")) + sorted(target.glob("ext-*.csv")) \
        if target.is_dir() else [target]
    if not files:
        sys.exit(f"no CSV files under {target}")
    for f in files:
        plot(f)


if __name__ == "__main__":
    main()
