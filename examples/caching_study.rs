//! Caching study: how client disk caching shifts the DS/QS/HY tradeoff.
//!
//! ```sh
//! cargo run --release --example caching_study
//! ```
//!
//! Sweeps the cached fraction of both relations from 0% to 100% and
//! reports, for each policy, the communication volume (optimizer
//! minimizing pages sent) and the response time (optimizer minimizing
//! response time, minimum join memory) — i.e. the scenario behind the
//! paper's Figures 2 and 3, driven through the public API.

// Example code panics on impossible errors rather than threading
// Results through the demo.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp::catalog::{SiteId, SystemConfig};
use csqp::core::Policy;
use csqp::core::{bind, BindContext};
use csqp::cost::{CostModel, Objective};
use csqp::engine::ExecutionBuilder;
use csqp::optimizer::{OptConfig, Optimizer};
use csqp::simkernel::rng::SimRng;
use csqp::workload::{cache_all, single_server_placement, two_way};

fn main() {
    let query = two_way();
    let sys = SystemConfig::default();

    println!("cached%   | policy | pages sent | response [s]");
    println!("----------+--------+------------+-------------");
    for pct in [0, 25, 50, 75, 100] {
        let mut catalog = single_server_placement(&query);
        cache_all(&mut catalog, &query, pct as f64 / 100.0);
        let model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT);
        for policy in Policy::ALL {
            let mut rng = SimRng::seed_from_u64(7 + pct as u64);
            let comm_plan = Optimizer::new(
                &model,
                policy,
                Objective::Communication,
                OptConfig::default(),
            )
            .optimize(&query, &mut rng)
            .plan;
            let rt_plan = Optimizer::new(
                &model,
                policy,
                Objective::ResponseTime,
                OptConfig::default(),
            )
            .optimize(&query, &mut rng)
            .plan;

            let run = |plan| {
                let bound = bind(
                    plan,
                    BindContext {
                        catalog: &catalog,
                        query_site: SiteId::CLIENT,
                    },
                )
                .unwrap();
                ExecutionBuilder::new(&query, &catalog, &sys).execute(&bound)
            };
            let pages = run(&comm_plan).pages_sent;
            let secs = run(&rt_plan).response_secs();
            println!(
                "{pct:>9} | {:>6} | {pages:>10} | {secs:>11.3}",
                policy.short()
            );
        }
    }
    println!("\nExpect: QS flat at 250 pages; DS falling 500 -> 0; HY the lower envelope.");
}
