//! Quickstart: optimize and simulate one query under all three shipping
//! policies.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's 2-way benchmark join (two 10,000-tuple relations on
//! one server, half of each cached at the client), runs the randomized
//! two-phase optimizer for data-, query- and hybrid-shipping, simulates
//! each winning plan on the detailed engine, and prints the plans with
//! their measured metrics.

// Example code panics on impossible errors rather than threading
// Results through the demo.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp::catalog::{SiteId, SystemConfig};
use csqp::core::{bind, BindContext, Policy};
use csqp::cost::{CostModel, Objective};
use csqp::engine::ExecutionBuilder;
use csqp::optimizer::{OptConfig, Optimizer};
use csqp::simkernel::rng::SimRng;
use csqp::workload::{cache_all, single_server_placement, two_way};

fn main() {
    // The benchmark query and environment (§3.3, Table 2 defaults).
    let query = two_way();
    let mut catalog = single_server_placement(&query);
    cache_all(&mut catalog, &query, 0.5);
    let sys = SystemConfig::default();

    println!("2-way join, 1 server, 50% of each relation cached at the client\n");

    let model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT);
    for policy in Policy::ALL {
        let optimizer = Optimizer::new(
            &model,
            policy,
            Objective::ResponseTime,
            OptConfig::default(),
        );
        let mut rng = SimRng::seed_from_u64(42);
        let result = optimizer.optimize(&query, &mut rng);

        let bound = bind(
            &result.plan,
            BindContext {
                catalog: &catalog,
                query_site: SiteId::CLIENT,
            },
        )
        .expect("optimized plans are well-formed");

        let metrics = ExecutionBuilder::new(&query, &catalog, &sys).execute(&bound);

        println!("== {policy} ==");
        println!("{}", bound.plan.render_tree());
        println!("  bound: {}", bound.render());
        println!(
            "  estimated response {:.3} s | simulated response {:.3} s",
            result.cost,
            metrics.response_secs()
        );
        println!(
            "  pages sent {} | result tuples {} | server disk reads {}\n",
            metrics.pages_sent, metrics.result_tuples, metrics.disk[1].reads
        );
    }
}
