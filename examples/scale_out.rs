//! Scale-out scenario: a complex 10-way join as servers are added.
//!
//! ```sh
//! cargo run --release --example scale_out
//! ```
//!
//! Places the ten benchmark relations randomly over 1..10 servers and
//! reports each policy's simulated response time (minimum allocation, no
//! caching) — the paper's Figure 8 scenario. Data-shipping is limited by
//! the single client disk; query-shipping rides the growing server disk
//! parallelism; hybrid-shipping uses client and servers together.

// Example code panics on impossible errors rather than threading
// Results through the demo.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp::catalog::{SiteId, SystemConfig};
use csqp::core::{bind, BindContext, Policy};
use csqp::cost::{CostModel, Objective};
use csqp::engine::ExecutionBuilder;
use csqp::optimizer::{OptConfig, Optimizer};
use csqp::simkernel::rng::SimRng;
use csqp::workload::{random_placement, ten_way};

fn main() {
    let query = ten_way();
    let sys = SystemConfig::default();

    println!("servers | DS resp [s] | QS resp [s] | HY resp [s]");
    println!("--------+-------------+-------------+------------");
    for servers in [1u32, 2, 3, 5, 7, 10] {
        let mut rng = SimRng::seed_from_u64(servers as u64 * 97);
        let catalog = random_placement(&query, servers, &mut rng);
        let model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT);
        let mut row = Vec::new();
        for policy in Policy::ALL {
            // Like the paper, repeat the randomized optimization and take
            // the best plan found (§3.1.1: plans need only be
            // "reasonable"; repetitions wash out unlucky walks).
            let best = (0..3u64)
                .map(|rep| {
                    let mut orng = SimRng::seed_from_u64(servers as u64 * 31 + rep);
                    let plan = Optimizer::new(
                        &model,
                        policy,
                        Objective::ResponseTime,
                        OptConfig::default(),
                    )
                    .optimize(&query, &mut orng)
                    .plan;
                    let bound = bind(
                        &plan,
                        BindContext {
                            catalog: &catalog,
                            query_site: SiteId::CLIENT,
                        },
                    )
                    .unwrap();
                    ExecutionBuilder::new(&query, &catalog, &sys)
                        .execute(&bound)
                        .response_secs()
                })
                .fold(f64::INFINITY, f64::min);
            row.push(best);
        }
        println!(
            "{servers:>7} | {:>11.2} | {:>11.2} | {:>10.2}",
            row[0], row[1], row[2]
        );
    }
    println!(
        "\nExpect: DS roughly flat, QS dropping steeply, HY tracking the best \
         (single placement, randomized search — run csqp-experiments fig8 for \
         the averaged series where HY <= both everywhere)."
    );
}
