//! 2-step optimization under data migration (the paper's §5 scenario).
//!
//! ```sh
//! cargo run --release --example two_step_planning
//! ```
//!
//! Compiles a 4-way join when A,B live on server 1 and C,D on server 2,
//! then migrates the data (B,C on server 1; A,D on server 2) and compares
//! three execution strategies:
//!
//! * **static** — reuse the compiled plan as-is (annotations re-bind);
//! * **2-step** — keep the compiled join order, redo site selection;
//! * **reoptimize** — full optimization against the new placement.

// Example code panics on impossible errors rather than threading
// Results through the demo.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp::catalog::{RelId, SiteId, SystemConfig};
use csqp::core::{bind, BindContext, Policy};
use csqp::cost::Objective;
use csqp::engine::ExecutionBuilder;
use csqp::experiments::fig09::{cycle_query, paper_static_plan};
use csqp::optimizer::{explicit_placement, OptConfig, TwoStepPlanner};
use csqp::simkernel::rng::SimRng;

fn main() {
    let query = cycle_query();
    let sys = SystemConfig::default();
    let runtime = explicit_placement(
        2,
        &[(RelId(1), 1), (RelId(2), 1), (RelId(0), 2), (RelId(3), 2)],
    );
    let planner = TwoStepPlanner {
        policy: Policy::HybridShipping,
        objective: Objective::Communication,
        config: OptConfig::default(),
    };
    let mut rng = SimRng::seed_from_u64(5);

    let compiled = paper_static_plan(&query);
    println!(
        "compiled (under the old placement):\n{}",
        compiled.render_tree()
    );

    let run = |plan: &csqp::core::Plan| {
        let bound = bind(
            plan,
            BindContext {
                catalog: &runtime,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        let m = ExecutionBuilder::new(&query, &runtime, &sys).execute(&bound);
        (bound, m)
    };

    let (b, m) = run(&compiled);
    println!(
        "static at runtime: {}\n  -> {} pages sent",
        b.render(),
        m.pages_sent
    );

    let selected = planner.site_select(&compiled, &query, &sys, &runtime, &mut rng);
    let (b, m) = run(&selected);
    println!(
        "2-step at runtime: {}\n  -> {} pages sent",
        b.render(),
        m.pages_sent
    );

    let fresh = planner.compile_against(&query, &sys, &runtime, &mut rng);
    let (b, m) = run(&fresh);
    println!(
        "reoptimized:       {}\n  -> {} pages sent",
        b.render(),
        m.pages_sent
    );

    println!(
        "\nExpect ≈ 1000 / 500 / 250 pages: the static plan ships two extra base \
         relations and both intermediates; 2-step saves the intermediates; full \
         reoptimization also fixes the join order."
    );
}
