//! Navigation-based access (the paper's §7 future work): an application
//! at the client chases object references through a relation.
//!
//! ```sh
//! cargo run --release --example navigation
//! ```
//!
//! Shows why object database systems ship data: with a warm client
//! cache, navigation runs at local-disk speed and never touches the
//! network; cold navigation pays a full fault round trip per step.

use csqp::catalog::{RelId, SystemConfig};
use csqp::engine::ExecutionBuilder;
use csqp::workload::{single_server_placement, two_way};

fn main() {
    let query = two_way();
    let sys = SystemConfig::default();
    let steps = 1_000;

    println!("navigating {steps} object references through R0 (250 pages)\n");
    println!("cached% | locality | elapsed [s] | pages faulted");
    println!("--------+----------+-------------+--------------");
    for cached in [0.0, 0.5, 1.0] {
        for locality in [0.0, 0.8, 1.0] {
            let mut catalog = single_server_placement(&query);
            catalog.set_cached_fraction(RelId(0), cached);
            let m = ExecutionBuilder::new(&query, &catalog, &sys)
                .with_seed(42)
                .navigate(RelId(0), steps, locality);
            println!(
                "{:>7.0} | {locality:>8.1} | {:>11.3} | {:>13}",
                cached * 100.0,
                m.response_secs(),
                m.pages_sent
            );
        }
    }
    println!(
        "\nExpect: full caching eliminates network traffic entirely; high locality \
         turns disk time sequential. This is the data-shipping sweet spot the paper's \
         introduction describes."
    );
}
