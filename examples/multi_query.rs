//! Concurrent multi-query execution (the paper's §7 future work).
//!
//! ```sh
//! cargo run --release --example multi_query
//! ```
//!
//! Runs one, two, and four copies of the 2-way benchmark join
//! concurrently against a single server — first all query-shipping
//! (they pile up on the server disk), then alternating data- and
//! query-shipping with a warm client cache (the mix spreads the load
//! across client and server resources).

// Example code panics on impossible errors rather than threading
// Results through the demo.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp::catalog::{BufAlloc, RelId, SiteId, SystemConfig};
use csqp::core::{bind, Annotation, BindContext, JoinTree};
use csqp::engine::ExecutionBuilder;
use csqp::workload::{single_server_placement, two_way};

fn main() {
    let query = two_way();
    let mut sys = SystemConfig::default();
    sys.buf_alloc = BufAlloc::Max;

    let plan =
        |jann, sann| JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(&query, jann, sann);

    println!("concurrent copies | policy mix | mean resp [s] | makespan [s]");
    println!("------------------+------------+---------------+-------------");
    for n in [1usize, 2, 4] {
        // All query-shipping.
        let catalog = single_server_placement(&query);
        let qs = bind(
            &plan(Annotation::InnerRel, Annotation::PrimaryCopy),
            BindContext {
                catalog: &catalog,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        let all_qs =
            ExecutionBuilder::new(&query, &catalog, &sys).execute_many(&vec![qs.clone(); n]);
        let mean_qs: f64 = all_qs
            .per_query
            .iter()
            .map(|q| q.response_time.as_secs_f64())
            .sum::<f64>()
            / n as f64;

        // Alternating DS (cached) / QS.
        let mut cached = single_server_placement(&query);
        cached.set_cached_fraction(RelId(0), 1.0);
        cached.set_cached_fraction(RelId(1), 1.0);
        let ds = bind(
            &plan(Annotation::Consumer, Annotation::Client),
            BindContext {
                catalog: &cached,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        let qs2 = bind(
            &plan(Annotation::InnerRel, Annotation::PrimaryCopy),
            BindContext {
                catalog: &cached,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        let mix: Vec<_> = (0..n)
            .map(|i| if i % 2 == 0 { ds.clone() } else { qs2.clone() })
            .collect();
        let mixed = ExecutionBuilder::new(&query, &cached, &sys).execute_many(&mix);
        let mean_mix: f64 = mixed
            .per_query
            .iter()
            .map(|q| q.response_time.as_secs_f64())
            .sum::<f64>()
            / n as f64;

        println!(
            "{n:>17} | all QS     | {mean_qs:>13.3} | {:>11.3}",
            all_qs.makespan.as_secs_f64()
        );
        println!(
            "{n:>17} | DS/QS mix  | {mean_mix:>13.3} | {:>11.3}",
            mixed.makespan.as_secs_f64()
        );
    }
    println!(
        "\nExpect: all-QS response times grow with concurrency (one server disk); \
         the cached DS/QS mix degrades far more gracefully — the aggregate-resource \
         argument behind hybrid shipping."
    );
}
