//! Loaded-server scenario: when does client caching pay off?
//!
//! ```sh
//! cargo run --release --example loaded_server
//! ```
//!
//! Reproduces the insight of the paper's Figure 4: with an idle server,
//! caching *hurts* a data-shipping client (its own disk becomes the
//! bottleneck — the join's spill I/O and the cached scans collide); with
//! a server disk near saturation (multiple other clients), off-loading
//! the server wins and caching helps. Hybrid-shipping adapts either way.

// Example code panics on impossible errors (optimizer output always
// binds) rather than threading Results through the demo.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp::catalog::{SiteId, SystemConfig};
use csqp::core::{bind, BindContext, Policy};
use csqp::cost::{CostModel, Objective};
use csqp::engine::ExecutionBuilder;
use csqp::optimizer::{OptConfig, Optimizer};
use csqp::simkernel::rng::SimRng;
use csqp::workload::{cache_all, load_utilization, single_server_placement, two_way};

fn main() {
    let query = two_way();
    let sys = SystemConfig::default(); // minimum allocation: joins spill

    println!("load [req/s] | cached% | DS resp [s] | HY resp [s]");
    println!("-------------+---------+-------------+------------");
    for rate in [0.0, 40.0, 60.0, 70.0] {
        for pct in [0, 50, 100] {
            let mut catalog = single_server_placement(&query);
            cache_all(&mut catalog, &query, pct as f64 / 100.0);
            let mut model = CostModel::new(&sys, &catalog, &query, SiteId::CLIENT);
            if rate > 0.0 {
                model = model.with_disk_load(
                    SiteId::server(1),
                    load_utilization(rate, sys.disk_rand_page_ms),
                );
            }
            let mut row = Vec::new();
            for policy in [Policy::DataShipping, Policy::HybridShipping] {
                let mut rng = SimRng::seed_from_u64(11);
                let plan = Optimizer::new(
                    &model,
                    policy,
                    Objective::ResponseTime,
                    OptConfig::default(),
                )
                .optimize(&query, &mut rng)
                .plan;
                let bound = bind(
                    &plan,
                    BindContext {
                        catalog: &catalog,
                        query_site: SiteId::CLIENT,
                    },
                )
                .unwrap();
                let mut builder = ExecutionBuilder::new(&query, &catalog, &sys).with_seed(3);
                if rate > 0.0 {
                    builder = builder.with_load(SiteId::server(1), rate);
                }
                row.push(builder.execute(&bound).response_secs());
            }
            println!(
                "{rate:>12.0} | {pct:>7} | {:>11.3} | {:>10.3}",
                row[0], row[1]
            );
        }
    }
    println!("\nExpect: at 0 req/s DS worsens with caching; at 70 req/s it improves.");
}
