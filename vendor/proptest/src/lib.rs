//! A tiny, offline, drop-in subset of the [proptest](https://proptest-rs.github.io)
//! API, covering exactly what this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * integer / float range strategies (`0u64..1_000`),
//! * [`bool::ANY`], tuple strategies, and [`collection::vec`].
//!
//! Generation is **deterministic**: every test function derives its RNG
//! seed from its own name, so failures are reproducible run-to-run with no
//! persistence files. The real crate's shrinking machinery is intentionally
//! omitted — failing inputs are printed instead.

/// A self-contained xoshiro256++ generator used for value generation.
///
/// Deterministically seeded (per test, from the test's name), so a failing
/// case reproduces on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from a 64-bit value via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Seed deterministically from a test name (FNV-1a hash).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Next raw 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)` (rejection sampling, unbiased).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. The subset interface: strategies are pure functions
/// of the RNG (no shrinking tree).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    rng.next_u64() as $t
                } else {
                    lo + rng.below(span) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for ::std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for ::std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+)),*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4)
);

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::std::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> ::std::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for a `Vec` with random length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: ::std::ops::Range<usize>,
    }

    /// A `Vec` of `element`-generated values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: ::std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl ::std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Assert inside a property; on failure the whole case (with its inputs)
/// is reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ [$crate::ProptestConfig::default()] $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(stringify!($arg));
                        s.push('=');
                        s.push_str(&format!("{:?}  ", &$arg));
                    )+
                    s
                };
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_items!{ [$cfg] $($rest)* }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u32..17), &mut rng);
            assert!((5..17).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(n in 1u64..100, flag in crate::bool::ANY) {
            prop_assert!((1..100).contains(&n));
            let _ = flag;
        }

        #[test]
        fn vec_strategy_lengths(xs in crate::collection::vec(0u8..10, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }
    }
}
