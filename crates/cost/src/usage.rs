//! Per-resource usage vectors.
//!
//! Usage is tracked in seconds per (site, resource), where the resources
//! of a site are its CPU and its disk, and the network wire is one shared
//! resource (the paper models it as a single FIFO queue). Pages sent are
//! tracked separately for the communication metric.

use csqp_catalog::SiteId;

/// Resource seconds accumulated by (a subtree of) a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceUsage {
    /// CPU seconds per site.
    pub cpu: Vec<f64>,
    /// Disk seconds per site.
    pub disk: Vec<f64>,
    /// Seconds of network wire occupancy.
    pub net_wire: f64,
    /// Data pages shipped over the wire.
    pub pages_sent: f64,
}

impl ResourceUsage {
    /// Zero usage for a topology of `num_sites` sites (client + servers).
    pub fn zero(num_sites: usize) -> ResourceUsage {
        ResourceUsage {
            cpu: vec![0.0; num_sites],
            disk: vec![0.0; num_sites],
            net_wire: 0.0,
            pages_sent: 0.0,
        }
    }

    /// Add CPU seconds at a site.
    #[inline]
    pub fn add_cpu(&mut self, site: SiteId, secs: f64) {
        self.cpu[site.index()] += secs;
    }

    /// Add disk seconds at a site.
    #[inline]
    pub fn add_disk(&mut self, site: SiteId, secs: f64) {
        self.disk[site.index()] += secs;
    }

    /// Merge another usage vector into this one.
    pub fn merge(&mut self, other: &ResourceUsage) {
        debug_assert_eq!(self.cpu.len(), other.cpu.len());
        for (a, b) in self.cpu.iter_mut().zip(&other.cpu) {
            *a += b;
        }
        for (a, b) in self.disk.iter_mut().zip(&other.disk) {
            *a += b;
        }
        self.net_wire += other.net_wire;
        self.pages_sent += other.pages_sent;
    }

    /// Sum of all resource seconds (the total-cost metric).
    pub fn total_seconds(&self) -> f64 {
        self.cpu.iter().sum::<f64>() + self.disk.iter().sum::<f64>() + self.net_wire
    }

    /// The largest single-resource usage — the full-overlap lower bound on
    /// elapsed time.
    pub fn bottleneck_seconds(&self) -> f64 {
        self.cpu
            .iter()
            .chain(self.disk.iter())
            .copied()
            .fold(self.net_wire, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_totals() {
        let mut a = ResourceUsage::zero(3);
        a.add_cpu(SiteId::CLIENT, 1.0);
        a.add_disk(SiteId::server(1), 2.0);
        a.net_wire = 0.5;
        a.pages_sent = 10.0;
        let mut b = ResourceUsage::zero(3);
        b.add_cpu(SiteId::CLIENT, 0.25);
        b.add_disk(SiteId::server(2), 4.0);
        b.pages_sent = 5.0;
        a.merge(&b);
        assert!((a.total_seconds() - 7.75).abs() < 1e-12);
        assert!((a.bottleneck_seconds() - 4.0).abs() < 1e-12);
        assert!((a.pages_sent - 15.0).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_can_be_the_wire() {
        let mut a = ResourceUsage::zero(2);
        a.net_wire = 9.0;
        a.add_cpu(SiteId::CLIENT, 1.0);
        assert!((a.bottleneck_seconds() - 9.0).abs() < 1e-12);
    }
}
