//! The per-operator cost accounting.
//!
//! Each plan node contributes resource seconds to the sites it touches;
//! the recursion aggregates usage bottom-up and derives the response-time
//! estimate as the maximum of (a) any child's response time and (b) the
//! subtree's largest single-resource usage — the full-overlap assumption
//! described in the crate docs.

use csqp_catalog::{
    hybrid_hash_plan, join_memory, sat_u64, Catalog, Estimator, QuerySpec, RelSet, SiteId,
    SystemConfig,
};
use csqp_core::{bind, BindContext, BoundPlan, LogicalOp, NodeId, Plan};
use csqp_net::CONTROL_MSG_BYTES;

use crate::objective::Objective;
use crate::usage::ResourceUsage;

/// Cost of one subtree.
///
/// Response time combines two lower bounds (both GHK92-flavoured):
///
/// * the *bottleneck* bound — the busiest single resource of the whole
///   subtree cannot be beaten by any overlap;
/// * the *critical path* bound — `pre + stream`, where `pre` is the time
///   before the node can emit its first page (a hybrid-hash join must
///   consume its entire build input first) and `stream` is the serial
///   time to emit its whole output (page-at-a-time scans, probe work,
///   the partition-join phase).
///
/// Everything else is assumed to overlap perfectly — the paper's noted
/// optimism ("it assumes that these costs can be fully overlapped",
/// §4.2.3) — so the estimate is `max(bottleneck, pre + stream)`.
#[derive(Debug, Clone)]
struct NodeCost {
    usage: ResourceUsage,
    /// Seconds before the first output page can appear.
    pre: f64,
    /// Serial seconds to stream the full output thereafter.
    stream: f64,
}

impl NodeCost {
    fn response(&self) -> f64 {
        (self.pre + self.stream).max(self.usage.bottleneck_seconds())
    }
}

/// The cost model for a fixed query / catalog / configuration.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    config: &'a SystemConfig,
    catalog: &'a Catalog,
    query: &'a QuerySpec,
    est: Estimator<'a>,
    /// External disk utilization per site in `[0, 1)`; disk seconds are
    /// inflated by `1/(1-ρ)`.
    disk_load: Vec<f64>,
    query_site: SiteId,
}

impl<'a> CostModel<'a> {
    /// Build a model; queries are submitted (and displayed) at
    /// `query_site`.
    pub fn new(
        config: &'a SystemConfig,
        catalog: &'a Catalog,
        query: &'a QuerySpec,
        query_site: SiteId,
    ) -> CostModel<'a> {
        CostModel {
            config,
            catalog,
            query,
            est: Estimator::new(query, config),
            disk_load: vec![0.0; catalog.num_servers() as usize + 1],
            query_site,
        }
    }

    /// Record external disk load (utilization) at a site.
    pub fn with_disk_load(mut self, site: SiteId, utilization: f64) -> CostModel<'a> {
        assert!(
            (0.0..1.0).contains(&utilization),
            "utilization must be in [0,1), got {utilization}"
        );
        self.disk_load[site.index()] = utilization;
        self
    }

    /// Number of sites (client + servers).
    fn num_sites(&self) -> usize {
        self.catalog.num_servers() as usize + 1
    }

    /// Evaluate a bound plan under an objective (lower is better).
    pub fn evaluate_bound(&self, bound: &BoundPlan, objective: Objective) -> f64 {
        let cost = self.node_cost(bound, bound.plan.root());
        match objective {
            Objective::Communication => cost.usage.pages_sent,
            Objective::ResponseTime => cost.response(),
            Objective::TotalCost => cost.usage.total_seconds(),
        }
    }

    /// Bind `plan` and evaluate it; `None` when binding fails (annotation
    /// cycle) — the optimizer treats such plans as unusable.
    pub fn evaluate_plan(&self, plan: &Plan, objective: Objective) -> Option<f64> {
        let bound = bind(
            plan,
            BindContext {
                catalog: self.catalog,
                query_site: self.query_site,
            },
        )
        .ok()?;
        Some(self.evaluate_bound(&bound, objective))
    }

    /// The query this model prices.
    pub fn query(&self) -> &'a QuerySpec {
        self.query
    }

    /// The catalog this model prices against.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// The system parameters this model prices with.
    pub fn config(&self) -> &'a SystemConfig {
        self.config
    }

    /// The site queries are submitted (and displayed) at.
    pub fn query_site(&self) -> SiteId {
        self.query_site
    }

    /// Full usage vector of a bound plan.
    pub fn usage(&self, bound: &BoundPlan) -> ResourceUsage {
        self.node_cost(bound, bound.plan.root()).usage
    }

    /// Estimated response time of a bound plan, in seconds.
    pub fn response_time(&self, bound: &BoundPlan) -> f64 {
        self.node_cost(bound, bound.plan.root()).response()
    }

    /// Output of a node as (tuples, pages): scans emit the raw relation;
    /// everything else emits the estimator's size for its relation set.
    // `expect("arity")` is an invariant, not an error path: costing only
    // sees plans inside a `BoundPlan`, and `bind` rejects missing inputs
    // as `BindError::Malformed` before one can exist.
    #[allow(clippy::expect_used)]
    fn output_stats(&self, plan: &Plan, id: NodeId) -> (f64, f64) {
        match plan.node(id).op {
            LogicalOp::Scan { rel } => {
                let r = &self.query.relations[rel.index()];
                (r.tuples as f64, r.pages(self.config.page_size) as f64)
            }
            LogicalOp::Aggregate { groups } => {
                let child = plan.node(id).children[0].expect("arity");
                let (in_tuples, _) = self.output_stats(plan, child);
                let t = (groups as f64).min(in_tuples);
                let per_page = (self.config.page_size / self.est.tuple_bytes(RelSet::EMPTY)) as f64;
                (t, (t / per_page).ceil())
            }
            _ => {
                let rels = plan.rel_set(id);
                (self.est.tuples(rels), self.est.pages(rels))
            }
        }
    }

    /// Seconds of disk time at `site` for `pages` at `per_page_ms`,
    /// inflated by the site's external load.
    fn disk_secs(&self, site: SiteId, pages: f64, per_page_ms: f64) -> f64 {
        let inflate = 1.0 / (1.0 - self.disk_load[site.index()]);
        pages * per_page_ms * 1e-3 * inflate
    }

    /// Charge a pipelined transfer of `pages` data pages from `from` to
    /// `to` (no charge when co-located).
    fn transfer(&self, u: &mut ResourceUsage, from: SiteId, to: SiteId, pages: f64) {
        if from == to || pages <= 0.0 {
            return;
        }
        let page = self.config.page_size as u64;
        u.pages_sent += pages;
        u.net_wire += pages * self.config.wire_secs(page);
        let cpu = self.config.cpu_secs(self.config.msg_cpu_instr(page));
        u.add_cpu(from, pages * cpu);
        u.add_cpu(to, pages * cpu);
    }

    // `expect("arity")` as in `output_stats`: `bind` already rejected
    // plans with missing inputs, so every child slot here is occupied.
    #[allow(clippy::expect_used)]
    fn node_cost(&self, bound: &BoundPlan, id: NodeId) -> NodeCost {
        let plan = &bound.plan;
        let n = plan.node(id);
        let site = bound.site(id);
        let cfg = self.config;
        let mut u = ResourceUsage::zero(self.num_sites());
        let mut pre = 0.0f64;
        // Every arm assigns `stream`; the compiler cannot see that.
        #[allow(unused_assignments)]
        let mut stream = 0.0f64;

        match n.op {
            LogicalOp::Scan { rel } => {
                let (_, pages) = self.output_stats(plan, id);
                let primary = self.catalog.primary_site(rel);
                if site == primary {
                    // Local sequential scan at the server.
                    u.add_disk(site, self.disk_secs(site, pages, cfg.disk_seq_page_ms));
                    u.add_cpu(site, pages * cfg.cpu_secs(cfg.disk_inst));
                    stream = self.disk_secs(site, pages, cfg.disk_seq_page_ms);
                } else {
                    // Client-site scan: cached prefix from the client
                    // disk, the rest faulted in page-at-a-time (§2.1).
                    let cached = self.catalog.cached_pages(rel, sat_u64(pages)) as f64;
                    let faulted = pages - cached;
                    u.add_disk(site, self.disk_secs(site, cached, cfg.disk_seq_page_ms));
                    u.add_cpu(site, cached * cfg.cpu_secs(cfg.disk_inst));
                    stream = self.disk_secs(site, cached, cfg.disk_seq_page_ms);
                    if faulted > 0.0 {
                        let page = cfg.page_size as u64;
                        u.add_disk(
                            primary,
                            self.disk_secs(primary, faulted, cfg.disk_seq_page_ms),
                        );
                        u.add_cpu(primary, faulted * cfg.cpu_secs(cfg.disk_inst));
                        // Request up, page reply down.
                        let req_cpu = cfg.cpu_secs(cfg.msg_cpu_instr(CONTROL_MSG_BYTES));
                        let rep_cpu = cfg.cpu_secs(cfg.msg_cpu_instr(page));
                        u.add_cpu(site, faulted * (req_cpu + rep_cpu));
                        u.add_cpu(primary, faulted * (req_cpu + rep_cpu));
                        u.net_wire +=
                            faulted * (cfg.wire_secs(CONTROL_MSG_BYTES) + cfg.wire_secs(page));
                        u.pages_sent += faulted;
                        // The fault RPC is synchronous page-at-a-time
                        // (§4.2.3): disk, wire and CPU legs serialize
                        // rather than overlap.
                        let round_trip = self.disk_secs(primary, 1.0, cfg.disk_seq_page_ms)
                            + cfg.wire_secs(CONTROL_MSG_BYTES)
                            + cfg.wire_secs(page)
                            + 2.0 * (req_cpu + rep_cpu);
                        stream += faulted * round_trip;
                    }
                }
            }
            LogicalOp::Select { rel } => {
                let child = n.children[0].expect("arity");
                let c = self.node_cost(bound, child);
                let (in_tuples, in_pages) = self.output_stats(plan, child);
                self.transfer(&mut u, bound.site(child), site, in_pages);
                let cmp = in_tuples * cfg.cpu_secs(cfg.compare_inst);
                u.add_cpu(site, cmp);
                // Copy surviving tuples into output pages.
                let out_tuples = in_tuples * self.query.selection[rel.index()];
                let mv = out_tuples
                    * cfg.cpu_secs(cfg.move_tuple_instr(self.est.tuple_bytes(RelSet::EMPTY)));
                u.add_cpu(site, mv);
                pre = c.pre;
                // The select streams with its input; its CPU overlaps the
                // input's I/O unless it dominates.
                stream = c.stream.max(cmp + mv);
                u.merge(&c.usage);
            }
            LogicalOp::Join => {
                let (ci, co) = (n.children[0].expect("arity"), n.children[1].expect("arity"));
                let inner = self.node_cost(bound, ci);
                let outer = self.node_cost(bound, co);
                let (in_tuples, in_pages) = self.output_stats(plan, ci);
                let (out_tuples_probe, out_pages_probe) = self.output_stats(plan, co);
                self.transfer(&mut u, bound.site(ci), site, in_pages);
                self.transfer(&mut u, bound.site(co), site, out_pages_probe);

                let tuple_bytes = self.est.tuple_bytes(RelSet::EMPTY);
                let move_cpu = cfg.cpu_secs(cfg.move_tuple_instr(tuple_bytes));
                let hash_cpu = cfg.cpu_secs(cfg.hash_inst);
                let cmp_cpu = cfg.cpu_secs(cfg.compare_inst);

                // Build + probe CPU.
                let build_cpu = in_tuples * (hash_cpu + move_cpu);
                u.add_cpu(site, build_cpu);
                let res_tuples = self.est.tuples(plan.rel_set(id));
                let probe_cpu = out_tuples_probe * (hash_cpu + cmp_cpu) + res_tuples * move_cpu;
                u.add_cpu(site, probe_cpu);

                // Hybrid-hash spill I/O (Shapiro, §3.2.2).
                let mem = join_memory(cfg, sat_u64(in_pages.ceil()));
                let hp = hybrid_hash_plan(sat_u64(in_pages.ceil().max(1.0)), mem, cfg.fudge);
                let mut partition_serial = 0.0;
                if hp.spill_partitions > 0 {
                    let spill_frac = hp.spilled_inner_pages as f64 / in_pages.max(1.0);
                    let spilled = spill_frac * (in_pages + out_pages_probe);
                    // Writes land scattered across partitions (near-random);
                    // re-reads stream within a partition (near-sequential).
                    u.add_disk(site, self.disk_secs(site, spilled, cfg.disk_rand_page_ms));
                    u.add_disk(site, self.disk_secs(site, spilled, cfg.disk_seq_page_ms));
                    u.add_cpu(site, 2.0 * spilled * cfg.cpu_secs(cfg.disk_inst));
                    // The partition-join phase re-reads both sides with
                    // synchronous page reads after the probe finishes.
                    partition_serial = self.disk_secs(site, spilled, cfg.disk_seq_page_ms);
                }

                // Critical path: the build consumes the whole inner before
                // the first probe output; the outer's own pre-work
                // overlaps the build phase.
                pre = (inner.pre + inner.stream.max(build_cpu)).max(outer.pre);
                stream = outer.stream.max(probe_cpu) + partition_serial;
                u.merge(&inner.usage);
                u.merge(&outer.usage);
            }
            LogicalOp::Aggregate { groups } => {
                let child = n.children[0].expect("arity");
                let c = self.node_cost(bound, child);
                let (in_tuples, in_pages) = self.output_stats(plan, child);
                self.transfer(&mut u, bound.site(child), site, in_pages);
                // Hash-based grouping: hash every input tuple, move every
                // output group tuple.
                let out_tuples = (groups as f64).min(in_tuples);
                let agg_cpu = in_tuples * cfg.cpu_secs(cfg.hash_inst)
                    + out_tuples
                        * cfg.cpu_secs(cfg.move_tuple_instr(self.est.tuple_bytes(RelSet::EMPTY)));
                u.add_cpu(site, agg_cpu);
                // Blocking: the aggregate consumes its whole input before
                // emitting anything.
                pre = c.pre + c.stream.max(agg_cpu);
                stream = 0.0;
                u.merge(&c.usage);
            }
            LogicalOp::Display => {
                let child = n.children[0].expect("arity");
                let c = self.node_cost(bound, child);
                let (tuples, pages) = self.output_stats(plan, child);
                self.transfer(&mut u, bound.site(child), site, pages);
                let disp = tuples * cfg.cpu_secs(cfg.display_inst);
                u.add_cpu(site, disp);
                pre = c.pre;
                stream = c.stream.max(disp);
                u.merge(&c.usage);
            }
        }

        NodeCost {
            usage: u,
            pre,
            stream,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{BufAlloc, JoinEdge, RelId, Relation};
    use csqp_core::{Annotation, JoinTree};

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    fn one_server_catalog() -> Catalog {
        let mut c = Catalog::new(1);
        c.place(RelId(0), SiteId::server(1));
        c.place(RelId(1), SiteId::server(1));
        c
    }

    fn bind_plan(plan: &Plan, cat: &Catalog) -> BoundPlan {
        bind(
            plan,
            BindContext {
                catalog: cat,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap()
    }

    fn ds_plan(q: &QuerySpec) -> Plan {
        JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            q,
            Annotation::Consumer,
            Annotation::Client,
        )
    }

    fn qs_plan(q: &QuerySpec) -> Plan {
        JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            q,
            Annotation::InnerRel,
            Annotation::PrimaryCopy,
        )
    }

    /// Fig 2 end points: QS ships only the 250-page result; DS with an
    /// empty cache faults in both 250-page relations.
    #[test]
    fn two_way_communication_endpoints() {
        let q = chain(2);
        let cat = one_server_catalog();
        let cfg = SystemConfig::default();
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);

        let qs = bind_plan(&qs_plan(&q), &cat);
        assert_eq!(model.evaluate_bound(&qs, Objective::Communication), 250.0);

        let ds = bind_plan(&ds_plan(&q), &cat);
        assert_eq!(model.evaluate_bound(&ds, Objective::Communication), 500.0);
    }

    #[test]
    fn caching_reduces_ds_communication_linearly() {
        let q = chain(2);
        let mut cat = one_server_catalog();
        let cfg = SystemConfig::default();
        cat.set_cached_fraction(RelId(0), 0.5);
        cat.set_cached_fraction(RelId(1), 0.5);
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        let ds = bind_plan(&ds_plan(&q), &cat);
        assert_eq!(model.evaluate_bound(&ds, Objective::Communication), 250.0);
        let qs = bind_plan(&qs_plan(&q), &cat);
        assert_eq!(
            model.evaluate_bound(&qs, Objective::Communication),
            250.0,
            "QS ignores the cache"
        );
    }

    #[test]
    fn max_allocation_has_no_spill_io() {
        let q = chain(2);
        let cat = one_server_catalog();
        let mut cfg = SystemConfig::default();
        cfg.buf_alloc = BufAlloc::Max;
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        let qs = bind_plan(&qs_plan(&q), &cat);
        let u = model.usage(&qs);
        // Only the two base scans touch the server disk.
        let server_disk = u.disk[1];
        let scan_only = 500.0 * cfg.disk_seq_page_ms * 1e-3;
        assert!(
            (server_disk - scan_only).abs() < 1e-9,
            "disk {server_disk} vs scans {scan_only}"
        );
    }

    #[test]
    fn min_allocation_adds_spill_io() {
        let q = chain(2);
        let cat = one_server_catalog();
        let cfg = SystemConfig::default();
        assert_eq!(cfg.buf_alloc, BufAlloc::Min);
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        let qs = bind_plan(&qs_plan(&q), &cat);
        let u = model.usage(&qs);
        let scan_only = 500.0 * cfg.disk_seq_page_ms * 1e-3;
        assert!(
            u.disk[1] > scan_only * 2.0,
            "spill I/O should dominate: {} vs {scan_only}",
            u.disk[1]
        );
    }

    #[test]
    fn response_time_is_at_most_total_cost() {
        let q = chain(2);
        let cat = one_server_catalog();
        let cfg = SystemConfig::default();
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        for plan in [ds_plan(&q), qs_plan(&q)] {
            let b = bind_plan(&plan, &cat);
            let rt = model.evaluate_bound(&b, Objective::ResponseTime);
            let tc = model.evaluate_bound(&b, Objective::TotalCost);
            assert!(rt <= tc + 1e-12, "rt {rt} > total {tc} for {plan}");
            assert!(rt > 0.0);
        }
    }

    #[test]
    fn server_load_inflates_qs_but_not_ds_disk_time() {
        let q = chain(2);
        let cat = one_server_catalog();
        let cfg = SystemConfig::default();
        let base = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        let loaded =
            CostModel::new(&cfg, &cat, &q, SiteId::CLIENT).with_disk_load(SiteId::server(1), 0.75);

        let qs = bind_plan(&qs_plan(&q), &cat);
        let rt0 = base.evaluate_bound(&qs, Objective::ResponseTime);
        let rt1 = loaded.evaluate_bound(&qs, Objective::ResponseTime);
        assert!(
            rt1 > 2.0 * rt0,
            "QS should blow up under load: {rt0} -> {rt1}"
        );

        // DS with a full cache never touches the server disk.
        let mut cat_cached = one_server_catalog();
        cat_cached.set_cached_fraction(RelId(0), 1.0);
        cat_cached.set_cached_fraction(RelId(1), 1.0);
        let base_c = CostModel::new(&cfg, &cat_cached, &q, SiteId::CLIENT);
        let loaded_c = CostModel::new(&cfg, &cat_cached, &q, SiteId::CLIENT)
            .with_disk_load(SiteId::server(1), 0.75);
        let ds = bind_plan(&ds_plan(&q), &cat_cached);
        let a = base_c.evaluate_bound(&ds, Objective::ResponseTime);
        let b = loaded_c.evaluate_bound(&ds, Objective::ResponseTime);
        assert!((a - b).abs() < 1e-12, "fully-cached DS unaffected by load");
    }

    #[test]
    fn cyclic_plan_evaluates_to_none() {
        let q = chain(3);
        let mut cat = Catalog::new(1);
        for i in 0..3 {
            cat.place(RelId(i), SiteId::server(1));
        }
        let cfg = SystemConfig::default();
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        let mut plan = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::PrimaryCopy,
        );
        let joins = plan.join_nodes();
        plan.node_mut(joins[1]).ann = Annotation::InnerRel;
        assert!(model
            .evaluate_plan(&plan, Objective::ResponseTime)
            .is_none());
    }

    #[test]
    fn selection_cpu_is_charged() {
        let q = chain(2).with_selection(RelId(0), 0.1);
        let cat = one_server_catalog();
        let cfg = SystemConfig::default();
        let model = CostModel::new(&cfg, &cat, &q, SiteId::CLIENT);
        let plan = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            &q,
            Annotation::InnerRel,
            Annotation::PrimaryCopy,
        );
        let b = bind_plan(&plan, &cat);
        let u = model.usage(&b);
        assert!(u.cpu[1] > 0.0);
        // Selection shrinks the inner: less spill I/O than unselected.
        let q2 = chain(2);
        let model2 = CostModel::new(&cfg, &cat, &q2, SiteId::CLIENT);
        let plan2 = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            &q2,
            Annotation::InnerRel,
            Annotation::PrimaryCopy,
        );
        let b2 = bind_plan(&plan2, &cat);
        assert!(model.usage(&b).disk[1] < model2.usage(&b2).disk[1]);
    }
}
