//! Optimization objectives.

use std::fmt;

/// What the optimizer minimizes — "For all experiments the query optimizer
/// was configured to generate plans that minimized the metric being
/// studied." (§4.1)

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Pages sent over the network.
    Communication,
    /// Estimated elapsed seconds until the last tuple is displayed.
    ResponseTime,
    /// Total resource seconds consumed (work).
    TotalCost,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Objective::Communication => "communication",
            Objective::ResponseTime => "response time",
            Objective::TotalCost => "total cost",
        };
        f.write_str(s)
    }
}
