//! The optimizer's cost model (§3.1.2).
//!
//! "The cost model that we used is capable of estimating both the total
//! cost and the response time of a query plan for a given system
//! configuration. The total-cost estimates are based on the model of
//! Mackert and Lohman \[ML86\]. The response-time estimates are generated
//! using the model of \[GHK92\]."
//!
//! Three objectives are provided ([`Objective`]):
//!
//! * **Communication** — pages sent over the network, the metric of the
//!   paper's communication experiments (Figs 2, 6, 7, 9);
//! * **ResponseTime** — elapsed time to the last displayed tuple, under
//!   the model's *full-overlap* assumption: pipelined and independent
//!   parallelism hide everything except serialization on individual
//!   resources. The paper itself notes this optimism ("it assumes that
//!   these costs can be fully overlapped, while in the simulator, such
//!   complete overlap is rarely attained", §4.2.3) — we reproduce the
//!   assumption deliberately;
//! * **TotalCost** — the sum of all resource seconds (ML86-style work
//!   metric).
//!
//! The per-operator accounting mirrors the engine: sequential scans at the
//! calibrated sequential per-page cost, hybrid-hash spill I/O, Table 2 CPU
//! charges, and per-page message costs. External server-disk load (the
//! multi-client stand-in of §3.2.2) inflates disk time by `1/(1-ρ)`.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod model;
pub mod objective;
pub mod usage;

pub use model::CostModel;
pub use objective::Objective;
pub use usage::ResourceUsage;
