//! Property tests for the cost model: monotonicity and internal
//! consistency over randomized scenarios.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp_catalog::{Catalog, JoinEdge, QuerySpec, RelId, Relation, SiteId, SystemConfig};
use csqp_core::{bind, is_well_formed, Annotation, BindContext, JoinTree, Plan, Policy};
use csqp_cost::{CostModel, Objective};
use proptest::prelude::*;

fn chain(n: u32) -> QuerySpec {
    let rels = (0..n)
        .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
        .collect();
    let edges = (0..n - 1)
        .map(|i| JoinEdge {
            a: RelId(i),
            b: RelId(i + 1),
            selectivity: 1e-4,
        })
        .collect();
    QuerySpec::new(rels, edges)
}

fn catalog(n: u32, servers: u32, cached: f64) -> Catalog {
    let mut c = Catalog::new(servers);
    for i in 0..n {
        c.place(RelId(i), SiteId::server(1 + i % servers));
        if cached > 0.0 {
            c.set_cached_fraction(RelId(i), cached);
        }
    }
    c
}

/// A plan with annotations drawn from a seed, rejection-sampled to be
/// well-formed (mirrors the optimizer's generator without depending on
/// the optimizer crate).
fn seeded_plan(query: &QuerySpec, seed: u64) -> Plan {
    let order: Vec<RelId> = query.relations.iter().map(|r| r.id).collect();
    let base = if seed.is_multiple_of(2) {
        JoinTree::left_deep(&order)
    } else {
        JoinTree::balanced(&order)
    };
    let mut plan = base.into_plan(query, Annotation::Consumer, Annotation::Client);
    let mut state = seed;
    for id in plan.postorder() {
        let op = plan.node(id).op;
        let allowed = Policy::HybridShipping.allowed(op);
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick = allowed[(state >> 33) as usize % allowed.len()];
        let old = plan.node(id).ann;
        plan.node_mut(id).ann = pick;
        if !is_well_formed(&plan) {
            plan.node_mut(id).ann = old;
        }
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Response time never exceeds total cost, and both are positive.
    #[test]
    fn response_bounded_by_total(n in 2u32..6, seed in 0u64..10_000) {
        let q = chain(n);
        let cat = catalog(n, 2.min(n), 0.25);
        let sys = SystemConfig::default();
        let model = CostModel::new(&sys, &cat, &q, SiteId::CLIENT);
        let plan = seeded_plan(&q, seed);
        let b = bind(&plan, BindContext { catalog: &cat, query_site: SiteId::CLIENT }).unwrap();
        let rt = model.evaluate_bound(&b, Objective::ResponseTime);
        let tc = model.evaluate_bound(&b, Objective::TotalCost);
        prop_assert!(rt > 0.0 && tc > 0.0);
        prop_assert!(rt <= tc + 1e-9, "rt {rt} > total {tc} for {plan}");
    }

    /// Adding external disk load never makes any plan look faster.
    #[test]
    fn load_is_monotone(n in 2u32..5, seed in 0u64..10_000, rho in 0.05f64..0.9) {
        let q = chain(n);
        let cat = catalog(n, 1, 0.0);
        let sys = SystemConfig::default();
        let plan = seeded_plan(&q, seed);
        let b = bind(&plan, BindContext { catalog: &cat, query_site: SiteId::CLIENT }).unwrap();
        let base = CostModel::new(&sys, &cat, &q, SiteId::CLIENT);
        let loaded = CostModel::new(&sys, &cat, &q, SiteId::CLIENT)
            .with_disk_load(SiteId::server(1), rho);
        prop_assert!(
            loaded.evaluate_bound(&b, Objective::ResponseTime) + 1e-12
                >= base.evaluate_bound(&b, Objective::ResponseTime)
        );
        prop_assert!(
            loaded.evaluate_bound(&b, Objective::TotalCost) + 1e-12
                >= base.evaluate_bound(&b, Objective::TotalCost)
        );
    }

    /// For the canonical DS plan, more caching never increases the
    /// communication estimate, and it falls to zero at 100%.
    #[test]
    fn ds_communication_monotone_in_cache(n in 2u32..5, steps in 1usize..5) {
        let q = chain(n);
        let order: Vec<RelId> = (0..n).map(RelId).collect();
        let plan = JoinTree::left_deep(&order).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::Client,
        );
        let sys = SystemConfig::default();
        let mut last = f64::INFINITY;
        for i in 0..=steps {
            let frac = i as f64 / steps as f64;
            let cat = catalog(n, 1, frac);
            let model = CostModel::new(&sys, &cat, &q, SiteId::CLIENT);
            let b = bind(&plan, BindContext { catalog: &cat, query_site: SiteId::CLIENT })
                .unwrap();
            let comm = model.evaluate_bound(&b, Objective::Communication);
            prop_assert!(comm <= last + 1e-9, "caching increased comm: {last} -> {comm}");
            last = comm;
        }
        prop_assert!(last.abs() < 1e-9, "fully cached DS still ships {last}");
    }

    /// Communication is placement-invariant for DS (it always faults
    /// everything) but not generally for QS.
    #[test]
    fn ds_commun_placement_invariant(n in 2u32..5, s1 in 1u32..3, s2 in 1u32..3) {
        let q = chain(n);
        let order: Vec<RelId> = (0..n).map(RelId).collect();
        let plan = JoinTree::left_deep(&order).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::Client,
        );
        let sys = SystemConfig::default();
        let mut vals = Vec::new();
        for s in [s1.min(n), s2.min(n)] {
            let cat = catalog(n, s, 0.0);
            let model = CostModel::new(&sys, &cat, &q, SiteId::CLIENT);
            let b = bind(&plan, BindContext { catalog: &cat, query_site: SiteId::CLIENT })
                .unwrap();
            vals.push(model.evaluate_bound(&b, Objective::Communication));
        }
        prop_assert!((vals[0] - vals[1]).abs() < 1e-9);
        prop_assert!((vals[0] - (250 * n as u64) as f64).abs() < 1e-9);
    }
}
