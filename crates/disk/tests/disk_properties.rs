//! Property tests for the disk model: completeness, accounting, and the
//! sequential-beats-random invariant under arbitrary workloads.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp_disk::{Disk, DiskAddr, DiskParams, DiskRequest, IoKind};
use csqp_simkernel::{SimDuration, SimTime};
use proptest::prelude::*;

/// Submit a batch while the disk is busy, then drain; returns completion
/// order and the final time.
fn run_batch(reqs: &[(u64, bool)]) -> (Vec<u32>, SimTime, Disk<u32>) {
    let mut d: Disk<u32> = Disk::new(DiskParams::default());
    let mut order = Vec::new();
    let mut fin = None;
    for (i, (addr, write)) in reqs.iter().enumerate() {
        let kind = if *write { IoKind::Write } else { IoKind::Read };
        let req = DiskRequest {
            addr: DiskAddr(*addr),
            kind,
            token: i as u32,
        };
        if let Some(f) = d.submit(SimTime::ZERO, req) {
            assert!(fin.is_none(), "only the first submission starts service");
            fin = Some(f);
        }
    }
    let mut now = fin.expect("at least one request");
    loop {
        let (tok, next) = d.finish_current(now);
        order.push(tok);
        match next {
            Some(f) => now = f,
            None => break,
        }
    }
    (order, now, d)
}

proptest! {
    /// Every submitted request completes exactly once, regardless of the
    /// address pattern (elevator never starves anyone).
    #[test]
    fn all_requests_complete(
        reqs in proptest::collection::vec((0u64..48_000, proptest::bool::ANY), 1..60)
    ) {
        let (order, _, d) = run_batch(&reqs);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..reqs.len() as u32).collect::<Vec<_>>());
        let stats = d.stats();
        prop_assert_eq!(
            stats.reads + stats.writes,
            reqs.len() as u64
        );
    }

    /// Busy time equals elapsed time for a saturated disk, and the mean
    /// service stays within physical bounds.
    #[test]
    fn busy_time_accounts_for_everything(
        reqs in proptest::collection::vec((0u64..48_000, proptest::bool::ANY), 1..60)
    ) {
        let (_, end, d) = run_batch(&reqs);
        let stats = d.stats();
        prop_assert_eq!(stats.busy, end.since(SimTime::ZERO));
        let mean = stats.mean_service().unwrap();
        prop_assert!(mean >= SimDuration::from_micros(500), "mean {mean}");
        prop_assert!(mean <= SimDuration::from_millis(30), "mean {mean}");
    }

    /// A sorted (sequential) batch never takes longer than the same batch
    /// in a scrambled order.
    #[test]
    fn sequential_order_is_never_slower(
        start in 0u64..40_000,
        len in 2usize..50,
        seed in 0u64..1000,
    ) {
        let seq: Vec<(u64, bool)> =
            (0..len as u64).map(|i| (start + i, false)).collect();
        let (_, seq_end, _) = run_batch(&seq);

        let mut scrambled = seq.clone();
        let mut rng = csqp_simkernel::rng::SimRng::seed_from_u64(seed);
        rng.shuffle(&mut scrambled);
        let (_, scr_end, _) = run_batch(&scrambled);
        prop_assert!(
            seq_end <= scr_end,
            "sequential {seq_end} vs scrambled {scr_end}"
        );
    }
}
