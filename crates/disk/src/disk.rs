//! The event-driven disk resource.
//!
//! [`Disk`] combines the geometry, seek/rotation timing, elevator scheduler
//! and controller cache into a single resource with the same two-phase
//! protocol as [`csqp_simkernel::FifoServer`]: `submit` returns a
//! completion time when the disk was idle; `finish_current` retires the
//! request in service and dispatches the next one chosen by the elevator.
//!
//! Service time of a request is computed *at dispatch*, from the head
//! position, the controller cache and the last media access:
//!
//! * controller-cache hit (read within a prefetched track tail):
//!   `cache_hit_overhead + transfer`;
//! * streaming access (the page physically following the last media
//!   access — e.g. a strictly sequential write stream):
//!   `cache_hit_overhead + transfer`;
//! * otherwise: `request_overhead + seek(Δcylinders) + ½ rotation +
//!   transfer`, after which the read-ahead cache is filled (reads) or
//!   invalidated (writes).

use csqp_simkernel::{SimDuration, SimTime};

use crate::cache::ControllerCache;
use crate::geometry::DiskAddr;
use crate::params::DiskParams;
use crate::sched::Elevator;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Read one page.
    Read,
    /// Write one page.
    Write,
}

/// A disk request: one page, plus an opaque completion token.
#[derive(Debug, Clone)]
pub struct DiskRequest<T> {
    /// Page address.
    pub addr: DiskAddr,
    /// Read or write.
    pub kind: IoKind,
    /// Opaque token returned on completion.
    pub token: T,
}

/// Aggregate disk statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskStats {
    /// Pages read.
    pub reads: u64,
    /// Pages written.
    pub writes: u64,
    /// Reads served from the controller cache.
    pub cache_hits: u64,
    /// Accesses served in streaming position (no seek/rotation).
    pub streaming: u64,
    /// Full-cost media accesses.
    pub media: u64,
    /// Total busy time.
    pub busy: SimDuration,
}

impl DiskStats {
    /// Mean service time per request.
    pub fn mean_service(&self) -> Option<SimDuration> {
        let n = self.reads + self.writes;
        (n > 0).then(|| self.busy / n)
    }
}

/// The disk resource.
#[derive(Debug)]
pub struct Disk<T> {
    params: DiskParams,
    cache: ControllerCache,
    queue: Elevator<DiskRequest<T>>,
    in_service: Option<T>,
    head_cyl: u64,
    /// Last page touched on media (for streaming detection).
    last_media: Option<DiskAddr>,
    stats: DiskStats,
}

impl<T> Disk<T> {
    /// A fresh disk with the head parked at cylinder 0.
    pub fn new(params: DiskParams) -> Disk<T> {
        let cache = ControllerCache::new(params.cache_segments);
        Disk {
            params,
            cache,
            queue: Elevator::new(),
            in_service: None,
            head_cyl: 0,
            last_media: None,
            stats: DiskStats::default(),
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Submit a request. Returns its completion time when the disk was
    /// idle (the caller schedules the completion event); `None` when it
    /// joined the elevator queue.
    pub fn submit(&mut self, now: SimTime, req: DiskRequest<T>) -> Option<SimTime> {
        if self.in_service.is_none() {
            Some(now + self.dispatch(req))
        } else {
            let pos = self.params.geometry.position(req.addr);
            self.queue.push(pos.cylinder, pos.track, pos.offset, req);
            None
        }
    }

    /// Retire the request in service; dispatch the elevator's next pick.
    /// Returns the completed token and, when another request entered
    /// service, its completion time for the caller to schedule.
    // Invariant panic, as in `FifoServer::finish_current`: completing an
    // idle disk is a caller bug the simulator cannot recover from.
    #[allow(clippy::expect_used)]
    pub fn finish_current(&mut self, now: SimTime) -> (T, Option<SimTime>) {
        let done = self
            .in_service
            .take()
            .expect("Disk::finish_current called while idle");
        let next = self
            .queue
            .pop(self.head_cyl)
            .map(|(_, req)| now + self.dispatch(req));
        (done, next)
    }

    /// Number of queued requests (excluding the one in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is in service or queued.
    pub fn is_idle(&self) -> bool {
        self.in_service.is_none() && self.queue.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            self.stats.busy.as_secs_f64() / now.as_secs_f64()
        }
    }

    /// Move `req` into service, updating head/cache state; returns its
    /// service time.
    fn dispatch(&mut self, req: DiskRequest<T>) -> SimDuration {
        let service_ms = self.service_ms(req.addr, req.kind);
        match req.kind {
            IoKind::Read => self.stats.reads += 1,
            IoKind::Write => self.stats.writes += 1,
        }
        let dur = SimDuration::from_secs_f64(service_ms / 1e3);
        self.stats.busy += dur;
        self.in_service = Some(req.token);
        dur
    }

    /// Compute the service time in ms and update head, cache and
    /// streaming state.
    fn service_ms(&mut self, addr: DiskAddr, kind: IoKind) -> f64 {
        let p = &self.params;
        let geo = &p.geometry;
        let pos = geo.position(addr);
        let streaming = self.last_media == Some(DiskAddr(addr.0.wrapping_sub(1))) && addr.0 > 0;

        match kind {
            IoKind::Read => {
                if self.cache.lookup(geo, addr) {
                    self.stats.cache_hits += 1;
                    // Served from controller RAM; media read-ahead
                    // continues in the background, so keep the media
                    // cursor moving with the stream.
                    self.last_media = Some(addr);
                    p.cache_hit_overhead_ms + p.transfer_ms()
                } else if streaming {
                    // Physically consecutive read that the cache missed
                    // (e.g. first read after a write at addr-1): the head
                    // is already there.
                    self.stats.streaming += 1;
                    self.cache.fill(geo, addr);
                    self.last_media = Some(addr);
                    self.head_cyl = pos.cylinder;
                    p.cache_hit_overhead_ms + p.transfer_ms()
                } else {
                    self.stats.media += 1;
                    let seek = p.seek_ms(self.head_cyl.abs_diff(pos.cylinder));
                    self.cache.fill(geo, addr);
                    self.last_media = Some(addr);
                    self.head_cyl = pos.cylinder;
                    p.request_overhead_ms + seek + p.avg_rotational_ms() + p.transfer_ms()
                }
            }
            IoKind::Write => {
                self.cache.invalidate(geo, addr);
                if streaming {
                    self.stats.streaming += 1;
                    self.last_media = Some(addr);
                    self.head_cyl = pos.cylinder;
                    p.cache_hit_overhead_ms + p.transfer_ms()
                } else {
                    self.stats.media += 1;
                    let seek = p.seek_ms(self.head_cyl.abs_diff(pos.cylinder));
                    self.last_media = Some(addr);
                    self.head_cyl = pos.cylinder;
                    p.request_overhead_ms + seek + p.avg_rotational_ms() + p.transfer_ms()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk<u32> {
        Disk::new(DiskParams::default())
    }

    fn read(addr: u64, token: u32) -> DiskRequest<u32> {
        DiskRequest {
            addr: DiskAddr(addr),
            kind: IoKind::Read,
            token,
        }
    }

    fn write(addr: u64, token: u32) -> DiskRequest<u32> {
        DiskRequest {
            addr: DiskAddr(addr),
            kind: IoKind::Write,
            token,
        }
    }

    /// Drain one request synchronously, returning its service time.
    fn serve(d: &mut Disk<u32>, now: SimTime, req: DiskRequest<u32>) -> (SimTime, u32) {
        let fin = d.submit(now, req).expect("disk idle");
        let (tok, next) = d.finish_current(fin);
        assert!(next.is_none());
        (fin, tok)
    }

    #[test]
    fn sequential_reads_hit_cache_within_track() {
        let mut d = disk();
        let mut now = SimTime::ZERO;
        // 4 pages per track: first misses, the rest hit.
        for i in 0..4 {
            let (fin, _) = serve(&mut d, now, read(i, i as u32));
            now = fin;
        }
        let s = d.stats();
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.media, 1);
    }

    #[test]
    fn sequential_cheaper_than_random() {
        let mut seq_d = disk();
        let mut now = SimTime::ZERO;
        for i in 0..120 {
            let (fin, _) = serve(&mut seq_d, now, read(i, 0));
            now = fin;
        }
        let seq_time = now;

        let mut rnd_d = disk();
        let mut now = SimTime::ZERO;
        // Stride through cylinders: every read a full seek.
        for i in 0..120u64 {
            let (fin, _) = serve(&mut rnd_d, now, read((i * 397) % 48_000, 0));
            now = fin;
        }
        let rnd_time = now;
        assert!(
            rnd_time.as_secs_f64() > 2.5 * seq_time.as_secs_f64(),
            "random {rnd_time} should be much slower than sequential {seq_time}"
        );
    }

    #[test]
    fn sequential_writes_stream() {
        let mut d = disk();
        let mut now = SimTime::ZERO;
        for i in 0..12 {
            let (fin, _) = serve(&mut d, now, write(i, 0));
            now = fin;
        }
        let s = d.stats();
        assert_eq!(s.writes, 12);
        assert_eq!(s.streaming, 11, "all but the first write stream");
    }

    #[test]
    fn interleaved_streams_pay_like_random() {
        // The load-bearing effect for Figures 3/4/8: two sequential
        // streams on one disk interfere.
        let mut d = disk();
        let mut now = SimTime::ZERO;
        for i in 0..60 {
            let (fin, _) = serve(&mut d, now, read(i, 0));
            now = fin;
            let (fin, _) = serve(&mut d, now, read(24_000 + i, 0));
            now = fin;
        }
        let interleaved = now.as_secs_f64() / 120.0;

        let mut d2 = disk();
        let mut now = SimTime::ZERO;
        for i in 0..60 {
            let (fin, _) = serve(&mut d2, now, read(i, 0));
            now = fin;
        }
        for i in 0..60 {
            let (fin, _) = serve(&mut d2, now, read(24_000 + i, 0));
            now = fin;
        }
        let backtoback = now.as_secs_f64() / 120.0;
        assert!(
            interleaved > 2.0 * backtoback,
            "interleaved {interleaved} vs back-to-back {backtoback}"
        );
    }

    #[test]
    fn elevator_orders_queued_requests() {
        let mut d = disk();
        let now = SimTime::ZERO;
        // Occupy the disk, then queue requests out of order.
        let fin = d.submit(now, read(0, 0)).unwrap();
        assert!(d.submit(now, read(40_000, 3)).is_none());
        assert!(d.submit(now, read(10_000, 1)).is_none());
        assert!(d.submit(now, read(20_000, 2)).is_none());
        assert_eq!(d.queue_len(), 3);
        // Head at cylinder 0 sweeping up: serve 1, 2, 3 in cylinder order.
        let mut order = Vec::new();
        let (tok, mut next) = d.finish_current(fin);
        assert_eq!(tok, 0);
        while let Some(fin) = next {
            let (tok, n) = d.finish_current(fin);
            order.push(tok);
            next = n;
        }
        assert_eq!(order, vec![1, 2, 3]);
        assert!(d.is_idle());
    }

    #[test]
    fn write_invalidates_read_cache() {
        let mut d = disk();
        let mut now = SimTime::ZERO;
        let (fin, _) = serve(&mut d, now, read(0, 0));
        now = fin;
        // Overwrite a prefetched page; jump away to break streaming, then
        // the re-read must miss.
        let (fin, _) = serve(&mut d, now, write(1, 0));
        now = fin;
        let (fin, _) = serve(&mut d, now, read(30_000, 0));
        now = fin;
        let before = d.stats().cache_hits;
        let (_, _) = serve(&mut d, now, read(1, 0));
        assert_eq!(d.stats().cache_hits, before, "no hit after invalidation");
    }

    #[test]
    fn stats_mean_service() {
        let mut d = disk();
        let (fin, _) = serve(&mut d, SimTime::ZERO, read(0, 0));
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.mean_service().unwrap(), fin.since(SimTime::ZERO));
        assert!((d.utilization(fin) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "while idle")]
    fn finish_when_idle_panics() {
        let mut d = disk();
        d.finish_current(SimTime::ZERO);
    }
}
