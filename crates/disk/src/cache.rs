//! The disk controller cache with read-ahead prefetching.
//!
//! After servicing a read, the controller keeps reading the remainder of
//! the current track into a cache segment, so a sequential stream hits the
//! cache for every page until the track boundary. The cache holds a small
//! number of segments (one by default, as on era-appropriate controllers);
//! a competing stream reading elsewhere claims a segment, which is how
//! interleaved sequential streams degrade each other.
//!
//! Writes bypass and invalidate the cache (no write caching — the paper's
//! model charges full media time for writes).

use crate::geometry::{DiskAddr, Geometry};

/// One read-ahead segment: the tail of a track, `[from, track_end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    track: u64,
    from: DiskAddr,
    /// LRU stamp.
    used: u64,
}

/// The controller cache.
#[derive(Debug)]
pub struct ControllerCache {
    segments: Vec<Segment>,
    max_segments: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl ControllerCache {
    /// A cache with `max_segments` read-ahead segments.
    pub fn new(max_segments: usize) -> ControllerCache {
        assert!(max_segments >= 1, "need at least one cache segment");
        ControllerCache {
            segments: Vec::with_capacity(max_segments),
            max_segments,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a read. Returns true on a cache hit. On a miss the caller
    /// services the request from media and then calls [`Self::fill`].
    pub fn lookup(&mut self, geo: &Geometry, addr: DiskAddr) -> bool {
        self.clock += 1;
        let track = geo.track_index(addr);
        for seg in &mut self.segments {
            if seg.track == track && addr >= seg.from {
                seg.used = self.clock;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Install the read-ahead segment after a media read at `addr`: the
    /// rest of `addr`'s track, starting just past `addr`. Evicts the LRU
    /// segment when full.
    // Invariant panic: the eviction scan runs only when `segments.len()`
    // equals `max_segments`, which is at least one, so a minimum exists.
    #[allow(clippy::expect_used)]
    pub fn fill(&mut self, geo: &Geometry, addr: DiskAddr) {
        let track = geo.track_index(addr);
        let from = DiskAddr(addr.0 + 1);
        // End of track: nothing left to prefetch; drop any stale segment
        // for this track instead.
        let track_end = geo.track_start(track + 1);
        self.segments.retain(|s| s.track != track);
        if from >= track_end {
            return;
        }
        let seg = Segment {
            track,
            from,
            used: self.clock,
        };
        if self.segments.len() == self.max_segments {
            let lru = self
                .segments
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.used)
                .map(|(i, _)| i)
                .expect("cache is non-empty when full");
            self.segments.swap_remove(lru);
        }
        self.segments.push(seg);
    }

    /// Invalidate any segment covering `addr`'s track (called on writes).
    pub fn invalidate(&mut self, geo: &Geometry, addr: DiskAddr) {
        let track = geo.track_index(addr);
        self.segments.retain(|s| s.track != track);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry {
            cylinders: 100,
            tracks_per_cyl: 2,
            pages_per_track: 4,
        }
    }

    #[test]
    fn sequential_stream_hits_after_first_page() {
        let g = geo();
        let mut c = ControllerCache::new(1);
        // Track 0 = pages 0..4.
        assert!(!c.lookup(&g, DiskAddr(0)));
        c.fill(&g, DiskAddr(0));
        assert!(c.lookup(&g, DiskAddr(1)));
        assert!(c.lookup(&g, DiskAddr(2)));
        assert!(c.lookup(&g, DiskAddr(3)));
        // Next track: miss again.
        assert!(!c.lookup(&g, DiskAddr(4)));
        c.fill(&g, DiskAddr(4));
        assert!(c.lookup(&g, DiskAddr(5)));
        assert_eq!(c.hits(), 4);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn interleaved_streams_evict_each_other() {
        let g = geo();
        let mut c = ControllerCache::new(1);
        // Stream A on track 0, stream B on track 10: strict interleave.
        let a = [0u64, 1, 2];
        let b = [40u64, 41, 42];
        let mut hits = 0;
        for i in 0..3 {
            if c.lookup(&g, DiskAddr(a[i])) {
                hits += 1;
            } else {
                c.fill(&g, DiskAddr(a[i]));
            }
            if c.lookup(&g, DiskAddr(b[i])) {
                hits += 1;
            } else {
                c.fill(&g, DiskAddr(b[i]));
            }
        }
        assert_eq!(hits, 0, "single-segment cache cannot hold both streams");
    }

    #[test]
    fn two_segments_keep_two_streams() {
        let g = geo();
        let mut c = ControllerCache::new(2);
        let a = [0u64, 1, 2];
        let b = [40u64, 41, 42];
        let mut hits = 0;
        for i in 0..3 {
            for s in [a[i], b[i]] {
                if c.lookup(&g, DiskAddr(s)) {
                    hits += 1;
                } else {
                    c.fill(&g, DiskAddr(s));
                }
            }
        }
        assert_eq!(hits, 4, "both streams hit after their first page");
    }

    #[test]
    fn backwards_read_misses() {
        let g = geo();
        let mut c = ControllerCache::new(1);
        c.fill(&g, DiskAddr(2));
        assert!(c.lookup(&g, DiskAddr(3)));
        assert!(!c.lookup(&g, DiskAddr(1)), "read-ahead is forward only");
    }

    #[test]
    fn write_invalidates_track() {
        let g = geo();
        let mut c = ControllerCache::new(1);
        c.fill(&g, DiskAddr(0));
        c.invalidate(&g, DiskAddr(2));
        assert!(!c.lookup(&g, DiskAddr(1)));
    }

    #[test]
    fn fill_at_track_end_caches_nothing() {
        let g = geo();
        let mut c = ControllerCache::new(1);
        c.fill(&g, DiskAddr(3)); // last page of track 0
        assert!(!c.lookup(&g, DiskAddr(4)));
    }
}
