//! Platter geometry and page addressing.
//!
//! Pages are addressed linearly ([`DiskAddr`]) and mapped to
//! (cylinder, track, offset) triples: consecutive addresses fill a track,
//! then the next track of the same cylinder, then the next cylinder — so a
//! contiguous extent is physically sequential, which is what makes scans
//! cheap and interleaved streams expensive.

use std::fmt;

/// Linear page address on one disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskAddr(pub u64);

/// Platter geometry: cylinders × tracks × pages-per-track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of cylinders.
    pub cylinders: u32,
    /// Tracks (surfaces) per cylinder.
    pub tracks_per_cyl: u32,
    /// Pages per track.
    pub pages_per_track: u32,
}

impl Default for Geometry {
    fn default() -> Self {
        // 2000 × 6 × 4 pages ≈ 48k pages ≈ 196 MB at 4 KB pages — roughly
        // an early-90s server disk, and comfortably larger than any
        // workload in the study (10 relations + cache copies + temp).
        Geometry {
            cylinders: 2_000,
            tracks_per_cyl: 6,
            pages_per_track: 4,
        }
    }
}

/// Physical position of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// Cylinder number.
    pub cylinder: u64,
    /// Track within the cylinder.
    pub track: u64,
    /// Page offset within the track.
    pub offset: u64,
}

impl Geometry {
    /// Total pages on the disk.
    #[inline]
    pub fn capacity_pages(&self) -> u64 {
        self.cylinders as u64 * self.tracks_per_cyl as u64 * self.pages_per_track as u64
    }

    /// Map a linear address to its physical position.
    ///
    /// # Panics
    /// Panics if the address is beyond the end of the disk (an extent
    /// allocator bug).
    #[inline]
    pub fn position(&self, addr: DiskAddr) -> Position {
        assert!(
            addr.0 < self.capacity_pages(),
            "disk address {addr} beyond capacity {}",
            self.capacity_pages()
        );
        let per_track = self.pages_per_track as u64;
        let per_cyl = per_track * self.tracks_per_cyl as u64;
        Position {
            cylinder: addr.0 / per_cyl,
            track: (addr.0 % per_cyl) / per_track,
            offset: addr.0 % per_track,
        }
    }

    /// The global track index of an address (cylinder and track combined) —
    /// the unit of read-ahead caching.
    #[inline]
    pub fn track_index(&self, addr: DiskAddr) -> u64 {
        addr.0 / self.pages_per_track as u64
    }

    /// First address of the given global track.
    #[inline]
    pub fn track_start(&self, track_index: u64) -> DiskAddr {
        DiskAddr(track_index * self.pages_per_track as u64)
    }
}

impl fmt::Display for DiskAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_capacity() {
        assert_eq!(Geometry::default().capacity_pages(), 48_000);
    }

    #[test]
    fn position_mapping() {
        let g = Geometry {
            cylinders: 10,
            tracks_per_cyl: 2,
            pages_per_track: 4,
        };
        let p = g.position(DiskAddr(0));
        assert_eq!((p.cylinder, p.track, p.offset), (0, 0, 0));
        let p = g.position(DiskAddr(5));
        assert_eq!((p.cylinder, p.track, p.offset), (0, 1, 1));
        let p = g.position(DiskAddr(8));
        assert_eq!((p.cylinder, p.track, p.offset), (1, 0, 0));
        assert_eq!(g.track_index(DiskAddr(5)), 1);
        assert_eq!(g.track_start(1), DiskAddr(4));
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_range_address() {
        let g = Geometry {
            cylinders: 1,
            tracks_per_cyl: 1,
            pages_per_track: 4,
        };
        g.position(DiskAddr(4));
    }

    proptest! {
        /// Consecutive addresses are physically adjacent: same track, or
        /// track/cylinder increments at boundaries.
        #[test]
        fn addresses_fill_tracks_sequentially(a in 0u64..47_999) {
            let g = Geometry::default();
            let p1 = g.position(DiskAddr(a));
            let p2 = g.position(DiskAddr(a + 1));
            if p1.offset + 1 < g.pages_per_track as u64 {
                prop_assert_eq!(p2.offset, p1.offset + 1);
                prop_assert_eq!(p2.track, p1.track);
                prop_assert_eq!(p2.cylinder, p1.cylinder);
            } else {
                prop_assert_eq!(p2.offset, 0);
                prop_assert!(
                    (p2.cylinder == p1.cylinder && p2.track == p1.track + 1)
                        || (p2.cylinder == p1.cylinder + 1 && p2.track == 0)
                );
            }
        }

        /// track_index is consistent with position.
        #[test]
        fn track_index_consistent(a in 0u64..48_000) {
            let g = Geometry::default();
            let p = g.position(DiskAddr(a));
            let ti = g.track_index(DiskAddr(a));
            prop_assert_eq!(
                ti,
                p.cylinder * g.tracks_per_cyl as u64 + p.track
            );
        }
    }
}
