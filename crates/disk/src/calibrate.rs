//! Calibration runs for the optimizer's cost model.
//!
//! "The average performance of the disk model with these settings is
//! roughly 3.5 msec per page for sequential I/O, and 11.8 msec per page
//! for random I/O; these values were obtained by separate simulation runs
//! to calibrate the cost model of the optimizer." (§4.1)
//!
//! [`measure`] reproduces those separate runs: it drives a fresh disk with
//! a long single-stream sequential scan and with uniformly random reads,
//! and reports the per-page averages. The workspace test suite asserts the
//! defaults land near the paper's constants, and the experiments harness
//! prints the measured values so any parameter change is visible.

use csqp_simkernel::rng::SimRng;
use csqp_simkernel::SimTime;

use crate::disk::{Disk, DiskRequest, IoKind};
use crate::geometry::DiskAddr;
use crate::params::DiskParams;

/// Measured per-page averages, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Average per-page cost of a long sequential read stream.
    pub sequential_ms: f64,
    /// Average per-page cost of uniformly random reads.
    pub random_ms: f64,
}

/// Run the calibration workloads against `params` with `pages` requests
/// each (a few thousand is plenty; the streams are deterministic apart
/// from the random addresses drawn from `seed`).
pub fn measure(params: &DiskParams, pages: u64, seed: u64) -> Calibration {
    let capacity = params.geometry.capacity_pages();
    assert!(pages > 0 && pages <= capacity, "invalid calibration length");

    // Sequential: one long scan from the start of the disk.
    let mut disk: Disk<()> = Disk::new(params.clone());
    let mut now = SimTime::ZERO;
    for i in 0..pages {
        now = serve_one(&mut disk, now, DiskAddr(i));
    }
    let sequential_ms = now.as_secs_f64() * 1e3 / pages as f64;

    // Random: uniform addresses over the whole disk.
    let mut disk: Disk<()> = Disk::new(params.clone());
    let mut rng = SimRng::seed_from_u64(seed);
    let mut now = SimTime::ZERO;
    for _ in 0..pages {
        let addr = DiskAddr(rng.below(capacity as usize) as u64);
        now = serve_one(&mut disk, now, addr);
    }
    let random_ms = now.as_secs_f64() * 1e3 / pages as f64;

    Calibration {
        sequential_ms,
        random_ms,
    }
}

// Invariant panic: the calibration loop is synchronous — each request is
// retired before the next is submitted, so the disk is always idle here.
#[allow(clippy::expect_used)]
fn serve_one(disk: &mut Disk<()>, now: SimTime, addr: DiskAddr) -> SimTime {
    let fin = disk
        .submit(
            now,
            DiskRequest {
                addr,
                kind: IoKind::Read,
                token: (),
            },
        )
        .expect("disk idle in synchronous calibration loop");
    let (_, next) = disk.finish_current(fin);
    assert!(next.is_none());
    fin
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reproduction's analogue of the paper's calibration: the default
    /// parameters must land near 3.5 ms sequential / 11.8 ms random.
    #[test]
    fn default_params_match_paper_averages() {
        let cal = measure(&DiskParams::default(), 6_000, 17);
        assert!(
            (cal.sequential_ms - 3.5).abs() < 0.6,
            "sequential {} ms, want ≈3.5",
            cal.sequential_ms
        );
        assert!(
            (cal.random_ms - 11.8).abs() < 1.5,
            "random {} ms, want ≈11.8",
            cal.random_ms
        );
    }

    #[test]
    fn calibration_is_deterministic_per_seed() {
        let a = measure(&DiskParams::default(), 1_000, 5);
        let b = measure(&DiskParams::default(), 1_000, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn faster_spindle_lowers_both() {
        let mut fast = DiskParams::default();
        fast.rpm *= 2.0;
        let base = measure(&DiskParams::default(), 2_000, 9);
        let quick = measure(&fast, 2_000, 9);
        assert!(quick.sequential_ms < base.sequential_ms);
        assert!(quick.random_ms < base.random_ms);
    }
}
