//! The elevator (SCAN) request scheduler.
//!
//! Pending requests are served in cylinder order, sweeping the head in one
//! direction until no requests remain ahead of it, then reversing — the
//! classic elevator policy the paper's disk model uses. Within a cylinder,
//! requests are served in (track, offset, arrival) order so co-located
//! requests don't thrash.

use std::collections::BTreeMap;

/// Sort key: physical position then arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    cylinder: u64,
    track: u64,
    offset: u64,
    seq: u64,
}

/// An elevator queue of opaque requests keyed by physical position.
#[derive(Debug)]
pub struct Elevator<T> {
    pending: BTreeMap<Key, T>,
    next_seq: u64,
    /// True = sweeping towards higher cylinders.
    upward: bool,
}

impl<T> Default for Elevator<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Elevator<T> {
    /// An empty queue, initially sweeping upward.
    pub fn new() -> Elevator<T> {
        Elevator {
            pending: BTreeMap::new(),
            next_seq: 0,
            upward: true,
        }
    }

    /// Enqueue a request at the given physical position.
    pub fn push(&mut self, cylinder: u64, track: u64, offset: u64, item: T) {
        let key = Key {
            cylinder,
            track,
            offset,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.pending.insert(key, item);
    }

    /// Dequeue the next request given the head is at `head_cyl`, following
    /// the SCAN discipline. Returns the request and its cylinder.
    // Invariant panics: the queue is non-empty past the early return, so
    // when one sweep direction finds nothing the other must; and the key
    // handed to `remove` was observed in the map one statement earlier.
    #[allow(clippy::expect_used)]
    pub fn pop(&mut self, head_cyl: u64) -> Option<(u64, T)> {
        if self.pending.is_empty() {
            return None;
        }
        let lo = Key {
            cylinder: head_cyl,
            track: 0,
            offset: 0,
            seq: 0,
        };
        let key = if self.upward {
            // Nearest at-or-above the head, else reverse.
            match self.pending.range(lo..).next() {
                Some((k, _)) => *k,
                None => {
                    self.upward = false;
                    *self
                        .pending
                        .range(..lo)
                        .next_back()
                        .expect("non-empty: something below the head")
                        .0
                }
            }
        } else {
            // We sweep downward by taking the highest key below the
            // boundary; requests on the head's own cylinder count.
            let hi = Key {
                cylinder: head_cyl,
                track: u64::MAX,
                offset: u64::MAX,
                seq: u64::MAX,
            };
            match self.pending.range(..=hi).next_back() {
                Some((k, _)) => *k,
                None => {
                    self.upward = true;
                    *self
                        .pending
                        .range(lo..)
                        .next()
                        .expect("non-empty: something above the head")
                        .0
                }
            }
        };
        let item = self.pending.remove(&key).expect("key just observed");
        Some((key.cylinder, item))
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_up_then_down() {
        let mut e = Elevator::new();
        e.push(50, 0, 0, "c50");
        e.push(10, 0, 0, "c10");
        e.push(90, 0, 0, "c90");
        // Head at 40, sweeping up: 50, 90, then reverse to 10.
        assert_eq!(e.pop(40), Some((50, "c50")));
        assert_eq!(e.pop(50), Some((90, "c90")));
        assert_eq!(e.pop(90), Some((10, "c10")));
        assert!(e.is_empty());
    }

    #[test]
    fn same_cylinder_served_in_position_order() {
        let mut e = Elevator::new();
        e.push(5, 1, 3, "late-on-track");
        e.push(5, 0, 0, "first");
        e.push(5, 1, 0, "second");
        assert_eq!(e.pop(5).unwrap().1, "first");
        assert_eq!(e.pop(5).unwrap().1, "second");
        assert_eq!(e.pop(5).unwrap().1, "late-on-track");
    }

    #[test]
    fn arrival_breaks_exact_ties() {
        let mut e = Elevator::new();
        e.push(5, 0, 0, 1);
        e.push(5, 0, 0, 2);
        assert_eq!(e.pop(5).unwrap().1, 1);
        assert_eq!(e.pop(5).unwrap().1, 2);
    }

    #[test]
    fn downward_sweep_reverses_at_bottom() {
        let mut e = Elevator::new();
        e.push(10, 0, 0, "a");
        e.push(60, 0, 0, "b");
        // Head at 100 sweeping up: nothing above -> reverses.
        assert_eq!(e.pop(100), Some((60, "b")));
        assert_eq!(e.pop(60), Some((10, "a")));
        // Now sweeping down at cylinder 10; push something above.
        e.push(30, 0, 0, "c");
        assert_eq!(e.pop(10), Some((30, "c")));
    }

    #[test]
    fn empty_pop_is_none() {
        let mut e: Elevator<()> = Elevator::new();
        assert_eq!(e.pop(0), None);
    }

    #[test]
    fn reduces_seek_travel_versus_fifo() {
        // Classic SCAN sanity check: total head travel over a batch is no
        // more than FIFO's for an adversarial arrival order.
        let arrivals = [500u64, 10, 900, 20, 800, 30];
        let mut e = Elevator::new();
        for (i, &c) in arrivals.iter().enumerate() {
            e.push(c, 0, 0, i);
        }
        let mut head = 0u64;
        let mut scan_travel = 0u64;
        while let Some((cyl, _)) = e.pop(head) {
            scan_travel += head.abs_diff(cyl);
            head = cyl;
        }
        let mut head = 0u64;
        let mut fifo_travel = 0u64;
        for &c in &arrivals {
            fifo_travel += head.abs_diff(c);
            head = c;
        }
        assert!(
            scan_travel < fifo_travel,
            "SCAN {scan_travel} should beat FIFO {fifo_travel}"
        );
    }
}
