//! Contiguous extent allocation on a disk.
//!
//! Relations, cached relation copies and join temp partitions each get a
//! contiguous run of pages, so sequential logical access is sequential
//! physical access. The allocator is a simple bump allocator — the study
//! never frees extents mid-query, and each simulation run starts from a
//! fresh disk image.

use crate::geometry::DiskAddr;

/// A contiguous run of pages on one disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First page of the extent.
    pub start: DiskAddr,
    /// Length in pages.
    pub pages: u64,
}

impl Extent {
    /// Address of the `i`-th page of the extent.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    #[inline]
    pub fn page(&self, i: u64) -> DiskAddr {
        assert!(
            i < self.pages,
            "page {i} out of extent of {} pages",
            self.pages
        );
        DiskAddr(self.start.0 + i)
    }

    /// One past the last address.
    #[inline]
    pub fn end(&self) -> DiskAddr {
        DiskAddr(self.start.0 + self.pages)
    }
}

/// Bump allocator over one disk's linear address space.
#[derive(Debug)]
pub struct ExtentAllocator {
    next: u64,
    capacity: u64,
}

impl ExtentAllocator {
    /// An allocator over a disk of `capacity` pages.
    pub fn new(capacity: u64) -> ExtentAllocator {
        ExtentAllocator { next: 0, capacity }
    }

    /// Allocate a contiguous extent of `pages` pages.
    ///
    /// # Panics
    /// Panics when the disk is full — the study's workloads are sized well
    /// under capacity, so exhaustion is a configuration bug worth failing
    /// loudly on.
    pub fn alloc(&mut self, pages: u64) -> Extent {
        assert!(
            self.next + pages <= self.capacity,
            "disk full: cannot allocate {pages} pages at {} of {}",
            self.next,
            self.capacity
        );
        let e = Extent {
            start: DiskAddr(self.next),
            pages,
        };
        self.next += pages;
        e
    }

    /// Pages still unallocated.
    pub fn free_pages(&self) -> u64 {
        self.capacity - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_are_disjoint_and_contiguous() {
        let mut a = ExtentAllocator::new(100);
        let e1 = a.alloc(30);
        let e2 = a.alloc(20);
        assert_eq!(e1.start, DiskAddr(0));
        assert_eq!(e1.end(), DiskAddr(30));
        assert_eq!(e2.start, DiskAddr(30));
        assert_eq!(e2.page(0), DiskAddr(30));
        assert_eq!(e2.page(19), DiskAddr(49));
        assert_eq!(a.free_pages(), 50);
    }

    #[test]
    #[should_panic(expected = "disk full")]
    fn exhaustion_panics() {
        let mut a = ExtentAllocator::new(10);
        a.alloc(11);
    }

    #[test]
    #[should_panic(expected = "out of extent")]
    fn page_out_of_range() {
        let e = Extent {
            start: DiskAddr(0),
            pages: 5,
        };
        e.page(5);
    }
}
