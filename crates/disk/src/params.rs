//! Disk model parameters.
//!
//! "There are many parameters to the disk model (not shown), including:
//! rotational speed, seek factor, settle time, track and cylinder sizes,
//! controller cache size, etc." (§3.2.2). The defaults below are tuned so
//! that the calibration runs of [`crate::calibrate`] land on the paper's
//! measured averages for the Fujitsu-M2266-like configuration of \[PCV94\]:
//! ≈3.5 ms per page sequential, ≈11.8 ms per page random (§4.1).

use crate::geometry::Geometry;

/// Parameters of the disk model.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskParams {
    /// Platter geometry.
    pub geometry: Geometry,
    /// Spindle speed in revolutions per minute.
    pub rpm: f64,
    /// Head settle time in milliseconds (also charged for a pure
    /// track/head switch, i.e. a zero-distance seek).
    pub settle_ms: f64,
    /// Seek time factor: seek(d) = settle + factor · √d milliseconds for a
    /// d-cylinder move.
    pub seek_factor_ms: f64,
    /// Fixed controller/command overhead per media-touching request, ms.
    pub request_overhead_ms: f64,
    /// Fixed overhead for a controller-cache hit, ms.
    pub cache_hit_overhead_ms: f64,
    /// Number of independent read-ahead segments in the controller cache.
    /// Era-appropriate controllers had one (or very few); a single segment
    /// is what makes interleaved sequential streams interfere.
    pub cache_segments: usize,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            geometry: Geometry::default(),
            rpm: 5_400.0,
            settle_ms: 0.8,
            seek_factor_ms: 0.07,
            request_overhead_ms: 1.0,
            cache_hit_overhead_ms: 0.7,
            cache_segments: 1,
        }
    }
}

impl DiskParams {
    /// One full revolution, in milliseconds.
    #[inline]
    pub fn revolution_ms(&self) -> f64 {
        60_000.0 / self.rpm
    }

    /// Media transfer time for one page, in milliseconds (a track holds
    /// `pages_per_track` pages and passes under the head once per
    /// revolution).
    #[inline]
    pub fn transfer_ms(&self) -> f64 {
        self.revolution_ms() / self.geometry.pages_per_track as f64
    }

    /// Average rotational latency (half a revolution), in milliseconds.
    #[inline]
    pub fn avg_rotational_ms(&self) -> f64 {
        self.revolution_ms() / 2.0
    }

    /// Seek time for a move of `cylinders` cylinders, in milliseconds.
    /// A zero-distance "seek" still pays the settle time (head/track
    /// switch); this is only charged on cache misses.
    #[inline]
    pub fn seek_ms(&self, cylinders: u64) -> f64 {
        self.settle_ms + self.seek_factor_ms * (cylinders as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_times_at_default_settings() {
        let p = DiskParams::default();
        assert!((p.revolution_ms() - 11.111).abs() < 0.01);
        // 4 pages per track.
        assert!((p.transfer_ms() - 2.778).abs() < 0.01);
        assert!((p.avg_rotational_ms() - 5.556).abs() < 0.01);
    }

    #[test]
    fn seek_grows_with_distance() {
        let p = DiskParams::default();
        assert!((p.seek_ms(0) - 0.8).abs() < 1e-12);
        assert!(p.seek_ms(100) > p.seek_ms(1));
        assert!((p.seek_ms(400) - (0.8 + 0.07 * 20.0)).abs() < 1e-9);
    }
}
