//! A detailed disk model for the csqp simulator.
//!
//! The paper's simulator "models disks using a detailed characterization
//! that was adapted from the ZetaSim model \[Bro92\]. The disk model includes
//! an elevator disk scheduling policy, a controller cache, and read-ahead
//! prefetching. … For the purposes of this study, the important aspect of
//! the disk model is that it captures the cost differences between
//! sequential and random I/Os." (§3.2.2)
//!
//! This crate reproduces exactly that:
//!
//! * [`geometry`] — cylinders / tracks / pages and linear page addresses;
//! * [`params`] — the parametric disk (rotation speed, seek factor, settle
//!   time, per-request overhead, cache configuration), with defaults
//!   calibrated to the paper's measured averages of ≈3.5 ms per sequential
//!   page and ≈11.8 ms per random page (§4.1, Fujitsu M2266-like);
//! * [`cache`] — the controller cache with track read-ahead;
//! * [`sched`] — the elevator (SCAN) request queue;
//! * [`disk`] — the event-driven [`Disk`] resource tying it together;
//! * [`extent`] — contiguous extent allocation so relations, cached copies
//!   and join temp partitions occupy realistic positions on the platter;
//! * [`calibrate`] — the "separate simulation runs" that measure the
//!   sequential/random averages used to calibrate the optimizer cost model.
//!
//! **Why this matters for the study:** interference is *emergent* here.
//! Two interleaved sequential streams (e.g. a base-relation scan and
//! hybrid-hash partition spills on the same disk) evict each other from the
//! controller cache and drag the head apart, so each pays near-random
//! cost — precisely the effect behind Figures 3, 4 and 8 of the paper.
//! No "contention penalty" constant exists anywhere in this crate.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod calibrate;
pub mod disk;
pub mod extent;
pub mod geometry;
pub mod params;
pub mod sched;

pub use disk::{Disk, DiskRequest, IoKind};
pub use extent::{Extent, ExtentAllocator};
pub use geometry::{DiskAddr, Geometry};
pub use params::DiskParams;
