//! Direct kernel tests with miniature operators: these exercise the
//! channel/flow-control/resource machinery without the full plan builder.

#![cfg(test)]

use csqp_catalog::{SiteId, SystemConfig};
use csqp_disk::{DiskAddr, DiskParams};
use csqp_simkernel::SimDuration;

use crate::kernel::Engine;
use crate::process::{Action, ChannelId, OperatorProc, Page, ResumeInput};

/// Emits `count` pages, each preceded by `cpu` instructions, then closes.
struct MiniProducer {
    site: SiteId,
    out: ChannelId,
    count: u64,
    cpu: u64,
    emitted: u64,
}

impl OperatorProc for MiniProducer {
    fn resume(&mut self, _input: ResumeInput) -> Vec<Action> {
        if self.emitted == self.count {
            return vec![Action::Close { channel: self.out }, Action::Done];
        }
        self.emitted += 1;
        vec![
            Action::Cpu {
                site: self.site,
                instr: self.cpu,
            },
            Action::Emit {
                channel: self.out,
                page: Page { tuples: 40 },
            },
        ]
    }
    fn label(&self) -> String {
        "mini-producer".into()
    }
}

/// Consumes everything; acts as the display.
struct MiniConsumer {
    input: ChannelId,
    site: SiteId,
    cpu: u64,
    seen: std::rc::Rc<std::cell::Cell<u64>>,
    started: bool,
}

impl OperatorProc for MiniConsumer {
    fn resume(&mut self, input: ResumeInput) -> Vec<Action> {
        if !self.started {
            self.started = true;
            return vec![Action::AwaitInput {
                channel: self.input,
            }];
        }
        match input {
            ResumeInput::Page(p) => {
                self.seen.set(self.seen.get() + p.tuples);
                vec![
                    Action::Cpu {
                        site: self.site,
                        instr: self.cpu,
                    },
                    Action::AwaitInput {
                        channel: self.input,
                    },
                ]
            }
            ResumeInput::EndOfStream => vec![Action::Done],
            ResumeInput::None => unreachable!(),
        }
    }
    fn label(&self) -> String {
        "mini-consumer".into()
    }
}

fn engine(sites: usize) -> Engine {
    Engine::new(SystemConfig::default(), &DiskParams::default(), sites)
}

fn pipe(
    from: SiteId,
    to: SiteId,
    pages: u64,
    prod_cpu: u64,
    cons_cpu: u64,
) -> (Engine, std::rc::Rc<std::cell::Cell<u64>>) {
    let mut e = engine(2);
    let ch = e.add_channel(from, to);
    e.add_proc(Box::new(MiniProducer {
        site: from,
        out: ch,
        count: pages,
        cpu: prod_cpu,
        emitted: 0,
    }));
    let seen = std::rc::Rc::new(std::cell::Cell::new(0));
    e.add_display_proc(Box::new(MiniConsumer {
        input: ch,
        site: to,
        cpu: cons_cpu,
        seen: std::rc::Rc::clone(&seen),
        started: false,
    }));
    (e, seen)
}

#[test]
fn local_pipeline_delivers_everything() {
    let (mut e, seen) = pipe(SiteId::CLIENT, SiteId::CLIENT, 100, 1000, 1000);
    let rt = e.run();
    assert_eq!(seen.get(), 4000);
    // 100 pages, producer+consumer CPU on one site: 100 × 2000 instr at
    // 50 MIPS = 4 ms; allow pipeline fill slack.
    let expect = SimDuration::from_micros(4000);
    assert!(rt >= expect, "{rt} >= {expect}");
    assert!(rt < expect * 2, "{rt} < 2x {expect}");
    let wire = e.link_stats();
    assert_eq!(
        wire.data_pages_sent, 0,
        "local channel never touches the wire"
    );
}

#[test]
fn remote_pipeline_ships_pages_and_overlaps() {
    let (mut e, seen) = pipe(SiteId::CLIENT, SiteId::server(1), 100, 50_000, 0);
    let rt = e.run();
    assert_eq!(seen.get(), 4000);
    let wire = e.link_stats();
    assert_eq!(wire.data_pages_sent, 100);
    assert_eq!(wire.bytes_sent, 100 * 4096);
    // Producer CPU: 100 × 1ms = 100 ms. Wire: 100 × 0.328 ms = 33 ms.
    // Pipelined, the run should take ~producer time + small tail, not
    // the 233 ms a serial schedule would need.
    // (Send/recv CPU shares the producer/consumer CPUs: +64 ms sender.)
    let secs = rt.as_secs_f64();
    assert!(secs > 0.16, "lower bound: {secs}");
    assert!(secs < 0.21, "pipelining should hide the wire: {secs}");
}

#[test]
fn bounded_buffer_throttles_producer() {
    // Slow consumer: the producer cannot run ahead more than the channel
    // capacity, so the run time tracks the consumer, not the producer.
    let (mut e, seen) = pipe(SiteId::CLIENT, SiteId::CLIENT, 50, 0, 500_000);
    let rt = e.run();
    assert_eq!(seen.get(), 2000);
    // Consumer: 50 × 10 ms = 500 ms dominates.
    let secs = rt.as_secs_f64();
    assert!((0.5..0.52).contains(&secs), "consumer-bound: {secs}");
}

#[test]
fn empty_stream_closes_cleanly() {
    let (mut e, seen) = pipe(SiteId::CLIENT, SiteId::server(1), 0, 0, 0);
    let rt = e.run();
    assert_eq!(seen.get(), 0);
    assert!(rt.as_nanos() < 1_000_000);
}

/// A process that reads its own disk then finishes; checks DiskRead
/// integration and that `run` panics on a missing display.
struct DiskToucher {
    site: SiteId,
    reads: u64,
    done: u64,
}

impl OperatorProc for DiskToucher {
    fn resume(&mut self, _input: ResumeInput) -> Vec<Action> {
        if self.done == self.reads {
            return vec![Action::Done];
        }
        let addr = DiskAddr(self.done);
        self.done += 1;
        vec![Action::DiskRead {
            site: self.site,
            addr,
        }]
    }
    fn label(&self) -> String {
        "disk-toucher".into()
    }
}

#[test]
fn disk_reads_accumulate_stats() {
    let mut e = engine(1);
    e.add_display_proc(Box::new(DiskToucher {
        site: SiteId::CLIENT,
        reads: 12,
        done: 0,
    }));
    let rt = e.run();
    let stats = e.disk_stats(SiteId::CLIENT);
    assert_eq!(stats.reads, 12);
    assert!(rt.as_secs_f64() > 0.01, "12 sequential reads: {rt}");
}

#[test]
#[should_panic(expected = "no display process registered")]
fn run_requires_display() {
    let mut e = engine(1);
    e.add_proc(Box::new(DiskToucher {
        site: SiteId::CLIENT,
        reads: 1,
        done: 0,
    }));
    e.run();
}

/// Async writes + drain.
struct WriterThenDrain {
    site: SiteId,
    wrote: bool,
}

impl OperatorProc for WriterThenDrain {
    fn resume(&mut self, _input: ResumeInput) -> Vec<Action> {
        if self.wrote {
            return vec![Action::Done];
        }
        self.wrote = true;
        let mut acts: Vec<Action> = (0..8)
            .map(|i| Action::DiskWriteAsync {
                site: self.site,
                addr: DiskAddr(i * 100),
            })
            .collect();
        acts.push(Action::DrainWrites);
        acts
    }
    fn label(&self) -> String {
        "writer".into()
    }
}

#[test]
fn drain_waits_for_async_writes() {
    let mut e = engine(1);
    e.add_display_proc(Box::new(WriterThenDrain {
        site: SiteId::CLIENT,
        wrote: false,
    }));
    let rt = e.run();
    let stats = e.disk_stats(SiteId::CLIENT);
    assert_eq!(stats.writes, 8);
    // All writes must have completed before Done: run time covers the
    // full (scattered) write burst, ~8 × 9-12 ms.
    assert!(rt.as_secs_f64() > 0.05, "{rt}");
}

/// Deadlock diagnostics: a consumer awaiting a channel nobody closes.
struct Starver {
    input: ChannelId,
    started: bool,
}

impl OperatorProc for Starver {
    fn resume(&mut self, _input: ResumeInput) -> Vec<Action> {
        if !self.started {
            self.started = true;
            return vec![Action::AwaitInput {
                channel: self.input,
            }];
        }
        vec![Action::Done]
    }
    fn label(&self) -> String {
        "starver".into()
    }
}

#[test]
#[should_panic(expected = "deadlocked")]
fn deadlock_is_reported() {
    let mut e = engine(1);
    let ch = e.add_channel(SiteId::CLIENT, SiteId::CLIENT);
    e.add_display_proc(Box::new(Starver {
        input: ch,
        started: false,
    }));
    e.run();
}

#[test]
fn sleep_advances_virtual_time() {
    struct Sleeper {
        slept: bool,
    }
    impl OperatorProc for Sleeper {
        fn resume(&mut self, _input: ResumeInput) -> Vec<Action> {
            if self.slept {
                return vec![Action::Done];
            }
            self.slept = true;
            vec![Action::Sleep {
                dur: SimDuration::from_millis(250),
            }]
        }
        fn label(&self) -> String {
            "sleeper".into()
        }
    }
    let mut e = engine(1);
    e.add_display_proc(Box::new(Sleeper { slept: false }));
    let rt = e.run();
    assert_eq!(rt, SimDuration::from_millis(250));
}
