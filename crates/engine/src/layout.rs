//! On-disk layout of base relations, client cache copies, and join temp
//! space.
//!
//! Each site has one disk; base relations live in contiguous extents on
//! their primary server's disk, the client's cached prefixes live in
//! contiguous extents on the client disk ("Data that is cached at the
//! client is assumed to be initially resident on the client's local
//! disk", §4.1), and each join gets per-partition temp extents on its own
//! site's disk ("If a disk is to be used both as a cache and for
//! temporary storage, separate regions of the disk are allocated for each
//! of these purposes", §3.2.1).

use std::collections::HashMap;

use csqp_catalog::{Catalog, QuerySpec, RelId, SiteId, SystemConfig};
use csqp_disk::{Extent, ExtentAllocator};

/// Layout state for all sites of one execution.
#[derive(Debug)]
pub struct Layout {
    allocators: Vec<ExtentAllocator>,
    rel_extents: HashMap<RelId, Extent>,
    cache_extents: HashMap<RelId, Extent>,
}

impl Layout {
    /// Allocate base-relation and cache extents for `query` under the
    /// given placement. `capacity` is the per-disk capacity in pages.
    pub fn new(
        query: &QuerySpec,
        catalog: &Catalog,
        config: &SystemConfig,
        capacity: u64,
    ) -> Layout {
        let num_sites = catalog.num_servers() as usize + 1;
        let mut allocators: Vec<ExtentAllocator> = (0..num_sites)
            .map(|_| ExtentAllocator::new(capacity))
            .collect();
        let mut rel_extents = HashMap::new();
        let mut cache_extents = HashMap::new();
        for rel in &query.relations {
            let pages = rel.pages(config.page_size);
            let server = catalog.primary_site(rel.id);
            rel_extents.insert(rel.id, allocators[server.index()].alloc(pages));
            let cached = catalog.cached_pages(rel.id, pages);
            if cached > 0 {
                cache_extents.insert(rel.id, allocators[SiteId::CLIENT.index()].alloc(cached));
            }
        }
        Layout {
            allocators,
            rel_extents,
            cache_extents,
        }
    }

    /// Extent of a relation's primary copy.
    pub fn relation(&self, rel: RelId) -> Extent {
        self.rel_extents[&rel]
    }

    /// Extent of the client-cached prefix, if any pages are cached.
    pub fn cache(&self, rel: RelId) -> Option<Extent> {
        self.cache_extents.get(&rel).copied()
    }

    /// Allocate temp space (join spill partitions) on a site's disk.
    pub fn alloc_temp(&mut self, site: SiteId, pages: u64) -> Extent {
        self.allocators[site.index()].alloc(pages)
    }

    /// Unallocated pages on a site's disk.
    pub fn free_pages(&self, site: SiteId) -> u64 {
        self.allocators[site.index()].free_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{JoinEdge, Relation};

    fn setup() -> (QuerySpec, Catalog, SystemConfig) {
        let rels = (0..2)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = vec![JoinEdge {
            a: RelId(0),
            b: RelId(1),
            selectivity: 1e-4,
        }];
        let q = QuerySpec::new(rels, edges);
        let mut cat = Catalog::new(2);
        cat.place(RelId(0), SiteId::server(1));
        cat.place(RelId(1), SiteId::server(2));
        cat.set_cached_fraction(RelId(0), 0.25);
        (q, cat, SystemConfig::default())
    }

    #[test]
    fn relations_on_their_servers_cache_on_client() {
        let (q, cat, cfg) = setup();
        let mut layout = Layout::new(&q, &cat, &cfg, 48_000);
        assert_eq!(layout.relation(RelId(0)).pages, 250);
        assert_eq!(layout.relation(RelId(1)).pages, 250);
        // 25% of 250 pages cached.
        assert_eq!(layout.cache(RelId(0)).unwrap().pages, 62);
        assert!(layout.cache(RelId(1)).is_none());
        // Temp goes on the requested site.
        let before = layout.free_pages(SiteId::CLIENT);
        let t = layout.alloc_temp(SiteId::CLIENT, 100);
        assert_eq!(t.pages, 100);
        assert_eq!(layout.free_pages(SiteId::CLIENT), before - 100);
    }

    #[test]
    fn extents_on_same_disk_are_disjoint() {
        let (q, mut cat, cfg) = setup();
        cat.place(RelId(1), SiteId::server(1)); // co-locate
        let layout = Layout::new(&q, &cat, &cfg, 48_000);
        let a = layout.relation(RelId(0));
        let b = layout.relation(RelId(1));
        assert!(a.end() <= b.start || b.end() <= a.start);
    }
}
