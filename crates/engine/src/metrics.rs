//! Metrics collected from one simulated query execution.

use csqp_catalog::SiteId;
use csqp_disk::disk::DiskStats;
use csqp_net::LinkStats;
use csqp_simkernel::SimDuration;

use crate::kernel::ProcReport;

/// Everything measured during one run.
#[derive(Debug, Clone)]
pub struct ExecutionMetrics {
    /// Elapsed time from query initiation until the last tuple is
    /// displayed at the client (§3.1.2).
    pub response_time: SimDuration,
    /// Data pages sent over the network — the paper's communication
    /// metric (§4.1).
    pub pages_sent: u64,
    /// Small control messages (fault requests).
    pub control_msgs: u64,
    /// Total bytes on the wire.
    pub bytes_sent: u64,
    /// Wire utilization over the run.
    pub link_utilization: f64,
    /// Per-site disk statistics (index 0 = client).
    pub disk: Vec<DiskStats>,
    /// Per-site CPU busy time (index 0 = client).
    pub cpu_busy: Vec<SimDuration>,
    /// Tuples displayed at the client.
    pub result_tuples: u64,
    /// Kernel events dispatched during the run — the denominator of the
    /// simulator-throughput figure `csqp-bench --sim` reports.
    pub events_handled: u64,
    /// Per-operator wait breakdowns (where each operator's time went).
    pub operators: Vec<ProcReport>,
}

impl ExecutionMetrics {
    /// Response time in seconds.
    pub fn response_secs(&self) -> f64 {
        self.response_time.as_secs_f64()
    }

    /// Wire-traffic counters as the typed [`LinkStats`] record — the
    /// accounting surface report writers (figure output, the serving
    /// layer's STATS frame) consume instead of reaching into the link.
    pub fn wire(&self) -> LinkStats {
        LinkStats {
            data_pages_sent: self.pages_sent,
            control_msgs_sent: self.control_msgs,
            bytes_sent: self.bytes_sent,
        }
    }

    /// Disk utilization of a site over the run.
    pub fn disk_utilization(&self, site: SiteId) -> f64 {
        let busy = self.disk[site.index()].busy.as_secs_f64();
        let total = self.response_time.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            busy / total
        }
    }
}

/// Outcome of one query in a multi-query run.
#[derive(Debug, Clone, Copy)]
pub struct QueryOutcome {
    /// Initiation to last displayed tuple (queries start together).
    pub response_time: SimDuration,
    /// Tuples displayed.
    pub result_tuples: u64,
}

/// Metrics of a concurrent multi-query execution.
#[derive(Debug, Clone)]
pub struct MultiQueryMetrics {
    /// Per-query outcomes, in submission order.
    pub per_query: Vec<QueryOutcome>,
    /// Time until the last query finished.
    pub makespan: SimDuration,
    /// Data pages on the wire, all queries combined.
    pub pages_sent: u64,
    /// Control messages, all queries combined.
    pub control_msgs: u64,
    /// Bytes on the wire.
    pub bytes_sent: u64,
    /// Wire utilization over the makespan.
    pub link_utilization: f64,
    /// Per-site disk statistics.
    pub disk: Vec<DiskStats>,
    /// Per-site CPU busy time.
    pub cpu_busy: Vec<SimDuration>,
    /// Kernel events dispatched during the run.
    pub events_handled: u64,
    /// Per-operator wait breakdowns, all queries combined.
    pub operators: Vec<ProcReport>,
}

impl MultiQueryMetrics {
    /// Wire-traffic counters as the typed [`LinkStats`] record.
    pub fn wire(&self) -> LinkStats {
        LinkStats {
            data_pages_sent: self.pages_sent,
            control_msgs_sent: self.control_msgs,
            bytes_sent: self.bytes_sent,
        }
    }
}
