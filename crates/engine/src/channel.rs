//! Inter-operator channels with bounded buffering.
//!
//! A *local* channel is the demand-driven iterator edge of the Volcano
//! model: capacity one page, so the producer runs at most one page ahead.
//! A *remote* channel stands for the paper's pair of network operators:
//! its capacity covers one page in the send pipeline plus one buffered at
//! the receiver ("each producer has a process that tries to stay one page
//! ahead of its consumer so that requests can be satisfied immediately").

use std::collections::VecDeque;

use csqp_catalog::SiteId;

use crate::process::{Page, ProcId};

/// Buffer capacity of a local (same-site) channel, in pages.
pub const LOCAL_CAP: usize = 1;
/// Window of a remote channel: pages buffered plus in flight.
pub const REMOTE_CAP: usize = 2;

/// A channel between a producer and a consumer process.
#[derive(Debug)]
pub struct Channel {
    /// Pages ready at the consumer side.
    pub queue: VecDeque<Page>,
    /// Buffered + in-flight limit.
    pub capacity: usize,
    /// Producer has closed the stream.
    pub closed: bool,
    /// Pages currently in the remote send pipeline.
    pub in_flight: usize,
    /// `Some((from, to))` for a remote channel.
    pub remote: Option<(SiteId, SiteId)>,
    /// Consumer process parked on `AwaitInput`.
    pub waiting_consumer: Option<ProcId>,
    /// Producer process parked on a full `Emit`, with its pending page.
    pub blocked_producer: Option<(ProcId, Page)>,
}

impl Channel {
    /// A channel between `from` and `to`; remote when the sites differ.
    pub fn new(from: SiteId, to: SiteId) -> Channel {
        let remote = (from != to).then_some((from, to));
        Channel {
            queue: VecDeque::new(),
            capacity: if remote.is_some() {
                REMOTE_CAP
            } else {
                LOCAL_CAP
            },
            closed: false,
            in_flight: 0,
            remote,
            waiting_consumer: None,
            blocked_producer: None,
        }
    }

    /// Room for another emit?
    pub fn has_space(&self) -> bool {
        self.queue.len() + self.in_flight < self.capacity
    }

    /// End-of-stream is visible to the consumer only once everything in
    /// the pipeline has drained.
    pub fn at_eos(&self) -> bool {
        self.closed && self.queue.is_empty() && self.in_flight == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_vs_remote_capacity() {
        let l = Channel::new(SiteId::CLIENT, SiteId::CLIENT);
        assert_eq!(l.capacity, LOCAL_CAP);
        assert!(l.remote.is_none());
        let r = Channel::new(SiteId::server(1), SiteId::CLIENT);
        assert_eq!(r.capacity, REMOTE_CAP);
        assert_eq!(r.remote, Some((SiteId::server(1), SiteId::CLIENT)));
    }

    #[test]
    fn eos_waits_for_in_flight() {
        let mut c = Channel::new(SiteId::server(1), SiteId::CLIENT);
        c.closed = true;
        c.in_flight = 1;
        assert!(!c.at_eos());
        c.in_flight = 0;
        assert!(c.at_eos());
        c.queue.push_back(Page { tuples: 1 });
        assert!(!c.at_eos());
    }

    #[test]
    fn space_accounting_includes_in_flight() {
        let mut c = Channel::new(SiteId::server(1), SiteId::CLIENT);
        assert!(c.has_space());
        c.in_flight = 1;
        assert!(c.has_space());
        c.queue.push_back(Page { tuples: 1 });
        assert!(!c.has_space());
    }
}
