//! Assembling an executable process graph from a bound plan.
//!
//! Walks the plan bottom-up, creating one process per operator and one
//! channel per plan edge (remote channels — the paper's network operator
//! pairs — wherever producer and consumer sites differ), allocating disk
//! extents for base relations, cached prefixes and join spill partitions,
//! and attaching the external-load generators. Then runs the kernel and
//! collects [`ExecutionMetrics`].

use std::cell::Cell;
use std::rc::Rc;

use csqp_catalog::{
    hybrid_hash_plan, join_memory, Catalog, Estimator, QuerySpec, SiteId, SystemConfig,
};
use csqp_core::{BoundPlan, LogicalOp, NodeId};
use csqp_disk::DiskParams;
use csqp_net::CONTROL_MSG_BYTES;
use csqp_simkernel::rng::SimRng;

use crate::kernel::Engine;
use crate::layout::Layout;
use crate::metrics::{ExecutionMetrics, MultiQueryMetrics, QueryOutcome};
use crate::ops::display::DisplayProc;
use crate::ops::join::{JoinCosts, JoinProc};
use crate::ops::loadgen::LoadGenProc;
use crate::ops::scan::{ScanCosts, ScanProc};
use crate::ops::select::SelectProc;
use crate::process::ChannelId;

/// External random-read load on one server's disk (§3.2.2).
#[derive(Debug, Clone, Copy)]
pub struct ServerLoad {
    /// The loaded site.
    pub site: SiteId,
    /// Request rate in reads per second.
    pub rate_per_sec: f64,
}

/// Builds and runs one query execution.
///
/// ```
/// use csqp_catalog::{BufAlloc, Catalog, JoinEdge, QuerySpec, RelId, Relation, SiteId, SystemConfig};
/// use csqp_core::{bind, Annotation, BindContext, JoinTree};
/// use csqp_engine::ExecutionBuilder;
///
/// let query = QuerySpec::new(
///     vec![Relation::benchmark(RelId(0), "A"), Relation::benchmark(RelId(1), "B")],
///     vec![JoinEdge { a: RelId(0), b: RelId(1), selectivity: 1e-4 }],
/// );
/// let mut catalog = Catalog::new(1);
/// catalog.place(RelId(0), SiteId::server(1));
/// catalog.place(RelId(1), SiteId::server(1));
/// let mut sys = SystemConfig::default();
/// sys.buf_alloc = BufAlloc::Max;
///
/// let plan = JoinTree::left_deep(&[RelId(0), RelId(1)])
///     .into_plan(&query, Annotation::InnerRel, Annotation::PrimaryCopy);
/// let bound = bind(&plan, BindContext { catalog: &catalog, query_site: SiteId::CLIENT })
///     .unwrap();
/// let metrics = ExecutionBuilder::new(&query, &catalog, &sys).execute(&bound);
/// assert_eq!(metrics.pages_sent, 250);
/// assert_eq!(metrics.result_tuples, 10_000);
/// ```
pub struct ExecutionBuilder<'a> {
    query: &'a QuerySpec,
    catalog: &'a Catalog,
    config: &'a SystemConfig,
    disk_params: DiskParams,
    loads: Vec<ServerLoad>,
    seed: u64,
}

impl<'a> ExecutionBuilder<'a> {
    /// A builder with default disk parameters, no external load, seed 0.
    pub fn new(
        query: &'a QuerySpec,
        catalog: &'a Catalog,
        config: &'a SystemConfig,
    ) -> ExecutionBuilder<'a> {
        ExecutionBuilder {
            query,
            catalog,
            config,
            disk_params: DiskParams::default(),
            loads: Vec::new(),
            seed: 0,
        }
    }

    /// Override the disk model parameters.
    pub fn with_disk_params(mut self, params: DiskParams) -> Self {
        self.disk_params = params;
        self
    }

    /// Add external load on a server disk.
    pub fn with_load(mut self, site: SiteId, rate_per_sec: f64) -> Self {
        if rate_per_sec > 0.0 {
            self.loads.push(ServerLoad { site, rate_per_sec });
        }
        self
    }

    /// Seed for the load generators (the query itself is deterministic).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Simulate a navigational-access session against one relation (§7
    /// future work): `steps` page touches at the client with the given
    /// reference locality. Returns full metrics; `response_time` is the
    /// traversal's elapsed time.
    // Invariant panic: the layout allocates a cache extent for every
    // relation the catalog reports cached pages for.
    #[allow(clippy::expect_used)]
    pub fn navigate(
        &self,
        rel: csqp_catalog::RelId,
        steps: u64,
        locality: f64,
    ) -> ExecutionMetrics {
        let num_sites = self.catalog.num_servers() as usize + 1;
        let capacity = self.disk_params.geometry.capacity_pages();
        let layout = Layout::new(self.query, self.catalog, self.config, capacity);
        let mut engine = Engine::new(self.config.clone(), &self.disk_params, num_sites);
        let cfg = self.config;
        let r = &self.query.relations[rel.index()];
        let pages = r.pages(cfg.page_size);
        let server = self.catalog.primary_site(rel);
        let cached = self.catalog.cached_pages(rel, pages);
        let costs = crate::ops::scan::ScanCosts {
            disk_inst: cfg.disk_inst,
            control_msg_instr: cfg.msg_cpu_instr(CONTROL_MSG_BYTES),
            page_msg_instr: cfg.msg_cpu_instr(cfg.page_size as u64),
            control_bytes: CONTROL_MSG_BYTES,
            page_bytes: cfg.page_size as u64,
        };
        let mut rng = SimRng::seed_from_u64(self.seed);
        engine.add_display_proc(Box::new(crate::ops::navigate::NavigatorProc::new(
            SiteId::CLIENT,
            server,
            layout.relation(rel),
            (cached > 0).then(|| layout.cache(rel).expect("cache extent")),
            cached,
            pages,
            steps,
            locality,
            costs,
            rng.derive(99),
        )));
        for load in &self.loads {
            engine.add_proc(Box::new(LoadGenProc::new(
                load.site,
                load.rate_per_sec,
                capacity,
                rng.derive(load.site.0 as u64 + 1),
            )));
        }
        let response_time = engine.run();
        let wire = engine.link_stats();
        let operators = engine.proc_reports();
        ExecutionMetrics {
            response_time,
            pages_sent: wire.data_pages_sent,
            control_msgs: wire.control_msgs_sent,
            bytes_sent: wire.bytes_sent,
            link_utilization: engine.link_utilization(),
            disk: (0..num_sites)
                .map(|s| engine.disk_stats(SiteId(s as u32)))
                .collect(),
            cpu_busy: (0..num_sites)
                .map(|s| engine.cpu_busy(SiteId(s as u32)))
                .collect(),
            result_tuples: 0,
            events_handled: engine.events_handled(),
            operators,
        }
    }

    /// Simulate the execution of `bound` and return its metrics.
    pub fn execute(&self, bound: &BoundPlan) -> ExecutionMetrics {
        let multi = self.execute_many(std::slice::from_ref(bound));
        let q = &multi.per_query[0];
        ExecutionMetrics {
            response_time: q.response_time,
            pages_sent: multi.pages_sent,
            control_msgs: multi.control_msgs,
            bytes_sent: multi.bytes_sent,
            link_utilization: multi.link_utilization,
            disk: multi.disk,
            cpu_busy: multi.cpu_busy,
            result_tuples: q.result_tuples,
            events_handled: multi.events_handled,
            operators: multi.operators,
        }
    }

    /// Simulate several queries *concurrently* over the same database —
    /// the multi-query workloads the paper lists as future work (§7).
    /// All plans share the relations, caches, disks, CPUs and the wire;
    /// each gets its own operator processes and join temp space.
    // Invariant panics: every plan is structurally validated at the top
    // of this function, so the display root has its input; and the engine
    // records a finish time for every display process before returning.
    #[allow(clippy::expect_used)]
    pub fn execute_many(&self, bounds: &[BoundPlan]) -> MultiQueryMetrics {
        assert!(!bounds.is_empty(), "need at least one query");
        for b in bounds {
            if let Err(d) = b.plan.validate_structure(self.query) {
                panic!("refusing to execute a structurally invalid plan: {d}");
            }
            // Plan-bind boundary hook: in debug builds, run the full
            // static analyzer (structure, well-formedness, cost-model
            // invariants) before committing simulator time to the plan.
            #[cfg(debug_assertions)]
            {
                let client = b.site(b.plan.root());
                let report =
                    csqp_verify::Checker::new(self.query, self.catalog, self.config, client)
                        .check(&b.plan);
                debug_assert!(
                    report.is_clean(),
                    "plan failed static verification at the bind boundary:\n{report}"
                );
            }
        }
        let num_sites = self.catalog.num_servers() as usize + 1;
        let capacity = self.disk_params.geometry.capacity_pages();
        let mut layout = Layout::new(self.query, self.catalog, self.config, capacity);
        let mut engine = Engine::new(self.config.clone(), &self.disk_params, num_sites);
        let est = Estimator::new(self.query, self.config);

        let mut counters = Vec::with_capacity(bounds.len());
        for bound in bounds {
            let root = bound.plan.root();
            let child = bound.plan.node(root).children[0].expect("display arity");
            let client = bound.site(root);
            let into_display =
                self.build_node(&mut engine, &mut layout, &est, bound, child, client);
            let tuples_seen = Rc::new(Cell::new(0u64));
            engine.add_display_proc(Box::new(DisplayProc::new(
                client,
                into_display,
                self.config.display_inst,
                Rc::clone(&tuples_seen),
            )));
            counters.push(tuples_seen);
        }

        let mut rng = SimRng::seed_from_u64(self.seed);
        for load in &self.loads {
            engine.add_proc(Box::new(LoadGenProc::new(
                load.site,
                load.rate_per_sec,
                capacity,
                rng.derive(load.site.0 as u64 + 1),
            )));
        }

        let makespan = engine.run();
        let finish = engine.display_finish_times();
        let wire = engine.link_stats();
        let operators = engine.proc_reports();
        MultiQueryMetrics {
            per_query: counters
                .iter()
                .zip(&finish)
                .map(|(seen, t)| QueryOutcome {
                    response_time: t.expect("run completed"),
                    result_tuples: seen.get(),
                })
                .collect(),
            makespan,
            pages_sent: wire.data_pages_sent,
            control_msgs: wire.control_msgs_sent,
            bytes_sent: wire.bytes_sent,
            link_utilization: engine.link_utilization(),
            disk: (0..num_sites)
                .map(|s| engine.disk_stats(SiteId(s as u32)))
                .collect(),
            cpu_busy: (0..num_sites)
                .map(|s| engine.cpu_busy(SiteId(s as u32)))
                .collect(),
            events_handled: engine.events_handled(),
            operators,
        }
    }

    /// Output size of a node: scans emit the raw relation, everything
    /// else the estimator's size for its relation set (matches the cost
    /// model's convention).
    // Invariant panic: only structurally validated plans reach here, so
    // every child slot demanded by an operator's arity is occupied.
    #[allow(clippy::expect_used)]
    fn output_stats(&self, est: &Estimator<'_>, bound: &BoundPlan, id: NodeId) -> (u64, u64) {
        match bound.plan.node(id).op {
            LogicalOp::Scan { rel } => {
                let r = &self.query.relations[rel.index()];
                (r.tuples, r.pages(self.config.page_size))
            }
            LogicalOp::Aggregate { groups } => {
                let child = bound.plan.node(id).children[0].expect("arity");
                let (in_tuples, _) = self.output_stats(est, bound, child);
                let t = groups.min(in_tuples);
                let per_page = self.tuples_per_page();
                (t, t.div_ceil(per_page))
            }
            _ => {
                let rels = bound.plan.rel_set(id);
                (est.tuples_int(rels), est.pages_int(rels))
            }
        }
    }

    // Modeling assumption, as in `Estimator::tuple_bytes`: the benchmark
    // schema is uniform-width.
    #[allow(clippy::expect_used)]
    fn tuples_per_page(&self) -> u64 {
        let width = self
            .query
            .uniform_tuple_bytes()
            .expect("benchmark queries have uniform tuple width");
        (self.config.page_size / width) as u64
    }

    /// Create the process for `id` and the channel carrying its output
    /// towards `parent_site`; returns that channel.
    // Invariant panics: plans are structurally validated before building
    // (arity slots occupied), the schema is uniform-width, and the layout
    // has an extent wherever the catalog reports cached pages.
    #[allow(clippy::expect_used)]
    fn build_node(
        &self,
        engine: &mut Engine,
        layout: &mut Layout,
        est: &Estimator<'_>,
        bound: &BoundPlan,
        id: NodeId,
        parent_site: SiteId,
    ) -> ChannelId {
        let cfg = self.config;
        let node = bound.plan.node(id).clone();
        let site = bound.site(id);
        let out = engine.add_channel(site, parent_site);
        match node.op {
            LogicalOp::Scan { rel } => {
                let r = &self.query.relations[rel.index()];
                let pages = r.pages(cfg.page_size);
                let server = self.catalog.primary_site(rel);
                let cached = if site == server {
                    0
                } else {
                    self.catalog.cached_pages(rel, pages)
                };
                let costs = ScanCosts {
                    disk_inst: cfg.disk_inst,
                    control_msg_instr: cfg.msg_cpu_instr(CONTROL_MSG_BYTES),
                    page_msg_instr: cfg.msg_cpu_instr(cfg.page_size as u64),
                    control_bytes: CONTROL_MSG_BYTES,
                    page_bytes: cfg.page_size as u64,
                };
                let cache_extent = (cached > 0).then(|| {
                    layout
                        .cache(rel)
                        .expect("catalog reported cached pages without an extent")
                });
                engine.add_proc(Box::new(ScanProc::new(
                    rel,
                    site,
                    server,
                    layout.relation(rel),
                    cache_extent,
                    cached,
                    pages,
                    r.tuples,
                    r.tuples_per_page(cfg.page_size),
                    out,
                    costs,
                )));
            }
            LogicalOp::Select { rel } => {
                let child = node.children[0].expect("arity");
                let input = self.build_node(engine, layout, est, bound, child, site);
                engine.add_proc(Box::new(SelectProc::new(
                    site,
                    input,
                    out,
                    self.query.selection[rel.index()],
                    self.tuples_per_page(),
                    cfg.compare_inst,
                    cfg.move_tuple_instr(self.query.uniform_tuple_bytes().expect("uniform width")),
                    format!("select {rel}@{site}"),
                )));
            }
            LogicalOp::Join => {
                let ci = node.children[0].expect("arity");
                let co = node.children[1].expect("arity");
                let inner = self.build_node(engine, layout, est, bound, ci, site);
                let outer = self.build_node(engine, layout, est, bound, co, site);

                let (inner_tuples, inner_pages) = self.output_stats(est, bound, ci);
                let (outer_tuples, outer_pages) = self.output_stats(est, bound, co);
                let _ = inner_tuples;
                let (result_tuples, _) = {
                    let rels = bound.plan.rel_set(id);
                    (est.tuples_int(rels), ())
                };
                let out_ratio = if outer_tuples == 0 {
                    0.0
                } else {
                    result_tuples as f64 / outer_tuples as f64
                };

                let mem = join_memory(cfg, inner_pages);
                let hp = hybrid_hash_plan(inner_pages.max(1), mem, cfg.fudge);
                let (resident_frac, inner_ext, outer_ext) = if hp.spill_partitions == 0 {
                    (1.0, Vec::new(), Vec::new())
                } else {
                    let frac = hp.resident_inner_pages as f64 / inner_pages.max(1) as f64;
                    let b = hp.spill_partitions;
                    let inner_part = hp.partition_pages * 2 + 4;
                    let outer_spill = ((outer_pages as f64) * (1.0 - frac)).ceil() as u64;
                    let outer_part = outer_spill.div_ceil(b) * 2 + 4;
                    let inner_ext = (0..b)
                        .map(|_| layout.alloc_temp(site, inner_part))
                        .collect();
                    let outer_ext = (0..b)
                        .map(|_| layout.alloc_temp(site, outer_part))
                        .collect();
                    (frac, inner_ext, outer_ext)
                };

                let costs = JoinCosts {
                    hash_inst: cfg.hash_inst,
                    compare_inst: cfg.compare_inst,
                    move_tuple_instr: cfg
                        .move_tuple_instr(self.query.uniform_tuple_bytes().expect("uniform")),
                    disk_inst: cfg.disk_inst,
                    tuples_per_page: self.tuples_per_page(),
                };
                engine.add_proc(Box::new(JoinProc::new(
                    site,
                    inner,
                    outer,
                    out,
                    costs,
                    resident_frac,
                    out_ratio,
                    inner_ext,
                    outer_ext,
                    format!("join@{site}"),
                )));
            }
            LogicalOp::Aggregate { groups } => {
                let child = node.children[0].expect("arity");
                let input = self.build_node(engine, layout, est, bound, child, site);
                engine.add_proc(Box::new(crate::ops::aggregate::AggregateProc::new(
                    site,
                    input,
                    out,
                    groups,
                    self.tuples_per_page(),
                    cfg.hash_inst,
                    cfg.move_tuple_instr(self.query.uniform_tuple_bytes().expect("uniform width")),
                )));
            }
            LogicalOp::Display => unreachable!("display handled by execute()"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_catalog::{BufAlloc, JoinEdge, RelId, Relation};
    use csqp_core::{bind, Annotation, BindContext, JoinTree};

    fn chain(n: u32) -> QuerySpec {
        let rels = (0..n)
            .map(|i| Relation::benchmark(RelId(i), format!("R{i}")))
            .collect();
        let edges = (0..n - 1)
            .map(|i| JoinEdge {
                a: RelId(i),
                b: RelId(i + 1),
                selectivity: 1e-4,
            })
            .collect();
        QuerySpec::new(rels, edges)
    }

    fn one_server(cache: f64) -> Catalog {
        let mut c = Catalog::new(1);
        c.place(RelId(0), SiteId::server(1));
        c.place(RelId(1), SiteId::server(1));
        if cache > 0.0 {
            c.set_cached_fraction(RelId(0), cache);
            c.set_cached_fraction(RelId(1), cache);
        }
        c
    }

    fn bound(q: &QuerySpec, cat: &Catalog, jann: Annotation, sann: Annotation) -> BoundPlan {
        let plan = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(q, jann, sann);
        bind(
            &plan,
            BindContext {
                catalog: cat,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap()
    }

    #[test]
    fn qs_two_way_ships_result_only() {
        let q = chain(2);
        let cat = one_server(0.0);
        let mut cfg = SystemConfig::default();
        cfg.buf_alloc = BufAlloc::Max;
        let b = bound(&q, &cat, Annotation::InnerRel, Annotation::PrimaryCopy);
        let m = ExecutionBuilder::new(&q, &cat, &cfg).execute(&b);
        assert_eq!(m.pages_sent, 250, "QS ships exactly the result");
        assert_eq!(m.result_tuples, 10_000);
        let rt = m.response_secs();
        assert!((1.0..6.0).contains(&rt), "QS max-alloc response time {rt}");
        // Client disk untouched.
        assert_eq!(m.disk[0].reads + m.disk[0].writes, 0);
        // Server read both relations sequentially.
        assert_eq!(m.disk[1].reads, 500);
    }

    #[test]
    fn ds_two_way_faults_both_relations() {
        let q = chain(2);
        let cat = one_server(0.0);
        let mut cfg = SystemConfig::default();
        cfg.buf_alloc = BufAlloc::Max;
        let b = bound(&q, &cat, Annotation::Consumer, Annotation::Client);
        let m = ExecutionBuilder::new(&q, &cat, &cfg).execute(&b);
        assert_eq!(m.pages_sent, 500, "DS faults in both relations");
        assert_eq!(m.control_msgs, 500, "one fault request per page");
        assert_eq!(m.result_tuples, 10_000);
        // No result shipping: join and display are both at the client.
        assert_eq!(m.disk[1].reads, 500);
    }

    #[test]
    fn ds_fully_cached_ships_nothing() {
        let q = chain(2);
        let cat = one_server(1.0);
        let mut cfg = SystemConfig::default();
        cfg.buf_alloc = BufAlloc::Max;
        let b = bound(&q, &cat, Annotation::Consumer, Annotation::Client);
        let m = ExecutionBuilder::new(&q, &cat, &cfg).execute(&b);
        assert_eq!(m.pages_sent, 0);
        assert_eq!(m.disk[1].reads + m.disk[1].writes, 0, "server disk idle");
        assert_eq!(m.disk[0].reads, 500, "client reads its cache");
        assert_eq!(m.result_tuples, 10_000);
    }

    #[test]
    fn min_alloc_spills_and_slows_qs() {
        let q = chain(2);
        let cat = one_server(0.0);
        let mut max_cfg = SystemConfig::default();
        max_cfg.buf_alloc = BufAlloc::Max;
        let min_cfg = SystemConfig::default();
        let b = bound(&q, &cat, Annotation::InnerRel, Annotation::PrimaryCopy);
        let fast = ExecutionBuilder::new(&q, &cat, &max_cfg).execute(&b);
        let slow = ExecutionBuilder::new(&q, &cat, &min_cfg).execute(&b);
        assert!(
            slow.disk[1].writes > 400,
            "spill writes: {:?}",
            slow.disk[1]
        );
        assert!(
            slow.response_secs() > 1.5 * fast.response_secs(),
            "min {} vs max {}",
            slow.response_secs(),
            fast.response_secs()
        );
        assert_eq!(slow.result_tuples, 10_000);
    }

    #[test]
    fn execution_is_deterministic() {
        let q = chain(2);
        let cat = one_server(0.5);
        let cfg = SystemConfig::default();
        let b = bound(&q, &cat, Annotation::Consumer, Annotation::Client);
        let m1 = ExecutionBuilder::new(&q, &cat, &cfg)
            .with_seed(7)
            .execute(&b);
        let m2 = ExecutionBuilder::new(&q, &cat, &cfg)
            .with_seed(7)
            .execute(&b);
        assert_eq!(m1.response_time, m2.response_time);
        assert_eq!(m1.pages_sent, m2.pages_sent);
    }

    #[test]
    fn server_load_slows_qs_down() {
        let q = chain(2);
        let cat = one_server(0.0);
        let mut cfg = SystemConfig::default();
        cfg.buf_alloc = BufAlloc::Max;
        let b = bound(&q, &cat, Annotation::InnerRel, Annotation::PrimaryCopy);
        let idle = ExecutionBuilder::new(&q, &cat, &cfg).execute(&b);
        let loaded = ExecutionBuilder::new(&q, &cat, &cfg)
            .with_load(SiteId::server(1), 60.0)
            .with_seed(3)
            .execute(&b);
        assert!(
            loaded.response_secs() > 1.5 * idle.response_secs(),
            "load must hurt QS: idle {} loaded {}",
            idle.response_secs(),
            loaded.response_secs()
        );
    }

    #[test]
    fn hybrid_mixed_plan_executes() {
        // Scan R0 at the server, ship to client, join at client with
        // cached R1 — a genuinely hybrid plan.
        let q = chain(2);
        let mut cat = one_server(0.0);
        cat.set_cached_fraction(RelId(1), 1.0);
        let mut cfg = SystemConfig::default();
        cfg.buf_alloc = BufAlloc::Max;
        let mut plan = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(
            &q,
            Annotation::Consumer,
            Annotation::PrimaryCopy,
        );
        let scan_r1 = plan.scan_nodes()[1];
        plan.node_mut(scan_r1).ann = Annotation::Client;
        let b = bind(
            &plan,
            BindContext {
                catalog: &cat,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap();
        let m = ExecutionBuilder::new(&q, &cat, &cfg).execute(&b);
        // R0 shipped pipelined (250 pages), R1 read from client cache.
        assert_eq!(m.pages_sent, 250);
        assert_eq!(m.disk[0].reads, 250);
        assert_eq!(m.result_tuples, 10_000);
    }

    #[test]
    fn select_filters_and_shrinks_result() {
        let q = chain(2).with_selection(RelId(0), 0.1);
        let cat = one_server(0.0);
        let mut cfg = SystemConfig::default();
        cfg.buf_alloc = BufAlloc::Max;
        let b = bound(&q, &cat, Annotation::InnerRel, Annotation::PrimaryCopy);
        let m = ExecutionBuilder::new(&q, &cat, &cfg).execute(&b);
        // Result: 0.1 * 10k = 1k tuples = 25 pages.
        assert_eq!(m.result_tuples, 1_000);
        assert_eq!(m.pages_sent, 25);
    }
}
