//! The simulated query execution engine (§3.2).
//!
//! "Query execution is based on an iterator model, similar to that of
//! Volcano. … When two connected operators are located on different
//! sites, a pair of specialized network operators is inserted between
//! them. … Tuples are shipped across the network a page-at-a-time. In
//! this case, pipelined parallelism can occur, because each producer has a
//! process that tries to stay one page ahead of its consumer."
//!
//! Every physical operator instance is a *process*: a state machine that,
//! when resumed, returns a batch of [`Action`]s (use CPU, read/write a
//! disk page, occupy the network wire, emit a page downstream, await a
//! page upstream, …) which the kernel executes against the simulated
//! resources. Data never materializes — pages carry tuple counts; all
//! Table 2 CPU charges and every single disk/network access are simulated
//! faithfully at page granularity.
//!
//! Architectural notes:
//!
//! * the paper's network operator pairs appear here as *remote channels*:
//!   emitting into one runs the full send pipeline (sender CPU → wire →
//!   receiver CPU) with a one-page-ahead window;
//! * a client-site scan of uncached data faults pages in from the server
//!   with a synchronous per-page RPC — the paper's data-shipping handicap
//!   ("DS faults in base data a page at a time, while QS is able to
//!   overlap some communication and join processing", §4.2.3);
//! * joins are hybrid-hash with *real* (simulated) spill I/O: partition
//!   writes land round-robin across per-partition temp extents on the
//!   join site's disk, so the contention and interference effects of
//!   Figures 3, 4 and 8 are emergent, not assumed;
//! * multi-client server load is an open-arrival process issuing random
//!   reads at a configurable rate against server disks (§3.2.2).

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod build;
pub mod channel;
pub mod kernel;
pub mod layout;
pub mod metrics;
pub mod ops;
pub mod process;

#[cfg(test)]
mod kernel_tests;

pub use build::{ExecutionBuilder, ServerLoad};
pub use csqp_net::LinkStats;
pub use kernel::{Engine, ProcReport, WaitBreakdown};
pub use metrics::{ExecutionMetrics, MultiQueryMetrics, QueryOutcome};
pub use process::{Action, OperatorProc, Page, ResumeInput};
