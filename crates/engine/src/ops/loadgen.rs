//! The external server-disk load generator (§3.2.2).
//!
//! "To simulate additional server load and multiple clients, an extra
//! process issuing random disk read requests is run at servers in some
//! experiments. The request rate of this process can be varied to achieve
//! different disk utilizations."
//!
//! Arrivals are open (Poisson): the generator does not wait for its reads
//! to complete, so a 70 req/s stream drives the disk towards saturation
//! exactly as multiple independent clients would.

use csqp_catalog::SiteId;
use csqp_disk::DiskAddr;
use csqp_simkernel::rng::SimRng;
use csqp_simkernel::SimDuration;

use crate::process::{Action, OperatorProc, ResumeInput};

/// The load-generator process.
pub struct LoadGenProc {
    site: SiteId,
    mean_interarrival: SimDuration,
    disk_capacity_pages: u64,
    rng: SimRng,
}

impl LoadGenProc {
    /// A generator issuing uniformly random single-page reads at
    /// `rate_per_sec` against `site`'s disk.
    pub fn new(
        site: SiteId,
        rate_per_sec: f64,
        disk_capacity_pages: u64,
        rng: SimRng,
    ) -> LoadGenProc {
        assert!(
            rate_per_sec > 0.0,
            "use no load generator instead of rate 0"
        );
        LoadGenProc {
            site,
            mean_interarrival: SimDuration::from_secs_f64(1.0 / rate_per_sec),
            disk_capacity_pages,
            rng,
        }
    }
}

impl OperatorProc for LoadGenProc {
    fn resume(&mut self, _input: ResumeInput) -> Vec<Action> {
        let addr = DiskAddr(self.rng.below(self.disk_capacity_pages as usize) as u64);
        let dur = self.rng.exp_duration(self.mean_interarrival);
        vec![
            Action::DiskReadAsync {
                site: self.site,
                addr,
            },
            Action::Sleep { dur },
        ]
    }

    fn label(&self) -> String {
        format!("loadgen@{}", self.site)
    }
}
