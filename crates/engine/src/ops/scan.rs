//! The scan operator (§2.1).
//!
//! "The scan operator simply produces all of the tuples in a relation.
//! … A client annotation indicates that the scan should be run at the
//! site where the query is submitted, accessing data from the local cache
//! if present; any missing data are faulted in from the server where the
//! relation resides."
//!
//! Three per-page paths:
//!
//! * scan at the primary server: local sequential read;
//! * scan at the client, page cached: client-disk sequential read;
//! * scan at the client, page missing: synchronous fault RPC — request
//!   message to the server, server disk read, page reply. One page at a
//!   time, which is exactly the overlap handicap the paper attributes to
//!   data-shipping in §4.2.3.

use csqp_catalog::{RelId, SiteId};
use csqp_disk::Extent;

use crate::process::{Action, ChannelId, OperatorProc, Page, ResumeInput};

use super::disk_read;

/// Per-page cost constants a scan needs.
#[derive(Debug, Clone, Copy)]
pub struct ScanCosts {
    /// `DiskInst`.
    pub disk_inst: u64,
    /// CPU instructions for a control message (fault request).
    pub control_msg_instr: u64,
    /// CPU instructions for a page message (fault reply).
    pub page_msg_instr: u64,
    /// Control message size in bytes.
    pub control_bytes: u64,
    /// Page size in bytes.
    pub page_bytes: u64,
}

/// The scan process.
pub struct ScanProc {
    rel: RelId,
    /// Where the scan operator runs.
    site: SiteId,
    /// Where the primary copy lives.
    server: SiteId,
    rel_extent: Extent,
    cache_extent: Option<Extent>,
    cached_pages: u64,
    total_pages: u64,
    total_tuples: u64,
    tuples_per_page: u64,
    out: ChannelId,
    costs: ScanCosts,
    cursor: u64,
}

impl ScanProc {
    /// Build a scan.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rel: RelId,
        site: SiteId,
        server: SiteId,
        rel_extent: Extent,
        cache_extent: Option<Extent>,
        cached_pages: u64,
        total_pages: u64,
        total_tuples: u64,
        tuples_per_page: u64,
        out: ChannelId,
        costs: ScanCosts,
    ) -> ScanProc {
        assert_eq!(rel_extent.pages, total_pages, "extent sized to relation");
        if cached_pages > 0 {
            assert!(
                cache_extent.map(|e| e.pages) == Some(cached_pages),
                "cache extent sized to cached prefix"
            );
        }
        ScanProc {
            rel,
            site,
            server,
            rel_extent,
            cache_extent,
            cached_pages,
            total_pages,
            total_tuples,
            tuples_per_page,
            out,
            costs,
            cursor: 0,
        }
    }
}

impl OperatorProc for ScanProc {
    // Invariant panic: the builder passes a cache extent whenever
    // `cached_pages > 0`, the only case that reads it.
    #[allow(clippy::expect_used)]
    fn resume(&mut self, _input: ResumeInput) -> Vec<Action> {
        if self.cursor == self.total_pages {
            return vec![Action::Close { channel: self.out }, Action::Done];
        }
        let i = self.cursor;
        self.cursor += 1;
        let tuples = (self.total_tuples - i * self.tuples_per_page).min(self.tuples_per_page);
        let page = Page { tuples };
        let mut acts = Vec::with_capacity(9);
        if self.site == self.server {
            // Local scan at the primary copy.
            disk_read(
                self.site,
                self.rel_extent.page(i),
                self.costs.disk_inst,
                &mut acts,
            );
        } else if i < self.cached_pages {
            // Cached prefix on the client disk (footnote 8: contiguous
            // regions are cached).
            let ext = self.cache_extent.expect("cached pages imply an extent");
            disk_read(self.site, ext.page(i), self.costs.disk_inst, &mut acts);
        } else {
            // Synchronous per-page fault RPC.
            acts.push(Action::Cpu {
                site: self.site,
                instr: self.costs.control_msg_instr,
            });
            acts.push(Action::Wire {
                bytes: self.costs.control_bytes,
                data_page: false,
            });
            acts.push(Action::Cpu {
                site: self.server,
                instr: self.costs.control_msg_instr,
            });
            disk_read(
                self.server,
                self.rel_extent.page(i),
                self.costs.disk_inst,
                &mut acts,
            );
            acts.push(Action::Cpu {
                site: self.server,
                instr: self.costs.page_msg_instr,
            });
            acts.push(Action::Wire {
                bytes: self.costs.page_bytes,
                data_page: true,
            });
            acts.push(Action::Cpu {
                site: self.site,
                instr: self.costs.page_msg_instr,
            });
        }
        acts.push(Action::Emit {
            channel: self.out,
            page,
        });
        acts
    }

    fn label(&self) -> String {
        format!("scan {}@{}", self.rel, self.site)
    }
}
