//! The display operator: the root of every plan, always at the client
//! (§2.1). Its completion defines the query's response time.

use std::cell::Cell;
use std::rc::Rc;

use csqp_catalog::SiteId;

use crate::process::{Action, ChannelId, OperatorProc, ResumeInput};

/// The display process.
pub struct DisplayProc {
    site: SiteId,
    input: ChannelId,
    display_inst: u64,
    /// Shared counter the harness reads after the run.
    tuples_seen: Rc<Cell<u64>>,
    started: bool,
}

impl DisplayProc {
    /// Build a display; `tuples_seen` is shared with the metrics
    /// collector.
    pub fn new(
        site: SiteId,
        input: ChannelId,
        display_inst: u64,
        tuples_seen: Rc<Cell<u64>>,
    ) -> DisplayProc {
        DisplayProc {
            site,
            input,
            display_inst,
            tuples_seen,
            started: false,
        }
    }
}

impl OperatorProc for DisplayProc {
    fn resume(&mut self, input: ResumeInput) -> Vec<Action> {
        if !self.started {
            self.started = true;
            return vec![Action::AwaitInput {
                channel: self.input,
            }];
        }
        match input {
            ResumeInput::Page(p) => {
                self.tuples_seen.set(self.tuples_seen.get() + p.tuples);
                vec![
                    Action::Cpu {
                        site: self.site,
                        instr: self.display_inst * p.tuples,
                    },
                    Action::AwaitInput {
                        channel: self.input,
                    },
                ]
            }
            ResumeInput::EndOfStream => vec![Action::Done],
            ResumeInput::None => unreachable!("display resumed without input after start"),
        }
    }

    fn label(&self) -> String {
        format!("display@{}", self.site)
    }
}
