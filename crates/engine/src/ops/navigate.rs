//! Navigation-based data access (the paper's §7 future work: "we intend
//! to analyze the effects of navigation-based access").
//!
//! An application at the client traverses an object graph: each step
//! touches one page of a relation — with probability `locality` the page
//! physically following the previous one (clustered references),
//! otherwise a uniformly random page (pointer chasing). Cached pages are
//! read from the client disk; misses fault from the server with the same
//! synchronous per-page RPC a client-site scan uses. This is precisely
//! the light-weight interaction pattern data-shipping architectures are
//! built for (§1: "light-weight interaction … as is needed to support
//! navigational data access").

use csqp_catalog::SiteId;
use csqp_disk::Extent;
use csqp_simkernel::rng::SimRng;

use crate::process::{Action, OperatorProc, ResumeInput};

use super::disk_read;
use super::scan::ScanCosts;

/// The navigating-application process.
pub struct NavigatorProc {
    client: SiteId,
    server: SiteId,
    rel_extent: Extent,
    cache_extent: Option<Extent>,
    cached_pages: u64,
    total_pages: u64,
    steps: u64,
    locality: f64,
    costs: ScanCosts,
    rng: SimRng,
    cursor: u64,
    done: u64,
}

impl NavigatorProc {
    /// Build a navigator performing `steps` page accesses with the given
    /// locality in `[0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        client: SiteId,
        server: SiteId,
        rel_extent: Extent,
        cache_extent: Option<Extent>,
        cached_pages: u64,
        total_pages: u64,
        steps: u64,
        locality: f64,
        costs: ScanCosts,
        rng: SimRng,
    ) -> NavigatorProc {
        assert!(total_pages > 0, "cannot navigate an empty relation");
        assert!((0.0..=1.0).contains(&locality));
        NavigatorProc {
            client,
            server,
            rel_extent,
            cache_extent,
            cached_pages,
            total_pages,
            steps,
            locality,
            costs,
            rng,
            cursor: 0,
            done: 0,
        }
    }
}

impl OperatorProc for NavigatorProc {
    // Invariant panic: the builder passes a cache extent whenever
    // `cached_pages > 0`, the only case that reads it.
    #[allow(clippy::expect_used)]
    fn resume(&mut self, _input: ResumeInput) -> Vec<Action> {
        if self.done == self.steps {
            return vec![Action::Done];
        }
        self.done += 1;
        self.cursor = if self.rng.chance(self.locality) {
            (self.cursor + 1) % self.total_pages
        } else {
            self.rng.below(self.total_pages as usize) as u64
        };
        let i = self.cursor;
        let mut acts = Vec::with_capacity(9);
        if i < self.cached_pages {
            let ext = self.cache_extent.expect("cached pages imply an extent");
            disk_read(self.client, ext.page(i), self.costs.disk_inst, &mut acts);
        } else {
            acts.push(Action::Cpu {
                site: self.client,
                instr: self.costs.control_msg_instr,
            });
            acts.push(Action::Wire {
                bytes: self.costs.control_bytes,
                data_page: false,
            });
            acts.push(Action::Cpu {
                site: self.server,
                instr: self.costs.control_msg_instr,
            });
            disk_read(
                self.server,
                self.rel_extent.page(i),
                self.costs.disk_inst,
                &mut acts,
            );
            acts.push(Action::Cpu {
                site: self.server,
                instr: self.costs.page_msg_instr,
            });
            acts.push(Action::Wire {
                bytes: self.costs.page_bytes,
                data_page: true,
            });
            acts.push(Action::Cpu {
                site: self.client,
                instr: self.costs.page_msg_instr,
            });
        }
        acts
    }

    fn label(&self) -> String {
        format!("navigate[{} steps]", self.steps)
    }
}
