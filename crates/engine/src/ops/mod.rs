//! Physical operator processes.
//!
//! Each operator is a state machine implementing
//! [`crate::process::OperatorProc`]; the kernel resumes it with its last
//! awaited input and executes the action batch it returns.

pub mod aggregate;
pub mod display;
pub mod join;
pub mod loadgen;
pub mod navigate;
pub mod scan;
pub mod select;

use csqp_catalog::SiteId;
use csqp_disk::DiskAddr;

use crate::process::Action;

/// A synchronous one-page disk read with its `DiskInst` CPU charge
/// ("a CPU overhead of DiskInst instructions is charged for every disk
/// I/O request", §3.2.2).
pub(crate) fn disk_read(site: SiteId, addr: DiskAddr, disk_inst: u64, out: &mut Vec<Action>) {
    out.push(Action::Cpu {
        site,
        instr: disk_inst,
    });
    out.push(Action::DiskRead { site, addr });
}

/// A write-behind one-page disk write with its `DiskInst` CPU charge.
pub(crate) fn disk_write_async(
    site: SiteId,
    addr: DiskAddr,
    disk_inst: u64,
    out: &mut Vec<Action>,
) {
    out.push(Action::Cpu {
        site,
        instr: disk_inst,
    });
    out.push(Action::DiskWriteAsync { site, addr });
}
