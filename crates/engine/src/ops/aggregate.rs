//! The aggregate operator: hash-based grouping of the final query result
//! (footnote 4 of the paper: aggregations are annotated like selections).
//!
//! A blocking operator: it consumes its entire input (hashing every
//! tuple), then emits one tuple per group. With the paper's benchmark
//! sizes the grouping state always fits in memory, so no spill path is
//! modeled — the operator charges CPU only.

use csqp_catalog::SiteId;

use crate::process::{Action, ChannelId, OperatorProc, Page, ResumeInput};

/// The aggregate process.
pub struct AggregateProc {
    site: SiteId,
    input: ChannelId,
    out: ChannelId,
    groups: u64,
    tuples_per_page: u64,
    hash_inst: u64,
    move_tuple_instr: u64,
    seen: u64,
    started: bool,
}

impl AggregateProc {
    /// Build an aggregate over `input` producing at most `groups` output
    /// tuples.
    pub fn new(
        site: SiteId,
        input: ChannelId,
        out: ChannelId,
        groups: u64,
        tuples_per_page: u64,
        hash_inst: u64,
        move_tuple_instr: u64,
    ) -> AggregateProc {
        assert!(groups > 0);
        AggregateProc {
            site,
            input,
            out,
            groups,
            tuples_per_page,
            hash_inst,
            move_tuple_instr,
            seen: 0,
            started: false,
        }
    }
}

impl OperatorProc for AggregateProc {
    fn resume(&mut self, input: ResumeInput) -> Vec<Action> {
        if !self.started {
            self.started = true;
            return vec![Action::AwaitInput {
                channel: self.input,
            }];
        }
        match input {
            ResumeInput::Page(p) => {
                self.seen += p.tuples;
                vec![
                    Action::Cpu {
                        site: self.site,
                        instr: p.tuples * self.hash_inst,
                    },
                    Action::AwaitInput {
                        channel: self.input,
                    },
                ]
            }
            ResumeInput::EndOfStream => {
                let mut out_tuples = self.groups.min(self.seen);
                let mut acts = vec![Action::Cpu {
                    site: self.site,
                    instr: out_tuples * self.move_tuple_instr,
                }];
                while out_tuples > 0 {
                    let t = out_tuples.min(self.tuples_per_page);
                    acts.push(Action::Emit {
                        channel: self.out,
                        page: Page { tuples: t },
                    });
                    out_tuples -= t;
                }
                acts.push(Action::Close { channel: self.out });
                acts.push(Action::Done);
                acts
            }
            ResumeInput::None => unreachable!("aggregate resumed without input after start"),
        }
    }

    fn label(&self) -> String {
        format!("aggregate[{}]@{}", self.groups, self.site)
    }
}
