//! The hybrid-hash join operator ("All joins are processed using hybrid
//! hashing \[Sha86\]", §3.2.2).
//!
//! With the **maximum** allocation the whole inner hash table is resident:
//! build consumes the inner input, probe streams the outer input and emits
//! results — no disk is touched.
//!
//! With the **minimum** allocation (`⌈F·√N⌉` frames) a resident fraction
//! of both inputs is processed in memory (partition 0) and the rest is
//! spilled: build and probe write partition pages *round-robin across
//! per-partition temp extents* using write-behind I/O, then the join phase
//! re-reads each partition pair. The spill writes of a join therefore
//! interleave with any concurrent sequential stream on the same disk —
//! the mechanism behind the paper's contention results (Figures 3, 8).
//!
//! Pages carry tuple counts only; output cardinality follows the
//! estimator's result size, spread uniformly over the probe stream
//! (uniform hashing co-partitions matching tuples, so the resident
//! fraction of the output equals the resident fraction of the inputs).

use csqp_catalog::SiteId;
use csqp_disk::Extent;

use crate::process::{Action, ChannelId, OperatorProc, Page, ResumeInput};

use super::{disk_read, disk_write_async};

/// Cost constants a join needs (Table 2).
#[derive(Debug, Clone, Copy)]
pub struct JoinCosts {
    /// `HashInst`.
    pub hash_inst: u64,
    /// `Compare`.
    pub compare_inst: u64,
    /// `MoveInst` per tuple (tuple width / 4).
    pub move_tuple_instr: u64,
    /// `DiskInst`.
    pub disk_inst: u64,
    /// Tuples per page.
    pub tuples_per_page: u64,
}

/// One spill partition's temp extent and fill state.
#[derive(Debug)]
struct Partition {
    extent: Extent,
    pages: u64,
    tuples: f64,
}

impl Partition {
    fn write_page(&mut self, tuples: f64) -> csqp_disk::DiskAddr {
        assert!(
            self.pages < self.extent.pages,
            "join spill partition overflow: {} pages into a {}-page extent \
             (cardinality misestimate?)",
            self.pages + 1,
            self.extent.pages
        );
        let addr = self.extent.page(self.pages);
        self.pages += 1;
        self.tuples += tuples;
        addr
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JState {
    Start,
    Build,
    Probe,
    /// Re-reading spilled partition `part`: inner side, page index.
    PartInner(usize, u64),
    /// Re-reading spilled partition `part`: outer side, page index.
    PartOuter(usize, u64),
    Finished,
}

/// The hybrid-hash join process.
pub struct JoinProc {
    site: SiteId,
    inner: ChannelId,
    outer: ChannelId,
    out: ChannelId,
    costs: JoinCosts,
    /// Fraction of tuples handled resident (partition 0).
    resident_frac: f64,
    /// Result tuples per probe-input tuple.
    out_ratio: f64,
    inner_parts: Vec<Partition>,
    outer_parts: Vec<Partition>,
    /// Fractional spilled tuples awaiting a full page (per side).
    spill_acc_inner: f64,
    spill_acc_outer: f64,
    /// Round-robin cursors over partitions.
    rr_inner: usize,
    rr_outer: usize,
    /// Fractional output tuples awaiting a full page.
    out_acc: f64,
    state: JState,
    label: String,
}

impl JoinProc {
    /// Build a join. `inner_extents`/`outer_extents` are the temp extents
    /// for the spilled partitions (empty = fully resident / max
    /// allocation); `resident_frac` is partition 0's share of the input.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        site: SiteId,
        inner: ChannelId,
        outer: ChannelId,
        out: ChannelId,
        costs: JoinCosts,
        resident_frac: f64,
        out_ratio: f64,
        inner_extents: Vec<Extent>,
        outer_extents: Vec<Extent>,
        label: String,
    ) -> JoinProc {
        assert_eq!(inner_extents.len(), outer_extents.len());
        assert!((0.0..=1.0).contains(&resident_frac));
        assert!(out_ratio >= 0.0);
        let part = |e: Vec<Extent>| {
            e.into_iter()
                .map(|extent| Partition {
                    extent,
                    pages: 0,
                    tuples: 0.0,
                })
                .collect::<Vec<_>>()
        };
        JoinProc {
            site,
            inner,
            outer,
            out,
            costs,
            resident_frac,
            out_ratio,
            inner_parts: part(inner_extents),
            outer_parts: part(outer_extents),
            spill_acc_inner: 0.0,
            spill_acc_outer: 0.0,
            rr_inner: 0,
            rr_outer: 0,
            out_acc: 0.0,
            state: JState::Start,
            label,
        }
    }

    fn spills(&self) -> bool {
        !self.inner_parts.is_empty()
    }

    /// Queue spilled tuples and emit full partition pages round-robin.
    fn spill(&mut self, tuples: f64, inner_side: bool, acts: &mut Vec<Action>) {
        let tpp = self.costs.tuples_per_page as f64;
        let acc = if inner_side {
            &mut self.spill_acc_inner
        } else {
            &mut self.spill_acc_outer
        };
        *acc += tuples;
        while {
            let acc = if inner_side {
                self.spill_acc_inner
            } else {
                self.spill_acc_outer
            };
            acc >= tpp
        } {
            let (parts, rr) = if inner_side {
                (&mut self.inner_parts, &mut self.rr_inner)
            } else {
                (&mut self.outer_parts, &mut self.rr_outer)
            };
            let p = *rr % parts.len();
            *rr += 1;
            let addr = parts[p].write_page(tpp);
            disk_write_async(self.site, addr, self.costs.disk_inst, acts);
            if inner_side {
                self.spill_acc_inner -= tpp;
            } else {
                self.spill_acc_outer -= tpp;
            }
        }
    }

    /// Flush a final partial spill page, if any.
    fn flush_spill(&mut self, inner_side: bool, acts: &mut Vec<Action>) {
        let acc = if inner_side {
            self.spill_acc_inner
        } else {
            self.spill_acc_outer
        };
        if acc >= 0.5 {
            let (parts, rr) = if inner_side {
                (&mut self.inner_parts, &mut self.rr_inner)
            } else {
                (&mut self.outer_parts, &mut self.rr_outer)
            };
            let p = *rr % parts.len();
            *rr += 1;
            let addr = parts[p].write_page(acc);
            disk_write_async(self.site, addr, self.costs.disk_inst, acts);
        }
        if inner_side {
            self.spill_acc_inner = 0.0;
        } else {
            self.spill_acc_outer = 0.0;
        }
    }

    /// Account result tuples and emit full output pages.
    fn produce(&mut self, tuples: f64, acts: &mut Vec<Action>) {
        let tpp = self.costs.tuples_per_page;
        self.out_acc += tuples;
        while self.out_acc >= tpp as f64 {
            acts.push(Action::Emit {
                channel: self.out,
                page: Page { tuples: tpp },
            });
            self.out_acc -= tpp as f64;
        }
    }

    fn finish(&mut self) -> Vec<Action> {
        let mut acts = Vec::new();
        let rem = self.out_acc.round() as u64;
        if rem > 0 {
            acts.push(Action::Emit {
                channel: self.out,
                page: Page { tuples: rem },
            });
        }
        self.out_acc = 0.0;
        self.state = JState::Finished;
        acts.push(Action::Close { channel: self.out });
        acts.push(Action::Done);
        acts
    }

    /// CPU instructions to build `t` tuples into the hash table.
    fn build_instr(&self, t: f64) -> u64 {
        (t * (self.costs.hash_inst + self.costs.move_tuple_instr) as f64).round() as u64
    }

    /// CPU instructions to probe with `t` tuples producing `o` results.
    fn probe_instr(&self, t: f64, o: f64) -> u64 {
        (t * (self.costs.hash_inst + self.costs.compare_inst) as f64
            + o * self.costs.move_tuple_instr as f64)
            .round() as u64
    }

    /// The partition-phase step: next page batch, advancing state.
    fn partition_step(&mut self) -> Vec<Action> {
        loop {
            match self.state {
                JState::PartInner(b, i) => {
                    if b == self.inner_parts.len() {
                        return self.finish();
                    }
                    let part = &self.inner_parts[b];
                    if i >= part.pages {
                        self.state = JState::PartOuter(b, 0);
                        continue;
                    }
                    let tuples = if part.pages == 0 {
                        0.0
                    } else {
                        part.tuples / part.pages as f64
                    };
                    let addr = part.extent.page(i);
                    let mut acts = Vec::with_capacity(3);
                    disk_read(self.site, addr, self.costs.disk_inst, &mut acts);
                    acts.push(Action::Cpu {
                        site: self.site,
                        instr: self.build_instr(tuples),
                    });
                    self.state = JState::PartInner(b, i + 1);
                    return acts;
                }
                JState::PartOuter(b, i) => {
                    let part = &self.outer_parts[b];
                    if i >= part.pages {
                        self.state = JState::PartInner(b + 1, 0);
                        continue;
                    }
                    let tuples = part.tuples / part.pages as f64;
                    let addr = part.extent.page(i);
                    let produced = tuples * self.out_ratio;
                    let mut acts = Vec::with_capacity(5);
                    disk_read(self.site, addr, self.costs.disk_inst, &mut acts);
                    acts.push(Action::Cpu {
                        site: self.site,
                        instr: self.probe_instr(tuples, produced),
                    });
                    self.produce(produced, &mut acts);
                    self.state = JState::PartOuter(b, i + 1);
                    return acts;
                }
                _ => unreachable!("partition_step outside the partition phase"),
            }
        }
    }
}

impl OperatorProc for JoinProc {
    fn resume(&mut self, input: ResumeInput) -> Vec<Action> {
        match self.state {
            JState::Start => {
                self.state = JState::Build;
                vec![Action::AwaitInput {
                    channel: self.inner,
                }]
            }
            JState::Build => match input {
                ResumeInput::Page(p) => {
                    let mut acts = Vec::with_capacity(6);
                    acts.push(Action::Cpu {
                        site: self.site,
                        instr: self.build_instr(p.tuples as f64),
                    });
                    if self.spills() {
                        let spilled = p.tuples as f64 * (1.0 - self.resident_frac);
                        self.spill(spilled, true, &mut acts);
                    }
                    acts.push(Action::AwaitInput {
                        channel: self.inner,
                    });
                    acts
                }
                ResumeInput::EndOfStream => {
                    self.state = JState::Probe;
                    let mut acts = Vec::with_capacity(3);
                    if self.spills() {
                        self.flush_spill(true, &mut acts);
                        acts.push(Action::DrainWrites);
                    }
                    acts.push(Action::AwaitInput {
                        channel: self.outer,
                    });
                    acts
                }
                ResumeInput::None => unreachable!("build resumed without input"),
            },
            JState::Probe => match input {
                ResumeInput::Page(p) => {
                    let mut acts = Vec::with_capacity(8);
                    let resident = p.tuples as f64 * self.resident_frac;
                    let produced = resident * self.out_ratio;
                    acts.push(Action::Cpu {
                        site: self.site,
                        instr: self.probe_instr(p.tuples as f64, produced),
                    });
                    self.produce(produced, &mut acts);
                    if self.spills() {
                        let spilled = p.tuples as f64 * (1.0 - self.resident_frac);
                        self.spill(spilled, false, &mut acts);
                    }
                    acts.push(Action::AwaitInput {
                        channel: self.outer,
                    });
                    acts
                }
                ResumeInput::EndOfStream => {
                    if self.spills() {
                        let mut acts = Vec::with_capacity(3);
                        self.flush_spill(false, &mut acts);
                        acts.push(Action::DrainWrites);
                        self.state = JState::PartInner(0, 0);
                        acts
                    } else {
                        self.finish()
                    }
                }
                ResumeInput::None => unreachable!("probe resumed without input"),
            },
            JState::PartInner(..) | JState::PartOuter(..) => self.partition_step(),
            JState::Finished => unreachable!("join resumed after Done"),
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}
