//! The select operator (§2.1): applies a predicate to its input and
//! repacks the surviving tuples into full output pages.

use csqp_catalog::SiteId;

use crate::process::{Action, ChannelId, OperatorProc, Page, ResumeInput};

/// The select process.
pub struct SelectProc {
    site: SiteId,
    input: ChannelId,
    out: ChannelId,
    selectivity: f64,
    tuples_per_page: u64,
    compare_inst: u64,
    move_tuple_instr: u64,
    /// Fractional output tuples awaiting a full page.
    acc: f64,
    started: bool,
    label: String,
}

impl SelectProc {
    /// Build a select.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        site: SiteId,
        input: ChannelId,
        out: ChannelId,
        selectivity: f64,
        tuples_per_page: u64,
        compare_inst: u64,
        move_tuple_instr: u64,
        label: String,
    ) -> SelectProc {
        assert!((0.0..=1.0).contains(&selectivity) && selectivity > 0.0);
        SelectProc {
            site,
            input,
            out,
            selectivity,
            tuples_per_page,
            compare_inst,
            move_tuple_instr,
            acc: 0.0,
            started: false,
            label,
        }
    }

    fn drain_full_pages(&mut self, acts: &mut Vec<Action>) {
        while self.acc >= self.tuples_per_page as f64 {
            acts.push(Action::Emit {
                channel: self.out,
                page: Page {
                    tuples: self.tuples_per_page,
                },
            });
            self.acc -= self.tuples_per_page as f64;
        }
    }
}

impl OperatorProc for SelectProc {
    fn resume(&mut self, input: ResumeInput) -> Vec<Action> {
        if !self.started {
            self.started = true;
            return vec![Action::AwaitInput {
                channel: self.input,
            }];
        }
        match input {
            ResumeInput::Page(p) => {
                let survivors = p.tuples as f64 * self.selectivity;
                let instr = p.tuples * self.compare_inst
                    + (survivors * self.move_tuple_instr as f64) as u64;
                self.acc += survivors;
                let mut acts = vec![Action::Cpu {
                    site: self.site,
                    instr,
                }];
                self.drain_full_pages(&mut acts);
                acts.push(Action::AwaitInput {
                    channel: self.input,
                });
                acts
            }
            ResumeInput::EndOfStream => {
                let mut acts = Vec::new();
                let rem = self.acc.round() as u64;
                if rem > 0 {
                    acts.push(Action::Emit {
                        channel: self.out,
                        page: Page { tuples: rem },
                    });
                }
                acts.push(Action::Close { channel: self.out });
                acts.push(Action::Done);
                acts
            }
            ResumeInput::None => {
                unreachable!("select resumed without input after start")
            }
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}
