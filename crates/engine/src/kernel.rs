//! The execution kernel: drives operator processes against the simulated
//! CPU, disk and network resources.
//!
//! The kernel owns the future event list, one CPU queue and one disk per
//! site, the shared network link, all inter-operator channels, and the
//! send pipelines of remote channels (the paper's network operator
//! pairs). It runs until the display operator finishes — response time is
//! "the elapsed time from the initiation of query execution until the
//! time that the last tuple of the query result is displayed at the
//! client" (§3.1.2).

use std::collections::VecDeque;

use csqp_catalog::{SiteId, SystemConfig};
use csqp_disk::{Disk, DiskParams, DiskRequest, IoKind};
use csqp_net::{Link, MsgCost, MsgKind};
use csqp_simkernel::{EventQueue, FifoServer, SimDuration, SimTime};

use crate::channel::Channel;
use crate::process::{Action, ChannelId, OperatorProc, Page, ProcId, ResumeInput};

/// Safety valve: a benchmark query needs well under a million events, so
/// hitting this means a livelock bug.
const MAX_EVENTS: u64 = 200_000_000;

#[derive(Debug, Clone, Copy)]
enum Ev {
    Resume(ProcId),
    CpuDone(usize),
    DiskDone(usize),
    WireDone,
    SleepDone(ProcId),
}

#[derive(Debug, Clone, Copy)]
enum CpuToken {
    Proc(ProcId),
    TransferSend(usize),
    TransferRecv(usize),
}

#[derive(Debug, Clone, Copy)]
enum DiskToken {
    Sync(ProcId),
    Async(ProcId),
    Detached,
}

#[derive(Debug, Clone, Copy)]
enum WireToken {
    Proc(ProcId),
    Transfer(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// Runnable (actions pending or ready to resume).
    No,
    /// A Resume event is in flight; ignore other wakeups.
    Scheduled,
    Cpu,
    Disk,
    Wire,
    Sleep,
    Emit,
    Input,
    Drain,
    Done,
}

/// Where one operator's time went while it was parked.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WaitBreakdown {
    /// Waiting for a CPU grant.
    pub cpu: SimDuration,
    /// Waiting for a synchronous disk I/O.
    pub disk: SimDuration,
    /// Waiting for the wire (fault RPC legs).
    pub wire: SimDuration,
    /// Waiting for input from the producer.
    pub input: SimDuration,
    /// Blocked on a full output channel (back-pressure).
    pub emit: SimDuration,
    /// Draining write-behind I/O.
    pub drain: SimDuration,
    /// Deliberate sleep (load generators).
    pub sleep: SimDuration,
}

impl WaitBreakdown {
    fn add(&mut self, b: Blocked, d: SimDuration) {
        match b {
            Blocked::Cpu => self.cpu += d,
            Blocked::Disk => self.disk += d,
            Blocked::Wire => self.wire += d,
            Blocked::Input => self.input += d,
            Blocked::Emit => self.emit += d,
            Blocked::Drain => self.drain += d,
            Blocked::Sleep => self.sleep += d,
            Blocked::No | Blocked::Scheduled | Blocked::Done => {}
        }
    }
}

/// Per-operator report after a run.
#[derive(Debug, Clone)]
pub struct ProcReport {
    /// The operator's diagnostic label.
    pub label: String,
    /// Time parked, by cause.
    pub waits: WaitBreakdown,
}

struct ProcSlot {
    op: Box<dyn OperatorProc>,
    queue: VecDeque<Action>,
    blocked: Blocked,
    blocked_since: SimTime,
    waits: WaitBreakdown,
    outstanding_writes: usize,
    next_input: ResumeInput,
}

struct Transfer {
    channel: usize,
    page: Page,
}

/// The engine: processes + resources + event loop.
pub struct Engine {
    config: SystemConfig,
    msg_cost: MsgCost,
    events: EventQueue<Ev>,
    procs: Vec<ProcSlot>,
    channels: Vec<Channel>,
    cpus: Vec<FifoServer<CpuToken>>,
    disks: Vec<Disk<DiskToken>>,
    link: Link<WireToken>,
    transfers: Vec<Option<Transfer>>,
    free_transfers: Vec<usize>,
    /// Display processes: the run ends when all of them are done
    /// (multi-query workloads register several).
    displays: Vec<ProcId>,
    display_done: Vec<Option<SimTime>>,
    finished_at: Option<SimTime>,
    events_handled: u64,
}

impl Engine {
    /// An engine for `num_sites` sites (client + servers), all disks
    /// sharing `disk_params`.
    pub fn new(config: SystemConfig, disk_params: &DiskParams, num_sites: usize) -> Engine {
        Engine {
            msg_cost: MsgCost::new(&config),
            link: Link::new(&config),
            config,
            events: EventQueue::new(),
            procs: Vec::new(),
            channels: Vec::new(),
            cpus: (0..num_sites).map(|_| FifoServer::new()).collect(),
            disks: (0..num_sites)
                .map(|_| Disk::new(disk_params.clone()))
                .collect(),
            transfers: Vec::new(),
            free_transfers: Vec::new(),
            displays: Vec::new(),
            display_done: Vec::new(),
            finished_at: None,
            events_handled: 0,
        }
    }

    /// Register a channel between sites; returns its id.
    pub fn add_channel(&mut self, from: SiteId, to: SiteId) -> ChannelId {
        self.channels.push(Channel::new(from, to));
        ChannelId(self.channels.len() - 1)
    }

    /// Register a process; returns its id. The process whose completion
    /// ends the run (the display) must be registered via
    /// [`Engine::add_display_proc`].
    pub fn add_proc(&mut self, op: Box<dyn OperatorProc>) -> ProcId {
        self.procs.push(ProcSlot {
            op,
            queue: VecDeque::new(),
            blocked: Blocked::No,
            blocked_since: SimTime::ZERO,
            waits: WaitBreakdown::default(),
            outstanding_writes: 0,
            next_input: ResumeInput::None,
        });
        self.procs.len() - 1
    }

    /// Register a display process. The run ends when every registered
    /// display has finished; multi-query workloads register one per
    /// query.
    pub fn add_display_proc(&mut self, op: Box<dyn OperatorProc>) -> ProcId {
        let id = self.add_proc(op);
        self.displays.push(id);
        self.display_done.push(None);
        id
    }

    /// Run to completion; returns the response time of the *last* query
    /// to finish (per-query times via [`Engine::display_finish_times`]).
    pub fn run(&mut self) -> SimDuration {
        assert!(!self.displays.is_empty(), "no display process registered");
        for p in 0..self.procs.len() {
            self.procs[p].blocked = Blocked::Scheduled;
            self.procs[p].blocked_since = SimTime::ZERO;
            self.events.schedule(SimTime::ZERO, Ev::Resume(p));
        }
        let mut handled: u64 = 0;
        while let Some((_, ev)) = self.events.pop() {
            handled += 1;
            assert!(handled < MAX_EVENTS, "event cap exceeded: livelock?");
            match ev {
                Ev::Resume(p) => {
                    debug_assert_eq!(self.procs[p].blocked, Blocked::Scheduled);
                    self.wake(p, Blocked::No);
                    self.advance(p);
                }
                Ev::SleepDone(p) => {
                    debug_assert_eq!(self.procs[p].blocked, Blocked::Sleep);
                    self.wake(p, Blocked::No);
                    self.advance(p);
                }
                Ev::CpuDone(site) => self.on_cpu_done(site),
                Ev::DiskDone(site) => self.on_disk_done(site),
                Ev::WireDone => self.on_wire_done(),
            }
            if self.finished_at.is_some() {
                break;
            }
        }
        self.events_handled = handled;
        let end = self.finished_at.unwrap_or_else(|| {
            panic!(
                "simulation deadlocked at {:?}: {}",
                self.events.now(),
                self.diagnose()
            )
        });
        end.since(SimTime::ZERO)
    }

    fn diagnose(&self) -> String {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.blocked != Blocked::Done)
            .map(|(i, s)| format!("proc {i} ({}) {:?}", s.op.label(), s.blocked))
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Events the kernel dispatched during the last [`Engine::run`]:
    /// the simulator-throughput denominator `csqp-bench --sim` divides
    /// wall time by.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// When the last display finished, if all have.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    /// Finish time of each registered display, in registration order.
    /// `None` entries mean the run has not completed (or deadlocked).
    pub fn display_finish_times(&self) -> Vec<Option<SimDuration>> {
        self.display_done
            .iter()
            .map(|t| t.map(|t| t.since(SimTime::ZERO)))
            .collect()
    }

    /// Snapshot of the wire-traffic counters, as one typed record.
    pub fn link_stats(&self) -> csqp_net::LinkStats {
        self.link.stats()
    }

    /// Wire utilization over the run so far.
    pub fn link_utilization(&self) -> f64 {
        self.link.utilization(self.events.now())
    }

    /// Disk statistics of a site.
    pub fn disk_stats(&self, site: SiteId) -> csqp_disk::disk::DiskStats {
        self.disks[site.index()].stats()
    }

    /// CPU busy time of a site.
    pub fn cpu_busy(&self, site: SiteId) -> SimDuration {
        self.cpus[site.index()].busy_time()
    }

    /// Park `p` in state `b`, stamping the wait start.
    fn park(&mut self, p: ProcId, b: Blocked) {
        self.procs[p].blocked = b;
        self.procs[p].blocked_since = self.events.now();
    }

    /// Wake `p` (to runnable or to Scheduled), accounting the wait.
    fn wake(&mut self, p: ProcId, to: Blocked) {
        let was = self.procs[p].blocked;
        let since = self.procs[p].blocked_since;
        let d = self.events.now().since(since);
        self.procs[p].waits.add(was, d);
        self.procs[p].blocked = to;
        if to == Blocked::Scheduled {
            self.procs[p].blocked_since = self.events.now();
        }
    }

    /// Execute `p`'s pending actions until it blocks; refill from the
    /// operator whenever the queue drains.
    fn advance(&mut self, p: ProcId) {
        if self.procs[p].blocked != Blocked::No {
            return; // spurious wakeup
        }
        loop {
            let action = match self.procs[p].queue.pop_front() {
                Some(a) => a,
                None => {
                    let input = std::mem::replace(&mut self.procs[p].next_input, ResumeInput::None);
                    let batch = self.procs[p].op.resume(input);
                    assert!(
                        !batch.is_empty(),
                        "operator {} returned an empty batch",
                        self.procs[p].op.label()
                    );
                    for (i, a) in batch.iter().enumerate() {
                        if matches!(a, Action::AwaitInput { .. }) {
                            assert_eq!(
                                i,
                                batch.len() - 1,
                                "AwaitInput must end its batch ({})",
                                self.procs[p].op.label()
                            );
                        }
                    }
                    self.procs[p].queue = batch.into();
                    continue;
                }
            };
            if let Some(block) = self.execute(p, action) {
                self.park(p, block);
                return;
            }
        }
    }

    /// Per-operator wait breakdowns, in registration order.
    pub fn proc_reports(&self) -> Vec<ProcReport> {
        self.procs
            .iter()
            .map(|s| ProcReport {
                label: s.op.label(),
                waits: s.waits,
            })
            .collect()
    }

    /// Execute one action for `p`; `Some(block)` parks the process.
    fn execute(&mut self, p: ProcId, action: Action) -> Option<Blocked> {
        let now = self.events.now();
        match action {
            Action::Cpu { site, instr } => {
                let service = SimDuration::from_secs_f64(self.config.cpu_secs(instr));
                if let Some(fin) = self.cpus[site.index()].submit(now, CpuToken::Proc(p), service) {
                    self.events.schedule(fin, Ev::CpuDone(site.index()));
                }
                Some(Blocked::Cpu)
            }
            Action::DiskRead { site, addr } => {
                self.submit_disk(site, addr, IoKind::Read, DiskToken::Sync(p));
                Some(Blocked::Disk)
            }
            Action::DiskWrite { site, addr } => {
                self.submit_disk(site, addr, IoKind::Write, DiskToken::Sync(p));
                Some(Blocked::Disk)
            }
            Action::DiskWriteAsync { site, addr } => {
                self.procs[p].outstanding_writes += 1;
                self.submit_disk(site, addr, IoKind::Write, DiskToken::Async(p));
                None
            }
            Action::DiskReadAsync { site, addr } => {
                self.submit_disk(site, addr, IoKind::Read, DiskToken::Detached);
                None
            }
            Action::DrainWrites => {
                if self.procs[p].outstanding_writes == 0 {
                    None
                } else {
                    Some(Blocked::Drain)
                }
            }
            Action::Wire { bytes, data_page } => {
                let kind = if data_page {
                    MsgKind::DataPage
                } else {
                    MsgKind::Control
                };
                if let Some(fin) = self.link.submit(now, WireToken::Proc(p), bytes, kind) {
                    self.events.schedule(fin, Ev::WireDone);
                }
                Some(Blocked::Wire)
            }
            Action::Emit { channel, page } => {
                if self.try_emit(channel.0, page) {
                    None
                } else {
                    let ch = &mut self.channels[channel.0];
                    debug_assert!(ch.blocked_producer.is_none(), "one producer per channel");
                    ch.blocked_producer = Some((p, page));
                    Some(Blocked::Emit)
                }
            }
            Action::Close { channel } => {
                let ch = &mut self.channels[channel.0];
                debug_assert!(!ch.closed, "double close");
                ch.closed = true;
                self.service_waiting_consumer(channel.0);
                None
            }
            Action::AwaitInput { channel } => {
                debug_assert!(
                    self.procs[p].queue.is_empty(),
                    "AwaitInput must end its batch"
                );
                let ch = &mut self.channels[channel.0];
                if let Some(page) = ch.queue.pop_front() {
                    // Parked only until the just-scheduled Resume fires.
                    self.procs[p].next_input = ResumeInput::Page(page);
                    self.events.schedule(now, Ev::Resume(p));
                    self.refill_channel(channel.0);
                    Some(Blocked::Scheduled)
                } else if ch.at_eos() {
                    self.procs[p].next_input = ResumeInput::EndOfStream;
                    self.events.schedule(now, Ev::Resume(p));
                    Some(Blocked::Scheduled)
                } else {
                    debug_assert!(ch.waiting_consumer.is_none(), "one consumer per channel");
                    ch.waiting_consumer = Some(p);
                    Some(Blocked::Input)
                }
            }
            Action::Sleep { dur } => {
                self.events.schedule(now + dur, Ev::SleepDone(p));
                Some(Blocked::Sleep)
            }
            Action::Done => {
                if let Some(i) = self.displays.iter().position(|&d| d == p) {
                    self.display_done[i] = Some(now);
                    if self.display_done.iter().all(Option::is_some) {
                        self.finished_at = Some(now);
                    }
                }
                Some(Blocked::Done)
            }
        }
    }

    fn submit_disk(
        &mut self,
        site: SiteId,
        addr: csqp_disk::DiskAddr,
        kind: IoKind,
        token: DiskToken,
    ) {
        let now = self.events.now();
        if let Some(fin) = self.disks[site.index()].submit(now, DiskRequest { addr, kind, token }) {
            self.events.schedule(fin, Ev::DiskDone(site.index()));
        }
    }

    /// Attempt to emit into a channel; true when accepted.
    fn try_emit(&mut self, ch_idx: usize, page: Page) -> bool {
        if !self.channels[ch_idx].has_space() {
            return false;
        }
        if let Some((from, _)) = self.channels[ch_idx].remote {
            // Launch the send pipeline: sender CPU -> wire -> receiver CPU.
            self.channels[ch_idx].in_flight += 1;
            let tid = match self.free_transfers.pop() {
                Some(t) => {
                    self.transfers[t] = Some(Transfer {
                        channel: ch_idx,
                        page,
                    });
                    t
                }
                None => {
                    self.transfers.push(Some(Transfer {
                        channel: ch_idx,
                        page,
                    }));
                    self.transfers.len() - 1
                }
            };
            let instr = self.msg_cost.cpu_instr(self.config.page_size as u64);
            let service = SimDuration::from_secs_f64(self.config.cpu_secs(instr));
            let now = self.events.now();
            if let Some(fin) =
                self.cpus[from.index()].submit(now, CpuToken::TransferSend(tid), service)
            {
                self.events.schedule(fin, Ev::CpuDone(from.index()));
            }
        } else {
            self.channels[ch_idx].queue.push_back(page);
            self.service_waiting_consumer(ch_idx);
        }
        true
    }

    /// Hand a page (or EOS) to a parked consumer, if any.
    fn service_waiting_consumer(&mut self, ch_idx: usize) {
        let Some(c) = self.channels[ch_idx].waiting_consumer else {
            return;
        };
        if let Some(page) = self.channels[ch_idx].queue.pop_front() {
            self.channels[ch_idx].waiting_consumer = None;
            self.procs[c].next_input = ResumeInput::Page(page);
            self.wake(c, Blocked::Scheduled);
            let now = self.events.now();
            self.events.schedule(now, Ev::Resume(c));
            self.refill_channel(ch_idx);
        } else if self.channels[ch_idx].at_eos() {
            self.channels[ch_idx].waiting_consumer = None;
            self.procs[c].next_input = ResumeInput::EndOfStream;
            self.wake(c, Blocked::Scheduled);
            let now = self.events.now();
            self.events.schedule(now, Ev::Resume(c));
        }
    }

    /// Space freed in a channel: let a blocked producer emit.
    fn refill_channel(&mut self, ch_idx: usize) {
        if !self.channels[ch_idx].has_space() {
            return;
        }
        if let Some((p, page)) = self.channels[ch_idx].blocked_producer.take() {
            let accepted = self.try_emit(ch_idx, page);
            debug_assert!(accepted, "space was checked");
            self.wake(p, Blocked::Scheduled);
            let now = self.events.now();
            self.events.schedule(now, Ev::Resume(p));
        }
    }

    // Invariant panic: a `TransferRecv` token is only scheduled for a
    // transfer slot that is live until this very handler frees it.
    #[allow(clippy::expect_used)]
    fn on_cpu_done(&mut self, site: usize) {
        let (token, next) = self.cpus[site].finish_current(self.events.now());
        if let Some(fin) = next {
            self.events.schedule(fin, Ev::CpuDone(site));
        }
        match token {
            CpuToken::Proc(p) => {
                debug_assert_eq!(self.procs[p].blocked, Blocked::Cpu);
                self.wake(p, Blocked::No);
                self.advance(p);
            }
            CpuToken::TransferSend(tid) => {
                // Stage 2: the wire.
                let now = self.events.now();
                if let Some(fin) = self.link.submit(
                    now,
                    WireToken::Transfer(tid),
                    self.config.page_size as u64,
                    MsgKind::DataPage,
                ) {
                    self.events.schedule(fin, Ev::WireDone);
                }
            }
            CpuToken::TransferRecv(tid) => {
                // Stage 4: delivery at the consumer side.
                let t = self.transfers[tid].take().expect("live transfer");
                self.free_transfers.push(tid);
                let ch_idx = t.channel;
                self.channels[ch_idx].in_flight -= 1;
                self.channels[ch_idx].queue.push_back(t.page);
                self.service_waiting_consumer(ch_idx);
                self.refill_channel(ch_idx);
            }
        }
    }

    fn on_disk_done(&mut self, site: usize) {
        let (token, next) = self.disks[site].finish_current(self.events.now());
        if let Some(fin) = next {
            self.events.schedule(fin, Ev::DiskDone(site));
        }
        match token {
            DiskToken::Sync(p) => {
                debug_assert_eq!(self.procs[p].blocked, Blocked::Disk);
                self.wake(p, Blocked::No);
                self.advance(p);
            }
            DiskToken::Async(p) => {
                self.procs[p].outstanding_writes -= 1;
                if self.procs[p].outstanding_writes == 0 && self.procs[p].blocked == Blocked::Drain
                {
                    self.wake(p, Blocked::No);
                    self.advance(p);
                }
            }
            DiskToken::Detached => {}
        }
    }

    // Invariant panics: a `Transfer` wire token references a live slot,
    // and page transfers are created only for cross-site channels.
    #[allow(clippy::expect_used)]
    fn on_wire_done(&mut self) {
        let (token, next) = self.link.finish_current(self.events.now());
        if let Some(fin) = next {
            self.events.schedule(fin, Ev::WireDone);
        }
        match token {
            WireToken::Proc(p) => {
                debug_assert_eq!(self.procs[p].blocked, Blocked::Wire);
                self.wake(p, Blocked::No);
                self.advance(p);
            }
            WireToken::Transfer(tid) => {
                // Stage 3: receiver CPU.
                let to = {
                    let t = self.transfers[tid].as_ref().expect("live transfer");
                    self.channels[t.channel]
                        .remote
                        .expect("transfers only on remote channels")
                        .1
                };
                let instr = self.msg_cost.cpu_instr(self.config.page_size as u64);
                let service = SimDuration::from_secs_f64(self.config.cpu_secs(instr));
                let now = self.events.now();
                if let Some(fin) =
                    self.cpus[to.index()].submit(now, CpuToken::TransferRecv(tid), service)
                {
                    self.events.schedule(fin, Ev::CpuDone(to.index()));
                }
            }
        }
    }
}
