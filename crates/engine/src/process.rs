//! The process abstraction: operators as resumable state machines.

use csqp_catalog::SiteId;
use csqp_disk::DiskAddr;
use csqp_simkernel::SimDuration;

/// A page of tuples flowing between operators. Contents are synthetic —
/// only the tuple count matters to the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Page {
    /// Number of tuples on the page.
    pub tuples: u64,
}

/// Identifies a channel between two operator processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(pub usize);

/// Identifies an operator process.
pub type ProcId = usize;

/// What a resumed process receives from its last `AwaitInput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeInput {
    /// Nothing was awaited (first resume, or last batch ended elsewhere).
    None,
    /// A page arrived on the awaited channel.
    Page(Page),
    /// The awaited channel is closed and drained.
    EndOfStream,
}

/// One primitive step a process asks the kernel to perform.
///
/// Actions in a batch run sequentially. `AwaitInput` must be the final
/// action of its batch (its result is delivered to the next resume);
/// `Done` terminates the process.
#[derive(Debug, Clone)]
pub enum Action {
    /// Occupy `site`'s CPU for `instr` instructions.
    Cpu {
        /// Site whose CPU is charged.
        site: SiteId,
        /// Instruction count (Table 2 units).
        instr: u64,
    },
    /// Synchronous one-page disk read (the process waits).
    DiskRead {
        /// Site whose disk is used.
        site: SiteId,
        /// Page address.
        addr: DiskAddr,
    },
    /// Synchronous one-page disk write.
    DiskWrite {
        /// Site whose disk is used.
        site: SiteId,
        /// Page address.
        addr: DiskAddr,
    },
    /// Fire-and-forget one-page disk write (write-behind); completion is
    /// tracked and awaited by `DrainWrites`.
    DiskWriteAsync {
        /// Site whose disk is used.
        site: SiteId,
        /// Page address.
        addr: DiskAddr,
    },
    /// Fire-and-forget one-page disk read (used by the external load
    /// generator; nobody waits for it).
    DiskReadAsync {
        /// Site whose disk is used.
        site: SiteId,
        /// Page address.
        addr: DiskAddr,
    },
    /// Block until all of this process's outstanding async writes finish.
    DrainWrites,
    /// Occupy the shared network link for a message of `bytes` bytes (the
    /// process waits; used for the fault-RPC path — pipelined transfers go
    /// through remote channels instead).
    Wire {
        /// Message size in bytes.
        bytes: u64,
        /// True when the message is a full data page (counts towards the
        /// "pages sent" metric).
        data_page: bool,
    },
    /// Emit a page downstream; blocks while the channel is full.
    Emit {
        /// Destination channel.
        channel: ChannelId,
        /// The page.
        page: Page,
    },
    /// Close the downstream channel (end of stream).
    Close {
        /// The channel to close.
        channel: ChannelId,
    },
    /// Await the next page (or end-of-stream) on a channel. Must be the
    /// last action of its batch.
    AwaitInput {
        /// The channel to read.
        channel: ChannelId,
    },
    /// Sleep for a duration (load generator inter-arrival times).
    Sleep {
        /// How long.
        dur: SimDuration,
    },
    /// The process is finished.
    Done,
}

/// An operator process. `resume` is called with the result of the
/// previous batch's `AwaitInput` (or [`ResumeInput::None`]) and returns
/// the next batch of actions.
pub trait OperatorProc {
    /// Produce the next batch of actions.
    fn resume(&mut self, input: ResumeInput) -> Vec<Action>;

    /// Short label for diagnostics.
    fn label(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_is_copy_and_comparable() {
        let p = Page { tuples: 40 };
        let q = p;
        assert_eq!(p, q);
    }

    #[test]
    fn resume_input_variants() {
        assert_ne!(ResumeInput::None, ResumeInput::EndOfStream);
        assert_eq!(
            ResumeInput::Page(Page { tuples: 1 }),
            ResumeInput::Page(Page { tuples: 1 })
        );
    }
}
