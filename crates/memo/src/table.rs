//! The sharded memo table.
//!
//! Two-level cascades-style shape: a *group* per (workload spec ×
//! placement environment), each holding the compiled join-order plan per
//! (policy × objective) and the site-selected *winner* plan per (policy ×
//! objective × quantized cache-state) with the cost the optimizer proved.
//!
//! Concurrency: groups are distributed over `shards` independent
//! mutex-guarded maps; all maps are `BTreeMap`, so iteration order is the
//! key order and never the hash order. Safety: a probe only hits when the
//! stored witness bytes equal the probe's preimage *and* the entry's
//! generation is current — fingerprint collisions and stale entries are
//! counted and treated as misses, never served.
//!
//! Determinism: the table never consults wall clocks or RNGs. Under
//! concurrent serving, *which* probes hit depends on thread interleaving
//! (as does any cache), but a hit returns exactly the plan a cold
//! optimization of the same key would produce, so served results are
//! interleaving-independent.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use csqp_core::{Plan, PlanNode};
use csqp_workload::WorkloadSpec;

use crate::fingerprint::{CacheBuckets, CompiledProbe, Env, Fingerprint, SelectProbe};
use crate::stats::{MemoSnapshot, MemoStats};

/// Fixed per-entry bookkeeping estimate (keys, map nodes, ticks) added to
/// the witness and plan bytes when charging the byte budget.
const ENTRY_OVERHEAD: usize = 128;

/// Eviction protection bonus for compiled entries: one compiled plan feeds
/// every cache-state winner in its group, so it is worth roughly this many
/// ticks of extra residency.
const COMPILED_BONUS: u64 = 8;

/// Cap on the cost-derived protection bonus of winner entries.
const MAX_COST_BONUS: u64 = 16;

/// Configuration for a [`MemoTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoConfig {
    /// Total byte budget across the table (split evenly over shards).
    pub max_bytes: usize,
    /// Number of independent shards (≥ 1; callers typically match their
    /// event-loop shard count).
    pub shards: usize,
}

impl Default for MemoConfig {
    fn default() -> MemoConfig {
        MemoConfig {
            max_bytes: 64 << 20,
            shards: 8,
        }
    }
}

/// Key of a compiled entry within its group: (policy tag, objective tag).
type CompiledKey = (u8, u8);

/// Key of a winner entry within its group.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct WinnerKey {
    policy: u8,
    objective: u8,
    buckets: CacheBuckets,
}

#[derive(Debug, Clone)]
struct StoredEntry {
    fingerprint: Fingerprint,
    witness: Vec<u8>,
    plan: Plan,
    /// Proved cost — `None` for compiled entries (cost is proved at site
    /// selection, not at compile).
    cost: Option<f64>,
    generation: u64,
    last_used: u64,
    bytes: usize,
    hits: u64,
}

impl StoredEntry {
    /// Eviction protection score: LRU recency plus a deterministic bonus
    /// for entries that were expensive to prove. Lower is evicted first.
    fn protection(&self) -> u64 {
        let bonus = match self.cost {
            None => COMPILED_BONUS,
            Some(c) if c.is_finite() && c > 0.0 => (c.ln_1p() as u64).min(MAX_COST_BONUS),
            Some(_) => 0,
        };
        self.last_used.saturating_add(bonus)
    }
}

#[derive(Debug)]
struct Group {
    spec: WorkloadSpec,
    env: Env,
    compiled: BTreeMap<CompiledKey, StoredEntry>,
    winners: BTreeMap<WinnerKey, StoredEntry>,
}

#[derive(Debug, Default)]
struct Shard {
    groups: BTreeMap<Fingerprint, Group>,
    /// Logical clock: advanced on every probe or install that touches the
    /// shard. Entry recency is measured in these ticks, not wall time.
    tick: u64,
    bytes: usize,
}

/// Which layer an evictable entry lives in (used by the victim scan).
#[derive(Debug, Clone, PartialEq, Eq)]
enum EntryAddr {
    Compiled(Fingerprint, CompiledKey),
    Winner(Fingerprint, WinnerKey),
}

/// The memo table: deterministic, bounded, concurrency-safe.
#[derive(Debug)]
pub struct MemoTable {
    shards: Vec<Mutex<Shard>>,
    budget_per_shard: usize,
    generation: AtomicU64,
    stats: MemoStats,
}

/// Recover the guard from a poisoned mutex: the protected state is a plain
/// cache map that stays structurally valid across any panic point, and
/// serving must not dead-end because one worker died mid-probe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A winner-layer hit: the memoized plan and the cost proved when it was
/// first optimized.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedHit {
    /// The site-selected plan, byte-identical to a cold optimization.
    pub plan: Plan,
    /// The cost the optimizer proved at install time.
    pub cost: f64,
}

/// One live entry, exported for the `csqp-verify` memo-consistency pass.
#[derive(Debug, Clone)]
pub struct MemoEntryView {
    /// The group's workload spec.
    pub spec: WorkloadSpec,
    /// The group's placement environment.
    pub env: Env,
    /// Policy index ([`crate::fingerprint::policy_tag`]).
    pub policy: u8,
    /// Objective index ([`crate::fingerprint::objective_tag`]).
    pub objective: u8,
    /// Winner-layer cache state; `None` for compiled-layer entries.
    pub buckets: Option<CacheBuckets>,
    /// The stored plan.
    pub plan: Plan,
    /// The proved cost (winner layer only).
    pub cost: Option<f64>,
    /// Generation the entry was installed under.
    pub generation: u64,
    /// The entry fingerprint.
    pub fingerprint: Fingerprint,
    /// The preimage witness bytes the fingerprint was computed over.
    pub witness: Vec<u8>,
}

impl MemoTable {
    /// Create a table with the given budget and shard count.
    pub fn new(config: MemoConfig) -> MemoTable {
        let shards = config.shards.max(1);
        MemoTable {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            budget_per_shard: config.max_bytes / shards,
            generation: AtomicU64::new(0),
            stats: MemoStats::default(),
        }
    }

    /// The live counters.
    pub fn stats(&self) -> &MemoStats {
        &self.stats
    }

    /// Current invalidation generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Invalidate every entry installed so far: subsequent probes miss
    /// (never serve a stale plan) and drop stale entries lazily. Call on
    /// any catalog mutation the fingerprint does not capture.
    pub fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    fn shard_for(&self, group: Fingerprint) -> &Mutex<Shard> {
        let idx = (group.0[0] % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Probe the compiled layer. `None` is a miss (not present, stale
    /// generation, or witness collision — all counted).
    pub fn probe_compiled(&self, probe: &CompiledProbe) -> Option<Plan> {
        let generation = self.generation();
        let mut shard = lock(self.shard_for(probe.group));
        shard.tick += 1;
        let tick = shard.tick;
        let key = (probe.policy, probe.objective);
        let Some(group) = shard.groups.get_mut(&probe.group) else {
            self.stats.miss();
            return None;
        };
        if group.spec != probe.spec || group.env != probe.env {
            self.stats.collide();
            self.stats.miss();
            return None;
        }
        match group.compiled.get_mut(&key) {
            Some(entry) if entry.generation != generation => {
                let bytes = entry.bytes;
                group.compiled.remove(&key);
                shard.bytes -= bytes;
                self.stats.invalidate();
                self.stats.miss();
                None
            }
            Some(entry)
                if entry.fingerprint != probe.fingerprint || entry.witness != probe.witness =>
            {
                self.stats.collide();
                self.stats.miss();
                None
            }
            Some(entry) => {
                entry.last_used = tick;
                entry.hits += 1;
                self.stats.hit();
                Some(entry.plan.clone())
            }
            None => {
                self.stats.miss();
                None
            }
        }
    }

    /// Install a compiled plan for the probe's key.
    pub fn install_compiled(&self, probe: &CompiledProbe, plan: &Plan) {
        let entry = StoredEntry {
            fingerprint: probe.fingerprint,
            witness: probe.witness.clone(),
            plan: plan.clone(),
            cost: None,
            generation: self.generation(),
            last_used: 0,
            bytes: entry_bytes(&probe.witness, plan),
            hits: 0,
        };
        let mut shard = lock(self.shard_for(probe.group));
        shard.tick += 1;
        let tick = shard.tick;
        if !self.make_room(&mut shard, entry.bytes) {
            self.stats.reject();
            return;
        }
        let group = shard.groups.entry(probe.group).or_insert_with(|| Group {
            spec: probe.spec.clone(),
            env: probe.env,
            compiled: BTreeMap::new(),
            winners: BTreeMap::new(),
        });
        let key = (probe.policy, probe.objective);
        let mut entry = entry;
        entry.last_used = tick;
        let delta = entry.bytes;
        if let Some(old) = group.compiled.insert(key, entry) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += delta;
        self.stats.install();
    }

    /// Probe the winner layer. `None` is a miss (not present, stale
    /// generation, or witness collision — all counted).
    pub fn probe_selected(&self, probe: &SelectProbe) -> Option<SelectedHit> {
        let generation = self.generation();
        let mut shard = lock(self.shard_for(probe.group));
        shard.tick += 1;
        let tick = shard.tick;
        let key = WinnerKey {
            policy: probe.policy,
            objective: probe.objective,
            buckets: probe.buckets.clone(),
        };
        let Some(group) = shard.groups.get_mut(&probe.group) else {
            self.stats.miss();
            return None;
        };
        if group.spec != probe.spec || group.env != probe.env {
            self.stats.collide();
            self.stats.miss();
            return None;
        }
        match group.winners.get_mut(&key) {
            Some(entry) if entry.generation != generation => {
                let bytes = entry.bytes;
                group.winners.remove(&key);
                shard.bytes -= bytes;
                self.stats.invalidate();
                self.stats.miss();
                None
            }
            Some(entry)
                if entry.fingerprint != probe.fingerprint || entry.witness != probe.witness =>
            {
                self.stats.collide();
                self.stats.miss();
                None
            }
            Some(entry) => {
                entry.last_used = tick;
                entry.hits += 1;
                self.stats.hit();
                // Cost is finite at install time; the unwrap-free default
                // keeps the accessor total anyway.
                Some(SelectedHit {
                    plan: entry.plan.clone(),
                    cost: entry.cost.unwrap_or(f64::INFINITY),
                })
            }
            None => {
                self.stats.miss();
                None
            }
        }
    }

    /// Install a site-selected winner with its proved cost.
    pub fn install_selected(&self, probe: &SelectProbe, plan: &Plan, cost: f64) {
        let entry = StoredEntry {
            fingerprint: probe.fingerprint,
            witness: probe.witness.clone(),
            plan: plan.clone(),
            cost: Some(cost),
            generation: self.generation(),
            last_used: 0,
            bytes: entry_bytes(&probe.witness, plan),
            hits: 0,
        };
        let mut shard = lock(self.shard_for(probe.group));
        shard.tick += 1;
        let tick = shard.tick;
        if !self.make_room(&mut shard, entry.bytes) {
            self.stats.reject();
            return;
        }
        let group = shard.groups.entry(probe.group).or_insert_with(|| Group {
            spec: probe.spec.clone(),
            env: probe.env,
            compiled: BTreeMap::new(),
            winners: BTreeMap::new(),
        });
        let key = WinnerKey {
            policy: probe.policy,
            objective: probe.objective,
            buckets: probe.buckets.clone(),
        };
        let mut entry = entry;
        entry.last_used = tick;
        let delta = entry.bytes;
        if let Some(old) = group.winners.insert(key, entry) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += delta;
        self.stats.install();
    }

    /// Evict lowest-protection entries until `incoming` fits the shard
    /// budget. Returns false when the entry can never fit (larger than the
    /// whole shard budget).
    fn make_room(&self, shard: &mut Shard, incoming: usize) -> bool {
        if incoming > self.budget_per_shard {
            return false;
        }
        while shard.bytes + incoming > self.budget_per_shard {
            let Some(victim) = lowest_protection(shard) else {
                return shard.bytes + incoming <= self.budget_per_shard;
            };
            let removed = match &victim {
                EntryAddr::Compiled(g, key) => shard
                    .groups
                    .get_mut(g)
                    .and_then(|grp| grp.compiled.remove(key)),
                EntryAddr::Winner(g, key) => shard
                    .groups
                    .get_mut(g)
                    .and_then(|grp| grp.winners.remove(key)),
            };
            let Some(removed) = removed else {
                return false;
            };
            shard.bytes -= removed.bytes;
            self.stats.evict();
            let g = match victim {
                EntryAddr::Compiled(g, _) | EntryAddr::Winner(g, _) => g,
            };
            let empty = shard
                .groups
                .get(&g)
                .is_some_and(|grp| grp.compiled.is_empty() && grp.winners.is_empty());
            if empty {
                shard.groups.remove(&g);
            }
        }
        true
    }

    /// Point-in-time counters plus occupancy.
    pub fn snapshot(&self) -> MemoSnapshot {
        let mut bytes = 0u64;
        let mut entries = 0u64;
        for shard in &self.shards {
            let s = lock(shard);
            bytes += s.bytes as u64;
            entries += s
                .groups
                .values()
                .map(|g| (g.compiled.len() + g.winners.len()) as u64)
                .sum::<u64>();
        }
        MemoSnapshot {
            hits: self.stats.hits(),
            misses: self.stats.misses(),
            installs: self.stats.installs(),
            evictions: self.stats.evictions(),
            invalidated: self.stats.invalidated(),
            collisions: self.stats.collisions(),
            rejected: self.stats.rejected(),
            bytes,
            entries,
            generation: self.generation(),
        }
    }

    /// Clone out every live entry, in deterministic (shard, group, key)
    /// order — the input to the `csqp-verify` memo-consistency pass.
    pub fn export_entries(&self) -> Vec<MemoEntryView> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let s = lock(shard);
            for (gfp, group) in &s.groups {
                let _ = gfp;
                for ((policy, objective), e) in &group.compiled {
                    out.push(MemoEntryView {
                        spec: group.spec.clone(),
                        env: group.env,
                        policy: *policy,
                        objective: *objective,
                        buckets: None,
                        plan: e.plan.clone(),
                        cost: e.cost,
                        generation: e.generation,
                        fingerprint: e.fingerprint,
                        witness: e.witness.clone(),
                    });
                }
                for (key, e) in &group.winners {
                    out.push(MemoEntryView {
                        spec: group.spec.clone(),
                        env: group.env,
                        policy: key.policy,
                        objective: key.objective,
                        buckets: Some(key.buckets.clone()),
                        plan: e.plan.clone(),
                        cost: e.cost,
                        generation: e.generation,
                        fingerprint: e.fingerprint,
                        witness: e.witness.clone(),
                    });
                }
            }
        }
        out
    }
}

/// Estimated resident bytes of one entry.
fn entry_bytes(witness: &[u8], plan: &Plan) -> usize {
    witness.len() + std::mem::size_of::<PlanNode>() * plan.arena_len() + ENTRY_OVERHEAD
}

/// The shard's lowest-protection entry, scanning groups in key order so
/// ties break deterministically.
fn lowest_protection(shard: &Shard) -> Option<EntryAddr> {
    let mut best: Option<(u64, EntryAddr)> = None;
    let mut consider = |score: u64, addr: EntryAddr| match &best {
        Some((s, _)) if *s <= score => {}
        _ => best = Some((score, addr)),
    };
    for (gfp, group) in &shard.groups {
        for (key, e) in &group.compiled {
            consider(e.protection(), EntryAddr::Compiled(*gfp, *key));
        }
        for (key, e) in &group.winners {
            consider(e.protection(), EntryAddr::Winner(*gfp, key.clone()));
        }
    }
    best.map(|(_, addr)| addr)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::fingerprint::{CacheBuckets, CompiledProbe, SelectProbe};
    use csqp_catalog::RelId;
    use csqp_core::{Annotation, JoinTree, Policy};
    use csqp_cost::Objective;

    fn env() -> Env {
        Env {
            placement_seed: 42,
            num_servers: 4,
        }
    }

    fn spec(n: u32) -> WorkloadSpec {
        WorkloadSpec::Chain {
            n,
            selectivity: 1e-4,
        }
    }

    fn plan_for(spec: &WorkloadSpec) -> Plan {
        let q = spec.build();
        let rels: Vec<RelId> = (0..spec.num_relations()).map(RelId).collect();
        JoinTree::left_deep(&rels).into_plan(&q, Annotation::InnerRel, Annotation::PrimaryCopy)
    }

    fn winner_probe(n: u32, bucket: f64) -> (SelectProbe, Plan) {
        let s = spec(n);
        let plan = plan_for(&s);
        let probe = SelectProbe::new(
            &s,
            &plan,
            Policy::HybridShipping,
            Objective::ResponseTime,
            CacheBuckets::quantize(&[bucket]),
            env(),
        );
        (probe, plan)
    }

    #[test]
    fn probe_install_probe_round_trips() {
        let table = MemoTable::new(MemoConfig::default());
        let (probe, plan) = winner_probe(3, 0.25);
        assert!(table.probe_selected(&probe).is_none());
        table.install_selected(&probe, &plan, 12.5);
        let hit = table.probe_selected(&probe).unwrap();
        assert_eq!(hit.plan, plan);
        assert_eq!(hit.cost, 12.5);
        let snap = table.snapshot();
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.installs, 1);
        assert_eq!(snap.entries, 1);
        assert!(snap.bytes > 0);
    }

    #[test]
    fn compiled_layer_round_trips() {
        let table = MemoTable::new(MemoConfig::default());
        let s = spec(4);
        let plan = plan_for(&s);
        let probe = CompiledProbe::new(&s, Policy::QueryShipping, Objective::TotalCost, env());
        assert!(table.probe_compiled(&probe).is_none());
        table.install_compiled(&probe, &plan);
        assert_eq!(table.probe_compiled(&probe).unwrap(), plan);
    }

    #[test]
    fn generation_bump_yields_miss_never_stale() {
        let table = MemoTable::new(MemoConfig::default());
        let (probe, plan) = winner_probe(3, 0.5);
        table.install_selected(&probe, &plan, 1.0);
        assert!(table.probe_selected(&probe).is_some());
        table.bump_generation();
        // The stale entry is dropped, not served.
        assert!(table.probe_selected(&probe).is_none());
        let snap = table.snapshot();
        assert_eq!(snap.invalidated, 1);
        assert_eq!(snap.entries, 0);
        // Reinstall under the new generation hits again.
        table.install_selected(&probe, &plan, 1.0);
        assert!(table.probe_selected(&probe).is_some());
    }

    #[test]
    fn witness_mismatch_is_a_counted_miss() {
        let table = MemoTable::new(MemoConfig::default());
        let (probe, plan) = winner_probe(3, 0.25);
        table.install_selected(&probe, &plan, 1.0);
        // Forge a probe that claims the same fingerprints but carries a
        // different witness — the shape of a 128-bit collision.
        let mut forged = SelectProbe::new(
            &probe.spec,
            &plan,
            Policy::HybridShipping,
            Objective::TotalCost,
            CacheBuckets::quantize(&[0.25]),
            env(),
        );
        forged.group = probe.group;
        forged.fingerprint = probe.fingerprint;
        forged.policy = probe.policy;
        forged.objective = probe.objective;
        forged.buckets = probe.buckets.clone();
        assert!(table.probe_selected(&forged).is_none());
        assert_eq!(table.snapshot().collisions, 1);
        // The genuine probe still hits.
        assert!(table.probe_selected(&probe).is_some());
    }

    #[test]
    fn eviction_is_lru_with_cost_protection() {
        // Budget sized for roughly two entries in one shard.
        let (p0, plan0) = winner_probe(2, 0.0);
        let per_entry = entry_bytes(&p0.witness, &plan0);
        let table = MemoTable::new(MemoConfig {
            max_bytes: per_entry * 5 / 2,
            shards: 1,
        });
        table.install_selected(&p0, &plan0, 1.0);
        let (p1, plan1) = winner_probe(3, 0.0);
        table.install_selected(&p1, &plan1, 1.0);
        // Touch p1 so p0 is the LRU victim.
        assert!(table.probe_selected(&p1).is_some());
        let (p2, plan2) = winner_probe(4, 0.0);
        table.install_selected(&p2, &plan2, 1.0);
        let snap = table.snapshot();
        assert!(snap.evictions >= 1, "expected an eviction: {snap:?}");
        assert!(table.probe_selected(&p0).is_none(), "LRU entry survived");
        assert!(table.probe_selected(&p2).is_some());
        assert!(snap.bytes <= per_entry as u64 * 3);
    }

    #[test]
    fn eviction_is_deterministic() {
        let runs: Vec<Vec<bool>> = (0..2)
            .map(|_| {
                let (p0, plan0) = winner_probe(2, 0.0);
                let per_entry = entry_bytes(&p0.witness, &plan0);
                let table = MemoTable::new(MemoConfig {
                    max_bytes: per_entry * 7 / 2,
                    shards: 1,
                });
                let probes: Vec<(SelectProbe, Plan)> =
                    (2..8).map(|n| winner_probe(n, 0.25)).collect();
                for (p, plan) in &probes {
                    table.install_selected(p, plan, f64::from(p.spec.num_relations()));
                }
                probes
                    .iter()
                    .map(|(p, _)| table.probe_selected(p).is_some())
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert!(runs[0].iter().any(|h| *h), "everything was evicted");
    }

    #[test]
    fn oversized_entries_are_rejected_not_thrashed() {
        let (p, plan) = winner_probe(5, 0.25);
        let table = MemoTable::new(MemoConfig {
            max_bytes: 8,
            shards: 1,
        });
        table.install_selected(&p, &plan, 1.0);
        let snap = table.snapshot();
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.entries, 0);
        assert_eq!(snap.evictions, 0);
    }

    #[test]
    fn export_is_deterministic_and_complete() {
        let table = MemoTable::new(MemoConfig::default());
        let s = spec(3);
        let plan = plan_for(&s);
        let cp = CompiledProbe::new(&s, Policy::HybridShipping, Objective::ResponseTime, env());
        table.install_compiled(&cp, &plan);
        let (wp, wplan) = winner_probe(3, 0.25);
        table.install_selected(&wp, &wplan, 3.0);
        let views = table.export_entries();
        assert_eq!(views.len(), 2);
        assert!(views.iter().any(|v| v.buckets.is_none()));
        assert!(views
            .iter()
            .any(|v| v.buckets.is_some() && v.cost == Some(3.0)));
        for v in &views {
            assert_eq!(
                v.fingerprint,
                Fingerprint::of(&crate::fingerprint::Preimage::from_raw(&v.witness)),
                "stored fingerprint must re-derive from its witness"
            );
        }
    }

    #[test]
    fn shards_partition_groups() {
        let table = MemoTable::new(MemoConfig {
            max_bytes: 64 << 20,
            shards: 4,
        });
        for n in 2..10 {
            let (p, plan) = winner_probe(n, 0.0);
            table.install_selected(&p, &plan, 1.0);
        }
        assert_eq!(table.snapshot().entries, 8);
        for n in 2..10 {
            let (p, _) = winner_probe(n, 0.0);
            assert!(table.probe_selected(&p).is_some());
        }
    }
}
