//! Memo counters, exported into the serving STATS frame.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic memo counters. All relaxed: the counters are observability,
/// not synchronization — entry visibility is guarded by the shard mutexes.
#[derive(Debug, Default)]
pub struct MemoStats {
    hits: AtomicU64,
    misses: AtomicU64,
    installs: AtomicU64,
    evictions: AtomicU64,
    invalidated: AtomicU64,
    collisions: AtomicU64,
    rejected: AtomicU64,
}

impl MemoStats {
    pub(crate) fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn install(&self) {
        self.installs.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn evict(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn invalidate(&self) {
        self.invalidated.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn collide(&self) {
        self.collisions.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
    /// Misses so far (includes collision and stale-generation misses).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
    /// Entries installed.
    pub fn installs(&self) -> u64 {
        self.installs.load(Ordering::Relaxed)
    }
    /// Entries evicted under byte-budget pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
    /// Entries dropped because their generation was stale.
    pub fn invalidated(&self) -> u64 {
        self.invalidated.load(Ordering::Relaxed)
    }
    /// Probes whose fingerprint matched but whose witness bytes did not.
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }
    /// Installs refused because a single entry exceeded the shard budget.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// A point-in-time copy of the memo counters plus table occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoSnapshot {
    /// Probe hits.
    pub hits: u64,
    /// Probe misses (any cause).
    pub misses: u64,
    /// Entries installed.
    pub installs: u64,
    /// Entries evicted under budget pressure.
    pub evictions: u64,
    /// Entries lazily dropped after a generation bump.
    pub invalidated: u64,
    /// Witness mismatches on fingerprint-equal probes.
    pub collisions: u64,
    /// Installs refused outright (entry larger than a shard budget).
    pub rejected: u64,
    /// Estimated resident bytes across all shards.
    pub bytes: u64,
    /// Live entries (compiled + winner) across all shards.
    pub entries: u64,
    /// Current invalidation generation.
    pub generation: u64,
}
