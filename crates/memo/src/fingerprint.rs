//! Structural fingerprints for memo groups and entries.
//!
//! A fingerprint is a 128-bit hash of a *typed byte preimage* — never of a
//! formatted string. The preimage encodes the workload spec parameters, the
//! compiled plan's postorder structure, the policy/objective pair, the
//! quantized client-cache state, and the placement environment, each value
//! prefixed with a type tag so that distinct field sequences can never
//! serialize to the same bytes. The preimage itself is retained as a
//! *witness*: a probe only hits when the stored witness bytes compare equal,
//! so a 128-bit collision is counted and treated as a miss rather than ever
//! serving a foreign plan.

use csqp_core::{Annotation, LogicalOp, Plan, Policy};
use csqp_cost::Objective;
use csqp_workload::WorkloadSpec;

/// 64-bit FNV-1a over `bytes` starting from `basis`.
#[inline]
fn fnv1a64(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Standard FNV-1a 64 offset basis.
const FNV_BASIS_A: u64 = 0xcbf2_9ce4_8422_2325;
/// Second, independent stream basis (the standard basis re-mixed), giving
/// the fingerprint its 128 bits.
const FNV_BASIS_B: u64 = 0x9ae1_6a3b_2f90_404f;

/// A 128-bit structural fingerprint (two independent FNV-1a streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub [u64; 2]);

impl Fingerprint {
    /// Hash a preimage.
    pub fn of(preimage: &Preimage) -> Fingerprint {
        let bytes = preimage.bytes();
        Fingerprint([fnv1a64(FNV_BASIS_A, bytes), fnv1a64(FNV_BASIS_B, bytes)])
    }

    /// Derive a deterministic RNG seed from this fingerprint and a
    /// purpose-distinguishing salt. Both the memoized and the cold
    /// optimization paths seed their annealing streams from this, which is
    /// what makes a memo hit byte-identical to a cold run.
    #[inline]
    pub fn seed(self, salt: u64) -> u64 {
        (self.0[0].rotate_left(17) ^ self.0[1]).wrapping_add(salt)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

/// Type tags prefixed to every preimage field. Tags make the encoding
/// prefix-free per field kind: `push_u32(1), push_u32(2)` and
/// `push_u64(...)` can never produce identical byte runs.
mod tag {
    pub const U8: u8 = 0x01;
    pub const U32: u8 = 0x02;
    pub const U64: u8 = 0x03;
    pub const F64: u8 = 0x04;
    pub const SLICE: u8 = 0x05;
    pub const SECTION: u8 = 0x06;
}

/// A typed byte preimage under construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Preimage {
    bytes: Vec<u8>,
}

impl Preimage {
    /// Start an empty preimage.
    pub fn new() -> Preimage {
        Preimage::default()
    }

    /// Rebuild a preimage from witness bytes exported by the table — the
    /// verify pass re-derives fingerprints from stored witnesses with this.
    pub fn from_raw(bytes: &[u8]) -> Preimage {
        Preimage {
            bytes: bytes.to_vec(),
        }
    }

    /// The accumulated bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Open a named section (a domain separator between field groups).
    pub fn section(&mut self, name: &str) {
        self.bytes.push(tag::SECTION);
        self.push_raw_len(name.len());
        self.bytes.extend_from_slice(name.as_bytes());
    }

    /// Append a tagged byte.
    pub fn push_u8(&mut self, v: u8) {
        self.bytes.push(tag::U8);
        self.bytes.push(v);
    }

    /// Append a tagged 32-bit value.
    pub fn push_u32(&mut self, v: u32) {
        self.bytes.push(tag::U32);
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a tagged 64-bit value.
    pub fn push_u64(&mut self, v: u64) {
        self.bytes.push(tag::U64);
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a float by its exact bit pattern (no formatting, no rounding).
    pub fn push_f64(&mut self, v: f64) {
        self.bytes.push(tag::F64);
        self.bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a length-prefixed byte slice.
    pub fn push_slice(&mut self, v: &[u8]) {
        self.bytes.push(tag::SLICE);
        self.push_raw_len(v.len());
        self.bytes.extend_from_slice(v);
    }

    fn push_raw_len(&mut self, len: usize) {
        self.bytes.extend_from_slice(&(len as u64).to_le_bytes());
    }

    /// Encode a workload spec by its typed parameters.
    pub fn push_spec(&mut self, spec: &WorkloadSpec) {
        self.section("spec");
        match *spec {
            WorkloadSpec::Chain { n, selectivity } => {
                self.push_u8(0);
                self.push_u32(n);
                self.push_f64(selectivity);
            }
            WorkloadSpec::Star { n, selectivity } => {
                self.push_u8(1);
                self.push_u32(n);
                self.push_f64(selectivity);
            }
            WorkloadSpec::Spj {
                n,
                join_sel,
                selection,
                every_k,
            } => {
                self.push_u8(2);
                self.push_u32(n);
                self.push_f64(join_sel);
                self.push_f64(selection);
                self.push_u32(every_k);
            }
        }
    }

    /// Encode a plan structurally: reachable nodes in postorder, ids
    /// remapped to postorder positions. Unreachable arena garbage left by
    /// optimizer tree surgery does not perturb the fingerprint, and two
    /// plans encode identically iff they are structurally identical after
    /// [`Plan::compact`].
    pub fn push_plan(&mut self, plan: &Plan) {
        self.section("plan");
        let order = plan.postorder();
        let mut remap = vec![u32::MAX; plan.arena_len()];
        for (pos, id) in order.iter().enumerate() {
            remap[id.index()] = pos as u32;
        }
        self.push_u32(order.len() as u32);
        for id in &order {
            let n = plan.node(*id);
            match n.op {
                LogicalOp::Display => self.push_u8(0),
                LogicalOp::Join => self.push_u8(1),
                LogicalOp::Select { rel } => {
                    self.push_u8(2);
                    self.push_u32(rel.0);
                }
                LogicalOp::Aggregate { groups } => {
                    self.push_u8(3);
                    self.push_u64(groups);
                }
                LogicalOp::Scan { rel } => {
                    self.push_u8(4);
                    self.push_u32(rel.0);
                }
            }
            self.push_u8(annotation_tag(n.ann));
            for c in n.children {
                match c {
                    Some(cid) => self.push_u32(remap[cid.index()]),
                    None => self.push_u32(u32::MAX),
                }
            }
        }
    }

    /// Encode the placement environment.
    pub fn push_env(&mut self, env: &Env) {
        self.section("env");
        self.push_u64(env.placement_seed);
        self.push_u32(env.num_servers);
    }

    /// Encode the quantized per-relation cache levels.
    pub fn push_buckets(&mut self, buckets: &CacheBuckets) {
        self.section("cache");
        self.push_slice(buckets.levels());
    }
}

/// Stable index of a policy (position in [`Policy::ALL`]).
pub fn policy_tag(policy: Policy) -> u8 {
    match policy {
        Policy::DataShipping => 0,
        Policy::QueryShipping => 1,
        Policy::HybridShipping => 2,
    }
}

/// Stable index of an objective.
pub fn objective_tag(objective: Objective) -> u8 {
    match objective {
        Objective::Communication => 0,
        Objective::ResponseTime => 1,
        Objective::TotalCost => 2,
    }
}

/// Stable index of an annotation (position in [`Annotation::ALL`]).
fn annotation_tag(ann: Annotation) -> u8 {
    match ann {
        Annotation::Client => 0,
        Annotation::Consumer => 1,
        Annotation::Producer => 2,
        Annotation::InnerRel => 3,
        Annotation::OuterRel => 4,
        Annotation::PrimaryCopy => 5,
    }
}

/// The placement environment a server materializes queries under. Two
/// servers with different placements must never share memo entries, so the
/// environment is part of every group fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Env {
    /// The server's placement seed (`ServerConfig::placement_seed`).
    pub placement_seed: u64,
    /// Number of server sites in the simulated topology.
    pub num_servers: u32,
}

/// Number of quantization steps for a client-cache fraction: fractions are
/// rounded to multiples of `1/CACHE_QUANT_STEPS`, giving
/// `CACHE_QUANT_STEPS + 1` buckets (0 ..= 8). The load generator's declared
/// fractions (0, 0.25, 0.5) are all exactly representable, so quantization
/// is lossless for the seeded mixes while still bounding the key space for
/// arbitrary clients.
pub const CACHE_QUANT_STEPS: u8 = 8;

/// Quantize a declared cache fraction to its bucket index.
pub fn quantize_fraction(f: f64) -> u8 {
    let clamped = f.clamp(0.0, 1.0);
    (clamped * f64::from(CACHE_QUANT_STEPS)).round() as u8
}

/// The representative fraction a bucket plans with.
pub fn bucket_fraction(bucket: u8) -> f64 {
    f64::from(bucket.min(CACHE_QUANT_STEPS)) / f64::from(CACHE_QUANT_STEPS)
}

/// Quantized per-relation client-cache levels, in relation-id order. This
/// is the "quantized client-cache-state" axis of a memo winner key.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheBuckets {
    levels: Vec<u8>,
}

impl CacheBuckets {
    /// Quantize declared fractions, one per relation in relation-id order.
    /// Trailing zero levels are trimmed so "nothing cached" encodes
    /// identically regardless of relation count.
    pub fn quantize(fractions: &[f64]) -> CacheBuckets {
        let mut levels: Vec<u8> = fractions.iter().map(|&f| quantize_fraction(f)).collect();
        while levels.last() == Some(&0) {
            levels.pop();
        }
        CacheBuckets { levels }
    }

    /// The raw bucket indices.
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// The representative fractions the planner should apply, as
    /// `(relation index, fraction)` pairs for non-zero buckets.
    pub fn planning_fractions(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.levels
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(i, &b)| (i as u32, bucket_fraction(b)))
    }
}

impl std::fmt::Display for CacheBuckets {
    /// Renders the levels as `b<l0>.<l1>…`; the empty (nothing-cached)
    /// state renders as `b-`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.levels.is_empty() {
            return f.write_str("b-");
        }
        f.write_str("b")?;
        for (i, level) in self.levels.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{level}")?;
        }
        Ok(())
    }
}

/// A fully keyed probe for the *compiled* layer of a group: the join-order
/// plan produced at compile time, which depends on the spec and the
/// policy/objective pair but not on runtime cache state.
#[derive(Debug, Clone)]
pub struct CompiledProbe {
    /// Group identity: fingerprint of (spec, env).
    pub group: Fingerprint,
    /// Entry identity: fingerprint of the full compiled-key preimage.
    pub fingerprint: Fingerprint,
    /// The exact preimage bytes, retained as a collision witness.
    pub witness: Vec<u8>,
    /// The spec this probe keys.
    pub spec: WorkloadSpec,
    /// The environment this probe keys.
    pub env: Env,
    /// Policy index ([`policy_tag`]).
    pub policy: u8,
    /// Objective index ([`objective_tag`]).
    pub objective: u8,
}

impl CompiledProbe {
    /// Build the probe for `(spec, policy, objective)` under `env`.
    pub fn new(
        spec: &WorkloadSpec,
        policy: Policy,
        objective: Objective,
        env: Env,
    ) -> CompiledProbe {
        let group = group_fingerprint(spec, env);
        let mut p = Preimage::new();
        p.section("compiled");
        p.push_spec(spec);
        p.push_env(&env);
        p.push_u8(policy_tag(policy));
        p.push_u8(objective_tag(objective));
        CompiledProbe {
            group,
            fingerprint: Fingerprint::of(&p),
            witness: p.bytes().to_vec(),
            spec: spec.clone(),
            env,
            policy: policy_tag(policy),
            objective: objective_tag(objective),
        }
    }

    /// The deterministic compile-stream seed for this key.
    pub fn compile_seed(&self) -> u64 {
        self.fingerprint.seed(SEED_SALT_COMPILE)
    }
}

/// A fully keyed probe for the *winner* layer of a group: the site-selected
/// annotated plan for one (policy × objective × cache-bucket) cell, keyed
/// over the compiled plan it was selected from.
#[derive(Debug, Clone)]
pub struct SelectProbe {
    /// Group identity: fingerprint of (spec, env).
    pub group: Fingerprint,
    /// Entry identity: fingerprint of the full winner-key preimage
    /// (including the compiled plan's structure).
    pub fingerprint: Fingerprint,
    /// The exact preimage bytes, retained as a collision witness.
    pub witness: Vec<u8>,
    /// The spec this probe keys.
    pub spec: WorkloadSpec,
    /// The environment this probe keys.
    pub env: Env,
    /// Policy index ([`policy_tag`]).
    pub policy: u8,
    /// Objective index ([`objective_tag`]).
    pub objective: u8,
    /// Quantized client-cache state.
    pub buckets: CacheBuckets,
}

impl SelectProbe {
    /// Build the probe for site selection of `compiled` under the given
    /// policy/objective/cache-state cell.
    pub fn new(
        spec: &WorkloadSpec,
        compiled: &Plan,
        policy: Policy,
        objective: Objective,
        buckets: CacheBuckets,
        env: Env,
    ) -> SelectProbe {
        let group = group_fingerprint(spec, env);
        let mut p = Preimage::new();
        p.section("winner");
        p.push_spec(spec);
        p.push_env(&env);
        p.push_u8(policy_tag(policy));
        p.push_u8(objective_tag(objective));
        p.push_buckets(&buckets);
        p.push_plan(compiled);
        SelectProbe {
            group,
            fingerprint: Fingerprint::of(&p),
            witness: p.bytes().to_vec(),
            spec: spec.clone(),
            env,
            policy: policy_tag(policy),
            objective: objective_tag(objective),
            buckets,
        }
    }

    /// The deterministic site-selection annealing seed for this key. Cold
    /// and memoized runs both use it, so a hit is byte-identical to a miss
    /// re-optimized from scratch.
    pub fn select_seed(&self) -> u64 {
        self.fingerprint.seed(SEED_SALT_SELECT)
    }
}

/// Salt for compile-stream seeds derived from fingerprints.
pub const SEED_SALT_COMPILE: u64 = 0xC044_11ED;
/// Salt for site-selection annealing seeds derived from fingerprints.
pub const SEED_SALT_SELECT: u64 = 0x5E1E_C7ED;

/// The group key: fingerprint of (spec, env) alone — the logical-plan
/// group all compiled/winner entries for that workload hang off.
pub fn group_fingerprint(spec: &WorkloadSpec, env: Env) -> Fingerprint {
    let mut p = Preimage::new();
    p.section("group");
    p.push_spec(spec);
    p.push_env(&env);
    Fingerprint::of(&p)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use csqp_catalog::RelId;
    use csqp_core::JoinTree;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::Chain {
            n: 3,
            selectivity: 1e-4,
        }
    }

    fn env() -> Env {
        Env {
            placement_seed: 7,
            num_servers: 4,
        }
    }

    fn a_plan(spec: &WorkloadSpec) -> Plan {
        let q = spec.build();
        JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]).into_plan(
            &q,
            Annotation::InnerRel,
            Annotation::PrimaryCopy,
        )
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let s = spec();
        let f1 = group_fingerprint(&s, env());
        let f2 = group_fingerprint(&s, env());
        assert_eq!(f1, f2);
        let other = WorkloadSpec::Chain {
            n: 4,
            selectivity: 1e-4,
        };
        assert_ne!(f1, group_fingerprint(&other, env()));
        let other_env = Env {
            placement_seed: 8,
            num_servers: 4,
        };
        assert_ne!(f1, group_fingerprint(&s, other_env));
    }

    #[test]
    fn plan_encoding_ignores_arena_garbage() {
        let s = spec();
        let plan = a_plan(&s);
        let mut dirty = plan.clone();
        dirty.push(csqp_core::PlanNode {
            op: LogicalOp::Scan { rel: RelId(0) },
            ann: Annotation::Client,
            children: [None, None],
        });
        let mut a = Preimage::new();
        a.push_plan(&plan);
        let mut b = Preimage::new();
        b.push_plan(&dirty);
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn plan_encoding_sees_annotations() {
        let s = spec();
        let plan = a_plan(&s);
        let mut rean = plan.clone();
        let scan = rean.scan_nodes()[0];
        rean.node_mut(scan).ann = Annotation::Client;
        let mut a = Preimage::new();
        a.push_plan(&plan);
        let mut b = Preimage::new();
        b.push_plan(&rean);
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn quantization_is_exact_on_the_load_mix() {
        for (f, expect) in [(0.0, 0), (0.25, 2), (0.5, 4), (1.0, 8)] {
            let b = quantize_fraction(f);
            assert_eq!(b, expect);
            assert_eq!(bucket_fraction(b), f);
        }
        // Out-of-range declarations clamp instead of panicking.
        assert_eq!(quantize_fraction(-0.5), 0);
        assert_eq!(quantize_fraction(7.0), CACHE_QUANT_STEPS);
    }

    #[test]
    fn buckets_trim_trailing_zeros() {
        let a = CacheBuckets::quantize(&[0.25, 0.0, 0.0]);
        let b = CacheBuckets::quantize(&[0.25]);
        assert_eq!(a, b);
        assert_eq!(a.levels(), &[2]);
        let none = CacheBuckets::quantize(&[0.0, 0.0]);
        assert_eq!(none.levels(), &[] as &[u8]);
        let fr: Vec<(u32, f64)> = a.planning_fractions().collect();
        assert_eq!(fr, vec![(0, 0.25)]);
    }

    #[test]
    fn probes_distinguish_every_axis() {
        let s = spec();
        let plan = a_plan(&s);
        let base = SelectProbe::new(
            &s,
            &plan,
            Policy::HybridShipping,
            Objective::ResponseTime,
            CacheBuckets::quantize(&[0.25]),
            env(),
        );
        let by_policy = SelectProbe::new(
            &s,
            &plan,
            Policy::QueryShipping,
            Objective::ResponseTime,
            CacheBuckets::quantize(&[0.25]),
            env(),
        );
        let by_objective = SelectProbe::new(
            &s,
            &plan,
            Policy::HybridShipping,
            Objective::TotalCost,
            CacheBuckets::quantize(&[0.25]),
            env(),
        );
        let by_cache = SelectProbe::new(
            &s,
            &plan,
            Policy::HybridShipping,
            Objective::ResponseTime,
            CacheBuckets::quantize(&[0.5]),
            env(),
        );
        for other in [&by_policy, &by_objective, &by_cache] {
            assert_ne!(base.fingerprint, other.fingerprint);
            assert_ne!(base.witness, other.witness);
            assert_ne!(base.select_seed(), other.select_seed());
        }
        // Same key ⇒ same fingerprint, witness, and derived seed.
        let again = SelectProbe::new(
            &s,
            &plan,
            Policy::HybridShipping,
            Objective::ResponseTime,
            CacheBuckets::quantize(&[0.25]),
            env(),
        );
        assert_eq!(base.fingerprint, again.fingerprint);
        assert_eq!(base.witness, again.witness);
        assert_eq!(base.select_seed(), again.select_seed());
    }

    #[test]
    fn compiled_probe_is_cache_state_independent() {
        let s = spec();
        let a = CompiledProbe::new(&s, Policy::HybridShipping, Objective::ResponseTime, env());
        let b = CompiledProbe::new(&s, Policy::HybridShipping, Objective::ResponseTime, env());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.compile_seed(), b.compile_seed());
        let c = CompiledProbe::new(&s, Policy::DataShipping, Objective::ResponseTime, env());
        assert_ne!(a.fingerprint, c.fingerprint);
    }
}
