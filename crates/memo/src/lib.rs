//! `csqp-memo` — a cascades-style memo table for runtime site selection.
//!
//! The paper's two-step architecture (§5) re-runs site selection per query;
//! at production QPS, structurally identical queries from different clients
//! repeat the same annealing work. This crate memoizes that work over
//! *logical-plan groups*: one group per (workload spec × placement
//! environment), each storing the compiled join-order plan per (policy ×
//! objective) and the best site-selected plan per (policy × objective ×
//! quantized client-cache state) together with the cost the optimizer
//! proved.
//!
//! Design pillars (DESIGN.md §13):
//!
//! * **Structural fingerprints, not strings.** Keys are 128-bit hashes of a
//!   typed byte preimage ([`Preimage`]); the preimage is retained as a
//!   witness and compared on every probe, so a fingerprint collision is
//!   counted and misses — a foreign plan is structurally impossible to
//!   serve.
//! * **Determinism.** No wall clocks, no RNG, no hash-order iteration
//!   (every map is a `BTreeMap`). Optimizer seeds derive from the
//!   fingerprint ([`Fingerprint::seed`]), so a memo hit is byte-identical
//!   to what a cold optimization of the same key would produce.
//! * **Bounded.** LRU-with-cost-protection eviction under a configurable
//!   byte budget ([`MemoConfig::max_bytes`]), sharded for concurrency.
//! * **Invalidation.** A table-wide generation ([`MemoTable::bump_generation`])
//!   lazily drops entries installed before any catalog mutation the
//!   fingerprint does not capture; stale entries miss, never serve.

pub mod fingerprint;
pub mod stats;
pub mod table;

pub use fingerprint::{
    bucket_fraction, group_fingerprint, objective_tag, policy_tag, quantize_fraction, CacheBuckets,
    CompiledProbe, Env, Fingerprint, Preimage, SelectProbe, CACHE_QUANT_STEPS, SEED_SALT_COMPILE,
    SEED_SALT_SELECT,
};
pub use stats::{MemoSnapshot, MemoStats};
pub use table::{MemoConfig, MemoEntryView, MemoTable, SelectedHit};
