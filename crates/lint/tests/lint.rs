//! Integration tests: every fixture trips exactly its intended rule,
//! and the workspace itself is lint-clean (the same gate `csqp-lint`
//! and CI enforce).

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};

use csqp_lint::{lint_workspace, Linter, ALLOWLIST};
use csqp_verify::DiagCode;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lint one fixture with an empty allowlist; return the codes found.
fn codes(name: &str) -> Vec<DiagCode> {
    let mut l = Linter::with_allows(&[]);
    let ds = l.lint_source(name, &fixture(name));
    assert!(l.finish().is_empty(), "no allows, so nothing can go stale");
    ds.iter().map(|d| d.code).collect()
}

#[test]
fn wall_clock_fixture_trips_only_wall_clock_use() {
    let found = codes("wall_clock.rs");
    assert!(!found.is_empty(), "fixture must trip");
    assert!(
        found.iter().all(|&c| c == DiagCode::WallClockUse),
        "{found:?}"
    );
    // Both the Instant::now and the thread::sleep are caught.
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn unseeded_rng_fixture_trips_only_unseeded_rng() {
    let found = codes("unseeded_rng.rs");
    assert_eq!(found, vec![DiagCode::UnseededRng], "{found:?}");
}

#[test]
fn hash_iter_fixture_trips_only_hash_iter_order() {
    let found = codes("hash_iter.rs");
    assert!(!found.is_empty(), "fixture must trip");
    assert!(
        found.iter().all(|&c| c == DiagCode::HashIterOrder),
        "{found:?}"
    );
    // The `use` and both HashMap mentions in signatures are caught.
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn unbounded_channel_fixture_trips_only_unbounded_channel() {
    let found = codes("unbounded_channel.rs");
    assert!(!found.is_empty(), "fixture must trip");
    assert!(
        found.iter().all(|&c| c == DiagCode::UnboundedChannel),
        "{found:?}"
    );
    // Exactly the unbounded constructor and the lock-across-recv; the
    // sync_channel and the unlocked recv stay quiet.
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn catalog_mutation_fixture_trips_only_catalog_mutation() {
    let found = codes("catalog_mutation.rs");
    assert!(!found.is_empty(), "fixture must trip");
    assert!(
        found.iter().all(|&c| c == DiagCode::CatalogMutation),
        "{found:?}"
    );
    // Both the .place(…) and the .set_cached_fraction(…) are caught; the
    // commentary mentioning them is stripped first.
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn wire_code_fixture_trips_only_wire_code_coverage() {
    let mut l = Linter::with_allows(&[]);
    let ds = l.lint_source("wire_code.rs", &fixture("wire_code.rs"));
    assert_eq!(ds.len(), 1, "{ds:?}");
    assert_eq!(ds[0].code, DiagCode::WireCodeCoverage);
    assert!(
        ds[0].detail.contains("Forgotten") && ds[0].detail.contains("decode"),
        "names the hole: {}",
        ds[0].detail
    );
}

#[test]
fn diagnostics_carry_file_and_line_anchors() {
    let mut l = Linter::with_allows(&[]);
    let ds = l.lint_source("wall_clock.rs", &fixture("wall_clock.rs"));
    for d in &ds {
        let path = d.path.as_deref().expect("every finding is anchored");
        let (file, line) = path.split_once(':').expect("file:line format");
        assert_eq!(file, "wall_clock.rs");
        assert!(line.parse::<usize>().expect("numeric line") > 0);
    }
}

#[test]
fn memo_crate_is_clean_with_no_exemptions() {
    // Memo hits feed served plans (and thus digests) directly, so the
    // memo crate must satisfy every determinism lint — no wall clock,
    // no unseeded RNG, no hash-ordered collections — without a single
    // allowlist waiver, and must never quietly acquire one.
    assert!(
        ALLOWLIST
            .iter()
            .all(|a| !a.path.starts_with("crates/memo/")),
        "the memo crate must not carry lint exemptions"
    );
    let src_dir: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../memo/src");
    let mut linter = Linter::with_allows(&[]);
    let mut scanned = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&src_dir)
        .expect("memo crate sources exist")
        .collect::<Result<_, _>>()
        .expect("readable");
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.ends_with(".rs") {
            continue;
        }
        scanned += 1;
        let source = std::fs::read_to_string(entry.path()).expect("readable source");
        let diags = linter.lint_source(&format!("crates/memo/src/{name}"), &source);
        assert!(
            diags.is_empty(),
            "crates/memo/src/{name} must be clean: {diags:?}"
        );
    }
    assert!(scanned >= 4, "found the memo sources ({scanned} files)");
    assert!(linter.finish().is_empty());
}

#[test]
fn workspace_is_lint_clean() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let run = lint_workspace(&root).expect("scan workspace");
    assert!(
        run.files_scanned > 100,
        "the walker found the workspace ({} files)",
        run.files_scanned
    );
    assert!(
        run.report.is_clean(),
        "workspace must stay lint-clean:\n{}",
        run.report
    );
}
