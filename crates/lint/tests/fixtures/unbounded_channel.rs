//! Fixture: trips only the `unbounded-channel` rule — once for the
//! unbounded constructor, once for a lock held across a blocking recv.
//! The bounded constructor and the unlocked recv below must NOT trip.

use std::sync::mpsc;
use std::sync::Mutex;

pub fn leaky() {
    // Finding 1: no backpressure.
    let (tx, rx) = mpsc::channel::<u32>();
    tx.send(1).unwrap();

    // Finding 2: guard held while parked in recv.
    let shared = Mutex::new(rx);
    let _v = shared.lock().unwrap().recv().unwrap();
}

pub fn fine() {
    // Bounded: carries its own backpressure, must not trip.
    let (tx, rx) = mpsc::sync_channel::<u32>(4);
    tx.send(2).unwrap();
    // Blocking recv without a lock on the line: must not trip.
    let _v = rx.recv().unwrap();
}
