//! Fixture: trips `hash-iter-order`. Folding a digest over HashMap
//! iteration order makes the digest depend on the hasher's random keys.
//! Not compiled; scanned by `tests/lint.rs`.

use std::collections::HashMap;

/// Digests results in whatever order the map yields them.
pub fn digest(results: &HashMap<u64, u64>) -> u64 {
    let mut d = 0xcbf29ce484222325u64;
    for (k, v) in results {
        d = (d ^ k ^ v).wrapping_mul(0x100000001b3);
    }
    d
}
