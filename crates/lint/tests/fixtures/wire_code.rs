//! Fixture: trips `wire-code-coverage`. `Forgotten` is encoded onto the
//! wire but the decode table silently drops it, so a peer can receive a
//! code it cannot interpret. Not compiled; scanned by `tests/lint.rs`.

/// A wire error vocabulary with a hole in its decode table.
pub enum ErrorCode {
    /// Round-trips.
    Known,
    /// Encoded, never decoded.
    Forgotten,
}

impl ErrorCode {
    /// Encode table: complete.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Known => "known",
            ErrorCode::Forgotten => "forgotten",
        }
    }

    /// Decode table: missing `Forgotten`.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        match s {
            "known" => Some(ErrorCode::Known),
            _ => None,
        }
    }
}
