//! Fixture: trips `unseeded-rng`. Entropy-seeded randomness makes a run
//! unreproducible; every random stream must derive from the experiment
//! seed. Not compiled; scanned by `tests/lint.rs`.

/// Picks a "random" placement that can never be replayed.
pub fn place() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
