//! Fixture: direct catalog mutation outside the coordinator/epoch API.
//! Intentionally dirty — never compiled, only linted by the fixture
//! tests (this directory is excluded from the workspace walk).

pub fn rebalance(catalog: &mut Catalog) {
    // Moving a primary copy without publishing an epoch desyncs every
    // replica silently.
    catalog.place(RelId(0), SiteId::server(2));
    // So does poking a cached fraction the replicas already priced.
    catalog.set_cached_fraction(RelId(0), 0.5);
}
