//! Fixture: trips `wall-clock-use`. A "simulation" that secretly reads
//! the machine clock — exactly the bug class the rule exists to catch.
//! Not compiled; scanned by `tests/lint.rs`.

use std::time::Instant;

/// Returns elapsed real time as if it were a simulated cost.
pub fn simulated_cost() -> f64 {
    let start = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    start.elapsed().as_secs_f64()
}
