//! A comment- and literal-stripping scanner for Rust sources.
//!
//! The lint rules are token-substring matches, so the only parsing the
//! crate needs is "which bytes are code?". [`strip`] answers that: it
//! replaces the *contents* of comments, string literals, and char
//! literals with spaces while preserving every newline (line numbers in
//! diagnostics stay exact) and preserving string *delimiters* (so a
//! match arm like `"bad-frame" => ErrorCode::BadFrame` still shows its
//! shape after stripping). This deliberately avoids a full parser: the
//! workspace has no `syn`, and the rules only need token presence, not
//! syntax trees.

/// True for characters that can appear inside a Rust identifier.
pub fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Find `pat` in `hay` as a whole token: the match must not be preceded
/// or followed by an identifier character. Returns the byte offset of
/// the first such occurrence.
pub fn find_token(hay: &str, pat: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(pat) {
        let abs = start + pos;
        let before_ok = !hay[..abs].chars().next_back().is_some_and(is_ident);
        let after_ok = !hay[abs + pat.len()..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + pat.len();
    }
    None
}

/// True when `pat` occurs in `hay` as a whole token (see [`find_token`]).
pub fn has_token(hay: &str, pat: &str) -> bool {
    find_token(hay, pat).is_some()
}

/// Replace comment bodies, string-literal contents, and char-literal
/// contents with spaces.
///
/// Handles line comments, nested block comments, escaped strings, raw
/// strings (`r"…"`, `r#"…"#`, …), and char literals (including `'"'`
/// and `'\''`, which must not open a string). Lifetimes (`'a`) pass
/// through untouched. Newlines are preserved everywhere so
/// `stripped.lines()` lines up with the original source.
pub fn strip(source: &str) -> String {
    let b: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                out.push_str("  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push('"');
                i += 1;
                while i < b.len() {
                    match b[i] {
                        '\\' => {
                            out.push(' ');
                            i += 1;
                            if i < b.len() {
                                out.push(if b[i] == '\n' { '\n' } else { ' ' });
                                i += 1;
                            }
                        }
                        '"' => {
                            out.push('"');
                            i += 1;
                            break;
                        }
                        '\n' => {
                            out.push('\n');
                            i += 1;
                        }
                        _ => {
                            out.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            'r' if !b[..i].last().is_some_and(|&c| is_ident(c) || c == '"') => {
                // Possible raw string: r", r#", r##", …
                let mut j = i + 1;
                let mut hashes = 0usize;
                while b.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&'"') {
                    for &c in b.iter().take(j + 1).skip(i) {
                        out.push(c);
                    }
                    i = j + 1;
                    while i < b.len() {
                        if b[i] == '"' && (0..hashes).all(|h| b.get(i + 1 + h) == Some(&'#')) {
                            out.push('"');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            i += 1 + hashes;
                            break;
                        }
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                } else {
                    out.push('r');
                    i += 1;
                }
            }
            '\'' => {
                if b.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: '\n', '\'', '\u{7f}', …
                    out.push_str("   ");
                    i += 3; // quote, backslash, first escaped char
                    while i < b.len() && b[i] != '\'' {
                        out.push(' ');
                        i += 1;
                    }
                    if i < b.len() {
                        out.push(' ');
                        i += 1;
                    }
                } else if b.get(i + 2) == Some(&'\'') && b.get(i + 1) != Some(&'\'') {
                    // Plain char literal, including '"'.
                    out.push_str("   ");
                    i += 3;
                } else {
                    // Lifetime tick.
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn line_and_block_comments_are_blanked() {
        let src = "let a = 1; // Instant::now\n/* SystemTime::now\n */ let b = 2;\n";
        let s = strip(src);
        assert!(!s.contains("Instant::now"));
        assert!(!s.contains("SystemTime::now"));
        assert!(s.contains("let a = 1;"));
        assert!(s.contains("let b = 2;"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let src = "/* outer /* HashMap */ still comment */ let x = 3;";
        let s = strip(src);
        assert!(!s.contains("HashMap"));
        assert!(s.contains("let x = 3;"));
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_stay() {
        let src = "let p = \"Instant::now\"; let q = \"a \\\" b\";";
        let s = strip(src);
        assert!(!s.contains("Instant::now"));
        assert_eq!(s.matches('"').count(), 4, "delimiters survive: {s}");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let r1 = r\"thread_rng\"; let r2 = r#\"a \" b HashMap\"#; let end = 1;";
        let s = strip(src);
        assert!(!s.contains("thread_rng"));
        assert!(!s.contains("HashMap"));
        assert!(
            s.contains("let end = 1;"),
            "raw string terminators resync: {s}"
        );
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let src = "let c = '\"'; let d = '\\''; let e = HashMap::new();";
        let s = strip(src);
        assert!(
            s.contains("HashMap"),
            "code after char literals survives: {s}"
        );
    }

    #[test]
    fn lifetimes_pass_through() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        assert_eq!(strip(src), src);
    }

    #[test]
    fn token_matching_requires_boundaries() {
        assert!(has_token("std::time::Instant::now()", "Instant::now"));
        assert!(!has_token("MyInstant::nowish()", "Instant::now"));
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("FxHashMap::default()", "HashMap"));
    }
}
