//! `csqp-lint` — run the workspace determinism lints and exit nonzero
//! on any finding.
//!
//! ```text
//! cargo run --release --bin csqp-lint [-- --root PATH]
//! ```
//!
//! Scans every `.rs` file under the workspace root (excluding `target/`,
//! `vendor/`, and `tests/fixtures/`) for the rules documented in
//! [`csqp_lint`]: wall-clock-use, unseeded-rng, hash-iter-order,
//! unbounded-channel, wire-code-coverage, and stale-allow. The root
//! defaults to the workspace this binary was built from.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = default_root();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs an argument"),
            },
            "--help" | "-h" => {
                println!("usage: csqp-lint [--root PATH]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    let run = match csqp_lint::lint_workspace(&root) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("csqp-lint: scanning {} failed: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if run.report.is_clean() {
        println!(
            "csqp-lint: clean ({} files, {} allowlist entries)",
            run.files_scanned,
            csqp_lint::ALLOWLIST.len()
        );
        return ExitCode::SUCCESS;
    }
    for d in &run.report.diagnostics {
        match &d.path {
            Some(p) => eprintln!("csqp-lint: {p}: [{:?}] {}", d.code, d.detail),
            None => eprintln!("csqp-lint: [{:?}] {}", d.code, d.detail),
        }
    }
    eprintln!(
        "csqp-lint: {} finding(s) across {} files",
        run.report.len(),
        run.files_scanned
    );
    ExitCode::FAILURE
}

/// The workspace this binary was compiled from: `crates/lint/../..`.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("csqp-lint: {msg}\nusage: csqp-lint [--root PATH]");
    ExitCode::from(2)
}
