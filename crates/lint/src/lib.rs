//! `csqp-lint` — source-level determinism lints for the workspace.
//!
//! The paper reproduction's core claim is that every number it prints
//! is a pure function of configuration and seed. The compiler cannot
//! enforce the conventions that keep that true, so this crate does,
//! with a handful of token-level rules over the stripped sources (see
//! [`scan::strip`]):
//!
//! * **wall-clock-use** — no `Instant::now` / `SystemTime::now` /
//!   `thread::sleep` outside the justified [`ALLOWLIST`]. Simulated
//!   time comes from the cost model; real time is reserved for the
//!   serving/bench edges where latency *is* the measurement.
//! * **unseeded-rng** — no `thread_rng` / `from_entropy` / `OsRng` /
//!   `rand::random` anywhere. All randomness flows through seeded
//!   `SimRng` streams.
//! * **hash-iter-order** — `HashMap` / `HashSet` may only appear in
//!   files with an allowlist entry explaining why their nondeterministic
//!   iteration order cannot leak into digests, metrics, or the wire.
//!   New code defaults to `BTreeMap` / `BTreeSet` / arrays.
//! * **unbounded-channel** — no unbounded `mpsc::channel()` (an
//!   admission path with no backpressure is how a serving stack falls
//!   over at load), and no lock guard held across a blocking I/O call
//!   (`.recv()`, frame reads/writes, `accept`) on the same expression —
//!   unless the file carries a justified allowlist entry.
//! * **wire-code-coverage** — every variant of a `pub enum ErrorCode`
//!   must appear in both its encode (`ErrorCode::V => "…"`) and decode
//!   (`"…" => ErrorCode::V`) tables in the defining file, and every
//!   `DiagCode` variant in its `as_str` table. A code that cannot be
//!   decoded or documented is a silent protocol hole.
//! * **raw-syscall** — no `extern` blocks (C-ABI syscall bindings)
//!   outside the justified allowlist. The workspace deliberately binds
//!   the handful of syscalls it needs (`poll`, `epoll_*`, rlimits)
//!   through one audited module, `csqp_net::poll`; an extern block
//!   anywhere else is either a duplicate shim or a new unsafe surface
//!   that belongs there instead.
//! * **numeric-truncation** — in the bound/cost arithmetic crates
//!   (`crates/verify`, `crates/cost`, `crates/catalog`), no bare
//!   narrowing `as` cast: a rounded float fed straight to `as`
//!   (`.round() as u64` and friends) or an integer cast to a narrower
//!   target (`as u32` / `as u16` / …). A silent NaN→garbage or
//!   wraparound here corrupts a guaranteed bound the admission gate
//!   then trusts. Route float conversions through
//!   `csqp_catalog::num::sat_u64` (documented saturating semantics) and
//!   integer narrowing through `try_from` / `u32::from`, or justify the
//!   site in the allowlist.
//! * **catalog-mutation** — no direct `Catalog` mutation (`.place(…)` /
//!   `.set_cached_fraction(…)`) outside the justified allowlist. Once a
//!   catalog is replicated per serving site, a mutation that bypasses
//!   the coordinator/epoch API (`ReplicatedCatalog`) silently desyncs
//!   replicas without bumping an epoch — so the memo never invalidates
//!   and staleness bounds cannot be enforced. Construction-time call
//!   sites (tests, benches, workload generators, pre-serving setup)
//!   carry entries saying so.
//!
//! Allowlist hygiene is itself checked: an entry that matches nothing,
//! or carries no justification, is reported as **stale-allow** so the
//! list cannot rot into a blanket waiver.
//!
//! Findings are ordinary [`csqp_core::diag::Diagnostic`]s collected in
//! a [`csqp_verify::Report`], with `path` set to `file:line`. The
//! `csqp-lint` binary (and the `workspace_is_lint_clean` test) runs
//! [`lint_workspace`] over every `.rs` file outside `target/`,
//! `vendor/`, and `tests/fixtures/`.

pub mod scan;

use std::fs;
use std::io;
use std::path::Path;

use csqp_core::diag::{DiagCode, Diagnostic};
use csqp_verify::Report;

use scan::{find_token, has_token, is_ident, strip};

/// The rule dimensions an [`Allow`] entry can waive.
///
/// `wire-code-coverage` is deliberately absent: a wire code that cannot
/// be decoded is a bug with no justifiable variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleKind {
    /// `Instant::now` / `SystemTime::now` / `thread::sleep`.
    WallClock,
    /// `thread_rng` / `from_entropy` / `OsRng` / `rand::random`.
    UnseededRng,
    /// Any use of `HashMap` / `HashSet`.
    HashOrder,
    /// Unbounded `mpsc::channel()`, or a lock held across blocking I/O.
    UnboundedChannel,
    /// Direct `Catalog` mutation (`.place(…)` /
    /// `.set_cached_fraction(…)`) outside the coordinator/epoch API.
    CatalogMutation,
    /// A bare narrowing `as` cast in the bound/cost arithmetic crates.
    NumericTruncation,
    /// An `extern` block: a raw C-ABI syscall binding.
    ExternSyscall,
}

impl RuleKind {
    /// The diagnostic code a violation of this rule carries.
    pub fn code(self) -> DiagCode {
        match self {
            RuleKind::WallClock => DiagCode::WallClockUse,
            RuleKind::UnseededRng => DiagCode::UnseededRng,
            RuleKind::HashOrder => DiagCode::HashIterOrder,
            RuleKind::UnboundedChannel => DiagCode::UnboundedChannel,
            RuleKind::CatalogMutation => DiagCode::CatalogMutation,
            RuleKind::NumericTruncation => DiagCode::NumericTruncation,
            RuleKind::ExternSyscall => DiagCode::RawSyscall,
        }
    }

    /// The rule's kebab-case name, as printed in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            RuleKind::WallClock => "wall-clock-use",
            RuleKind::UnseededRng => "unseeded-rng",
            RuleKind::HashOrder => "hash-iter-order",
            RuleKind::UnboundedChannel => "unbounded-channel",
            RuleKind::CatalogMutation => "catalog-mutation",
            RuleKind::NumericTruncation => "numeric-truncation",
            RuleKind::ExternSyscall => "raw-syscall",
        }
    }
}

/// One justified exemption: `path` (workspace-relative, `/`-separated)
/// may violate `rule` because `why`.
#[derive(Clone, Copy, Debug)]
pub struct Allow {
    /// Workspace-relative path of the exempted file.
    pub path: &'static str,
    /// The rule the file is exempt from.
    pub rule: RuleKind,
    /// The justification. Empty justifications are reported as
    /// `stale-allow`.
    pub why: &'static str,
}

/// The justified allowlist. Every entry names one file, one rule, and
/// the reason the rule does not apply there. `csqp-lint` reports any
/// entry that stops matching, so deleting the last wall-clock call in a
/// file forces the entry's deletion too.
pub const ALLOWLIST: &[Allow] = &[
    // ---- wall-clock-use: the edges where real time is the subject ----
    Allow {
        path: "crates/core/src/cancel.rs",
        rule: RuleKind::WallClock,
        why: "deadline home: tokens capture an absolute Instant once and every \
              other crate asks the token instead of the clock",
    },
    Allow {
        path: "crates/serve/src/engine.rs",
        rule: RuleKind::WallClock,
        why: "converts each request's relative deadline_ms to an absolute \
              Instant at admission and stamps enqueue time for latency metrics",
    },
    Allow {
        path: "crates/serve/src/server.rs",
        rule: RuleKind::WallClock,
        why: "workers measure real queue-wait and service latency; those \
              durations are the serving metrics, not simulated results",
    },
    Allow {
        path: "crates/serve/src/chaos.rs",
        rule: RuleKind::WallClock,
        why: "the chaos soak budgets fault pauses and reconnect timeouts in \
              real time against a live server",
    },
    Allow {
        path: "crates/serve/src/load.rs",
        rule: RuleKind::WallClock,
        why: "the load generator paces open-loop arrivals and measures \
              client-observed latency; wall time is the instrument",
    },
    Allow {
        path: "crates/net/src/chaos.rs",
        rule: RuleKind::WallClock,
        why: "fault plans inject real pauses (thread::sleep) to simulate \
              network stalls on live sockets; durations are seed-derived",
    },
    Allow {
        path: "crates/catalog/src/memory.rs",
        rule: RuleKind::WallClock,
        why: "test-only perf guard bounding catalog build time; a ceiling on \
              runtime, never an experiment result",
    },
    Allow {
        path: "crates/bench/src/harness.rs",
        rule: RuleKind::WallClock,
        why: "the bench harness exists to measure wall time; Instant::now is \
              the product, and means never feed experiment digests",
    },
    Allow {
        path: "crates/bench/src/bin/memo_bench.rs",
        rule: RuleKind::WallClock,
        why: "csqp-bench times cold-vs-warm planning throughput; wall time is \
              the measurement and plans are cross-checked for byte equality",
    },
    Allow {
        path: "crates/experiments/src/bin/main.rs",
        rule: RuleKind::WallClock,
        why: "progress reporting for long sweeps; timings are printed to \
              stderr and never enter result files",
    },
    Allow {
        path: "src/bin/check.rs",
        rule: RuleKind::WallClock,
        why: "reports model-checker wall time against its explicit <10s \
              exploration budget; timing never affects the verdict",
    },
    Allow {
        path: "src/bin/serve.rs",
        rule: RuleKind::WallClock,
        why: "metrics cadence and the --seconds shutdown timer of the live \
              server binary",
    },
    Allow {
        path: "src/bin/load.rs",
        rule: RuleKind::WallClock,
        why: "--bench-reactor parks an idle-session fleet and polls the live \
              server's session gauge until it settles before measuring; the \
              wait bounds setup and never enters a reported rate",
    },
    Allow {
        path: "crates/serve/tests/loopback.rs",
        rule: RuleKind::WallClock,
        why: "integration tests bound waits on a live loopback server",
    },
    Allow {
        path: "crates/serve/tests/pipeline.rs",
        rule: RuleKind::WallClock,
        why: "pipeline-window proptest stamps issue times on a live window",
    },
    Allow {
        path: "crates/serve/tests/scale.rs",
        rule: RuleKind::WallClock,
        why: "scale test paces a live server and bounds its total runtime",
    },
    // ---- raw-syscall: the one audited FFI surface ----------------------
    Allow {
        path: "crates/net/src/poll.rs",
        rule: RuleKind::ExternSyscall,
        why: "the workspace's single syscall-binding module: poll(2), \
              epoll(7), and rlimit shims declared against the already- \
              linked C library, wrapped in safe Reactor/Waker APIs and \
              exercised by backend-equivalence tests",
    },
    // ---- hash-iter-order: uses whose ordering provably cannot leak ----
    Allow {
        path: "crates/engine/src/layout.rs",
        rule: RuleKind::HashOrder,
        why: "extent maps are point-lookups by RelId; page layout order \
              derives from the sorted catalog, never from map iteration",
    },
    Allow {
        path: "crates/net/src/chaos.rs",
        rule: RuleKind::HashOrder,
        why: "test-only HashSet for dedup assertions; only membership and \
              cardinality are observed",
    },
    Allow {
        path: "crates/optimizer/src/dp.rs",
        rule: RuleKind::HashOrder,
        why: "memo table keyed by relation bitmask; lookups only, winners \
              chosen by deterministic cost comparison",
    },
    Allow {
        path: "crates/optimizer/src/random.rs",
        rule: RuleKind::HashOrder,
        why: "test-only HashSet counting distinct sampled shapes",
    },
    Allow {
        path: "crates/optimizer/src/search.rs",
        rule: RuleKind::HashOrder,
        why: "test-only HashMap compared per-key against expected results",
    },
    Allow {
        path: "crates/serve/src/engine.rs",
        rule: RuleKind::HashOrder,
        why: "shard session table keyed by connection id; poll readiness, not \
              map order, drives work, and replies go to per-session sockets",
    },
    // (crates/serve/src/server.rs once held a HashOrder entry for its
    // plan cache; the cache is now the csqp-memo table, which is
    // BTree-ordered by construction and needs no exemption.)
    Allow {
        path: "crates/serve/src/load.rs",
        rule: RuleKind::HashOrder,
        why: "per-client outstanding-query window keyed by query id; replies \
              re-associate by id and the digest folds order-independently",
    },
    // ---- unbounded-channel: bounds established elsewhere --------------
    Allow {
        path: "crates/serve/src/engine.rs",
        rule: RuleKind::UnboundedChannel,
        why: "registration and completion channels are bounded by \
              construction: registrations by the accept loop's session cap, \
              completions by queue_depth plus the per-session windows the \
              system model checker explores",
    },
    Allow {
        path: "crates/serve/src/server.rs",
        rule: RuleKind::UnboundedChannel,
        why: "a worker holds the shared receiver lock only while parked in \
              recv() with no other state held; query processing runs after \
              the guard drops, so the park cannot stall another worker's \
              processing",
    },
    // ---- catalog-mutation: construction-time call sites ---------------
    Allow {
        path: "crates/catalog/src/placement.rs",
        rule: RuleKind::CatalogMutation,
        why: "defines Catalog::place / set_cached_fraction and the seeded \
              placement generators; the primitive's home",
    },
    Allow {
        path: "crates/catalog/src/replica.rs",
        rule: RuleKind::CatalogMutation,
        why: "the coordinator/epoch API itself: the one blessed mutation \
              path, applying logged deltas to the base and replica catalogs",
    },
    Allow {
        path: "crates/core/src/bind.rs",
        rule: RuleKind::CatalogMutation,
        why: "test-only catalogs built to bind plans against",
    },
    Allow {
        path: "crates/cost/src/model.rs",
        rule: RuleKind::CatalogMutation,
        why: "doc examples and tests construct catalogs before costing; \
              nothing is served from them",
    },
    Allow {
        path: "crates/cost/tests/cost_properties.rs",
        rule: RuleKind::CatalogMutation,
        why: "property tests build a fresh seeded catalog per case",
    },
    Allow {
        path: "crates/engine/src/build.rs",
        rule: RuleKind::CatalogMutation,
        why: "test catalogs for materializing page layouts",
    },
    Allow {
        path: "crates/engine/src/layout.rs",
        rule: RuleKind::CatalogMutation,
        why: "test catalogs for extent-map construction",
    },
    Allow {
        path: "crates/bench/src/bin/memo_bench.rs",
        rule: RuleKind::CatalogMutation,
        why: "the bench builds its seeded placement once at startup, before \
              any planning it measures",
    },
    Allow {
        path: "crates/experiments/src/ext_multiquery.rs",
        rule: RuleKind::CatalogMutation,
        why: "experiment driver builds scenario placements before the sweep; \
              single-threaded, never served",
    },
    Allow {
        path: "crates/experiments/src/ext_navigation.rs",
        rule: RuleKind::CatalogMutation,
        why: "experiment driver adjusts cached fractions between sweep \
              points; single-threaded, never served",
    },
    Allow {
        path: "crates/optimizer/src/exhaustive.rs",
        rule: RuleKind::CatalogMutation,
        why: "test catalogs for cross-checking planners",
    },
    Allow {
        path: "crates/optimizer/src/search.rs",
        rule: RuleKind::CatalogMutation,
        why: "doc examples and tests construct catalogs to plan against",
    },
    Allow {
        path: "crates/optimizer/src/twostep.rs",
        rule: RuleKind::CatalogMutation,
        why: "doc examples and tests construct catalogs; the runtime step \
              only reads cached fractions",
    },
    Allow {
        path: "crates/optimizer/tests/memo_identity.rs",
        rule: RuleKind::CatalogMutation,
        why: "memo identity tests mutate a catalog precisely to prove a \
              generation bump forces recomputation",
    },
    Allow {
        path: "crates/optimizer/tests/move_properties.rs",
        rule: RuleKind::CatalogMutation,
        why: "property tests build a fresh seeded catalog per case",
    },
    Allow {
        path: "crates/serve/src/server.rs",
        rule: RuleKind::CatalogMutation,
        why: "builds the hosted placement once at startup, before serving; \
              runtime drift flows through the epoch model, never raw \
              mutation of the served catalog",
    },
    Allow {
        path: "crates/serve/tests/loopback.rs",
        rule: RuleKind::CatalogMutation,
        why: "integration-test fixture catalogs",
    },
    Allow {
        path: "crates/verify/src/invariants.rs",
        rule: RuleKind::CatalogMutation,
        why: "the cost-invariant checker builds grown catalog copies to test \
              monotonicity; doc examples build fixtures",
    },
    Allow {
        path: "crates/verify/src/lib.rs",
        rule: RuleKind::CatalogMutation,
        why: "doc examples and tests construct catalogs for the checker",
    },
    Allow {
        path: "crates/workload/src/lib.rs",
        rule: RuleKind::CatalogMutation,
        why: "the seeded placement generators: catalogs are their output, \
              produced before anything serves",
    },
    Allow {
        path: "src/bin/check.rs",
        rule: RuleKind::CatalogMutation,
        why: "the drift replay drives mutations through the \
              ReplicatedCatalog epoch API, whose methods deliberately share \
              the Catalog spelling; earlier stages build fixture catalogs",
    },
    Allow {
        path: "examples/multi_query.rs",
        rule: RuleKind::CatalogMutation,
        why: "example sets cached fractions while building its scenario",
    },
    Allow {
        path: "examples/navigation.rs",
        rule: RuleKind::CatalogMutation,
        why: "example sets the cached fraction its sweep varies",
    },
    Allow {
        path: "tests/engine_cost_consistency.rs",
        rule: RuleKind::CatalogMutation,
        why: "integration test builds fixture placements per case",
    },
    Allow {
        path: "tests/future_work.rs",
        rule: RuleKind::CatalogMutation,
        why: "integration tests sweep cached fractions across scenarios",
    },
    Allow {
        path: "tests/policy_claims.rs",
        rule: RuleKind::CatalogMutation,
        why: "integration tests build the placements the paper's claims are \
              checked against",
    },
];

const WALL_CLOCK_PATTERNS: &[&str] = &["Instant::now", "SystemTime::now", "thread::sleep"];
const RNG_PATTERNS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "rand::random"];
const HASH_PATTERNS: &[&str] = &["HashMap", "HashSet"];
/// The unbounded constructor. `mpsc::sync_channel` (bounded) does not
/// contain this as a substring, so it never trips.
const UNBOUNDED_CHANNEL_PATTERNS: &[&str] = &["mpsc::channel"];
/// Blocking calls that must not run under a held lock (same-expression
/// heuristic: `lock` and one of these on one line). A worker parked in
/// `recv()` while holding a shared mutex serializes the whole pool.
const BLOCKING_CALL_PATTERNS: &[&str] = &[
    "recv",
    "recv_timeout",
    "read_frame",
    "write_frame",
    "accept",
];
/// Method-call spellings of the raw catalog mutators. Matched as plain
/// substrings (the leading `.` rules out the `fn` definitions and any
/// free functions of the same name); the definitions live in
/// `crates/catalog/src/placement.rs`, which carries its own entry.
const CATALOG_MUTATION_PATTERNS: &[&str] = &[".place(", ".set_cached_fraction("];
/// The crates whose arithmetic feeds guaranteed bounds and costs; only
/// files under these prefixes are subject to `numeric-truncation`.
const TRUNCATION_SCOPE: &[&str] = &["crates/verify/", "crates/cost/", "crates/catalog/"];
/// A rounded float fed straight to `as`: the spelling that silently
/// maps NaN to 0 and relies on implicit saturation at every call site.
/// Matched as plain substrings (the leading `.` needs no token
/// boundary).
const TRUNCATION_FLOAT_PATTERNS: &[&str] = &[".round() as", ".floor() as", ".ceil() as"];
/// Integer casts to a narrower target; widening spellings (`as u64`,
/// `as f64`, `as usize`) are deliberately absent.
const TRUNCATION_INT_PATTERNS: &[&str] =
    &["as u32", "as u16", "as u8", "as i32", "as i16", "as i8"];
/// The raw-syscall pattern: any `extern` block or declaration. After
/// [`scan::strip`] the ABI string's contents are blanked but the
/// keyword survives, so the token is enough.
const EXTERN_SYSCALL_PATTERNS: &[&str] = &["extern"];

struct AllowState {
    allow: Allow,
    hit: bool,
}

/// The lint driver: holds the allowlist and its hit-tracking across a
/// run, so [`Linter::finish`] can report entries that matched nothing.
pub struct Linter {
    allows: Vec<AllowState>,
}

impl Default for Linter {
    fn default() -> Self {
        Linter::new()
    }
}

impl Linter {
    /// A linter armed with the built-in [`ALLOWLIST`].
    pub fn new() -> Linter {
        Linter::with_allows(ALLOWLIST)
    }

    /// A linter with a custom allowlist (used by the stale-allow tests).
    pub fn with_allows(allows: &[Allow]) -> Linter {
        Linter {
            allows: allows
                .iter()
                .map(|&allow| AllowState { allow, hit: false })
                .collect(),
        }
    }

    /// True when `rel` is exempt from `rule`; marks the entry as used.
    fn allowed(&mut self, rel: &str, rule: RuleKind) -> bool {
        let mut any = false;
        for st in &mut self.allows {
            if st.allow.rule == rule && st.allow.path == rel {
                st.hit = true;
                any = true;
            }
        }
        any
    }

    /// Lint one source file. `rel` is the workspace-relative path
    /// (`/`-separated) used for allowlist matching and diagnostics.
    pub fn lint_source(&mut self, rel: &str, source: &str) -> Vec<Diagnostic> {
        let stripped = strip(source);
        let mut out = Vec::new();
        for (idx, line) in stripped.lines().enumerate() {
            let lineno = idx + 1;
            for &pat in WALL_CLOCK_PATTERNS {
                if has_token(line, pat) && !self.allowed(rel, RuleKind::WallClock) {
                    out.push(at(
                        DiagCode::WallClockUse,
                        rel,
                        lineno,
                        format!("wall-clock call `{pat}` outside the justified allowlist"),
                    ));
                }
            }
            for &pat in RNG_PATTERNS {
                if has_token(line, pat) && !self.allowed(rel, RuleKind::UnseededRng) {
                    out.push(at(
                        DiagCode::UnseededRng,
                        rel,
                        lineno,
                        format!("unseeded randomness `{pat}`; derive a SimRng stream instead"),
                    ));
                }
            }
            for &pat in HASH_PATTERNS {
                if has_token(line, pat) && !self.allowed(rel, RuleKind::HashOrder) {
                    out.push(at(
                        DiagCode::HashIterOrder,
                        rel,
                        lineno,
                        format!(
                            "`{pat}` without a hash-iter-order allowlist entry; \
                             use a BTree collection or justify the ordering"
                        ),
                    ));
                }
            }
            for &pat in UNBOUNDED_CHANNEL_PATTERNS {
                if has_token(line, pat) && !self.allowed(rel, RuleKind::UnboundedChannel) {
                    out.push(at(
                        DiagCode::UnboundedChannel,
                        rel,
                        lineno,
                        format!(
                            "unbounded `{pat}()` gives the producer no backpressure; \
                             use `mpsc::sync_channel` or justify the bound elsewhere"
                        ),
                    ));
                }
            }
            for &pat in EXTERN_SYSCALL_PATTERNS {
                if has_token(line, pat) && !self.allowed(rel, RuleKind::ExternSyscall) {
                    out.push(at(
                        DiagCode::RawSyscall,
                        rel,
                        lineno,
                        format!(
                            "`{pat}` binding outside the audited syscall module; \
                             add the shim to csqp_net::poll or justify the site"
                        ),
                    ));
                }
            }
            for &pat in CATALOG_MUTATION_PATTERNS {
                if line.contains(pat) && !self.allowed(rel, RuleKind::CatalogMutation) {
                    out.push(at(
                        DiagCode::CatalogMutation,
                        rel,
                        lineno,
                        format!(
                            "direct catalog mutation `{pat}…)` bypasses the \
                             coordinator/epoch API; replicas desync and the memo \
                             never invalidates — go through ReplicatedCatalog or \
                             justify the construction-time call site"
                        ),
                    ));
                }
            }
            if TRUNCATION_SCOPE.iter().any(|&s| rel.starts_with(s)) {
                for &pat in TRUNCATION_FLOAT_PATTERNS {
                    if line.contains(pat) && !self.allowed(rel, RuleKind::NumericTruncation) {
                        out.push(at(
                            DiagCode::NumericTruncation,
                            rel,
                            lineno,
                            format!(
                                "bare `{pat} …` cast in bound/cost arithmetic maps NaN \
                                 to 0 silently; convert through csqp_catalog::sat_u64 \
                                 or justify the site"
                            ),
                        ));
                    }
                }
                for &pat in TRUNCATION_INT_PATTERNS {
                    if has_token(line, pat) && !self.allowed(rel, RuleKind::NumericTruncation) {
                        out.push(at(
                            DiagCode::NumericTruncation,
                            rel,
                            lineno,
                            format!(
                                "bare narrowing `{pat}` cast in bound/cost arithmetic \
                                 wraps silently; use try_from/From or justify the site"
                            ),
                        ));
                    }
                }
            }
            if has_token(line, "lock")
                && BLOCKING_CALL_PATTERNS
                    .iter()
                    .any(|&pat| has_token(line, pat))
                && !self.allowed(rel, RuleKind::UnboundedChannel)
            {
                out.push(at(
                    DiagCode::UnboundedChannel,
                    rel,
                    lineno,
                    "lock held across a blocking call stalls every other holder; \
                     drop the guard first or justify why the wait is the point"
                        .to_string(),
                ));
            }
        }
        out.extend(wire_coverage(rel, &stripped));
        out
    }

    /// Report allowlist entries that never matched, or carry no
    /// justification. Call once, after every file has been linted.
    pub fn finish(self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for st in self.allows {
            if st.allow.why.trim().is_empty() {
                let mut d = Diagnostic::new(
                    DiagCode::StaleAllow,
                    format!(
                        "allowlist entry for rule `{}` has no justification",
                        st.allow.rule.name()
                    ),
                );
                d.path = Some(st.allow.path.to_string());
                out.push(d);
            }
            if !st.hit {
                let mut d = Diagnostic::new(
                    DiagCode::StaleAllow,
                    format!(
                        "allowlist entry for rule `{}` matched nothing; delete it",
                        st.allow.rule.name()
                    ),
                );
                d.path = Some(st.allow.path.to_string());
                out.push(d);
            }
        }
        out
    }
}

/// Build a diagnostic anchored at `rel:lineno`.
fn at(code: DiagCode, rel: &str, lineno: usize, detail: String) -> Diagnostic {
    let mut d = Diagnostic::new(code, detail);
    d.path = Some(format!("{rel}:{lineno}"));
    d
}

/// The wire-code-coverage rule: in any file defining `enum ErrorCode`
/// or `enum DiagCode`, every variant must appear in the encode table
/// (`Enum::V => "…"`), and `ErrorCode` variants also in the decode
/// table (`"…" => Enum::V`).
fn wire_coverage(rel: &str, stripped: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (enum_name, needs_decode) in [("ErrorCode", true), ("DiagCode", false)] {
        let Some((def_line, variants)) = enum_variants(stripped, enum_name) else {
            continue;
        };
        for v in variants {
            let qualified = format!("{enum_name}::{v}");
            let mut encoded = false;
            let mut decoded = false;
            for line in stripped.lines() {
                let Some(pos) = find_token(line, &qualified) else {
                    continue;
                };
                if line[pos + qualified.len()..].contains("=>") {
                    encoded = true;
                }
                if line[..pos].contains("=>") {
                    decoded = true;
                }
            }
            if !encoded {
                out.push(at(
                    DiagCode::WireCodeCoverage,
                    rel,
                    def_line,
                    format!(
                        "{qualified} has no encode arm (`{qualified} => …`) in its defining file"
                    ),
                ));
            }
            if needs_decode && !decoded {
                out.push(at(
                    DiagCode::WireCodeCoverage,
                    rel,
                    def_line,
                    format!(
                        "{qualified} has no decode arm (`… => {qualified}`) in its defining file"
                    ),
                ));
            }
        }
    }
    out
}

/// Find `enum name { … }` in stripped source; return its 1-based
/// definition line and the unit-variant identifiers in the body.
fn enum_variants(stripped: &str, name: &str) -> Option<(usize, Vec<String>)> {
    let pat = format!("enum {name}");
    let pos = find_token(stripped, &pat)?;
    let def_line = stripped[..pos].matches('\n').count() + 1;
    let open = pos + stripped[pos..].find('{')?;
    let mut depth = 0usize;
    let mut end = open;
    for (off, c) in stripped[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = open + off;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &stripped[open + 1..end];
    let mut variants = Vec::new();
    for chunk in body.split(',') {
        let t = chunk.trim();
        // Take the leading identifier; skip attributes and blanks.
        let ident: String = t.chars().take_while(|&c| is_ident(c)).collect();
        if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            variants.push(ident);
        }
    }
    Some((def_line, variants))
}

/// Statistics and findings of a whole-workspace run.
#[derive(Debug)]
pub struct LintRun {
    /// Every finding, including stale-allow hygiene findings.
    pub report: Report,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lint every `.rs` file under `root`, excluding `target/`, `vendor/`,
/// `.git/`, and `tests/fixtures/` trees (fixtures are intentionally
/// dirty). Files are visited in sorted order so the report itself is
/// deterministic.
pub fn lint_workspace(root: &Path) -> io::Result<LintRun> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut linter = Linter::new();
    let mut report = Report::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        report.extend(linter.lint_source(&rel.replace('\\', "/"), &source));
    }
    report.extend(linter.finish());
    Ok(LintRun {
        report,
        files_scanned: files.len(),
    })
}

/// Directory names whose subtrees are never linted.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.iter().any(|&s| name == s) {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn allowlist_entries_all_carry_justifications() {
        for a in ALLOWLIST {
            assert!(
                !a.why.trim().is_empty(),
                "{} ({:?}) has an empty justification",
                a.path,
                a.rule
            );
        }
    }

    #[test]
    fn clean_source_yields_no_diagnostics() {
        let mut l = Linter::with_allows(&[]);
        let src = "use std::collections::BTreeMap;\npub fn f() -> u32 { 7 }\n";
        assert!(l.lint_source("x.rs", src).is_empty());
        assert!(l.finish().is_empty());
    }

    #[test]
    fn allowlisted_file_is_suppressed_and_entry_counts_as_used() {
        let allows = [Allow {
            path: "a.rs",
            rule: RuleKind::WallClock,
            why: "test",
        }];
        let mut l = Linter::with_allows(&allows);
        let src = "let t = Instant::now();";
        assert!(l.lint_source("a.rs", src).is_empty());
        assert!(
            !l.lint_source("b.rs", src).is_empty(),
            "other files still trip"
        );
        assert!(
            l.finish().is_empty(),
            "the entry was used, so no stale-allow"
        );
    }

    #[test]
    fn unused_or_bare_allows_are_stale() {
        let allows = [
            Allow {
                path: "never.rs",
                rule: RuleKind::HashOrder,
                why: "justified but unused",
            },
            Allow {
                path: "bare.rs",
                rule: RuleKind::WallClock,
                why: "  ",
            },
        ];
        let mut l = Linter::with_allows(&allows);
        assert!(l.lint_source("bare.rs", "Instant::now()").is_empty());
        let stale = l.finish();
        assert_eq!(stale.len(), 2, "{stale:?}");
        assert!(stale.iter().all(|d| d.code == DiagCode::StaleAllow));
    }

    #[test]
    fn extern_blocks_trip_raw_syscall_unless_allowlisted() {
        let mut l = Linter::with_allows(&[]);
        let src = "unsafe extern \"C\" {\n    fn close(fd: i32) -> i32;\n}\n";
        let ds = l.lint_source("shim.rs", src);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, DiagCode::RawSyscall);

        let allows = [Allow {
            path: "crates/net/src/poll.rs",
            rule: RuleKind::ExternSyscall,
            why: "the audited module",
        }];
        let mut l = Linter::with_allows(&allows);
        assert!(l.lint_source("crates/net/src/poll.rs", src).is_empty());
        assert!(l.finish().is_empty());
    }

    #[test]
    fn wire_coverage_finds_missing_decode_arm() {
        let src = "\
pub enum ErrorCode {
    Known,
    Forgotten,
}
impl ErrorCode {
    fn as_str(&self) -> &str {
        match self {
            ErrorCode::Known => \"known\",
            ErrorCode::Forgotten => \"forgotten\",
        }
    }
    fn parse(s: &str) -> Option<ErrorCode> {
        match s {
            \"known\" => Some(ErrorCode::Known),
            _ => None,
        }
    }
}
";
        let mut l = Linter::with_allows(&[]);
        let ds = l.lint_source("wire.rs", src);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, DiagCode::WireCodeCoverage);
        assert!(ds[0].detail.contains("Forgotten"));
        assert!(ds[0].detail.contains("decode"));
    }

    #[test]
    fn numeric_truncation_flags_only_the_bound_cost_crates() {
        let src = "let p = (t as f64 / per).ceil() as u64;\nlet n = len as u32;\n";
        let mut l = Linter::with_allows(&[]);
        let ds = l.lint_source("crates/cost/src/x.rs", src);
        assert_eq!(ds.len(), 2, "{ds:?}");
        assert!(ds.iter().all(|d| d.code == DiagCode::NumericTruncation));
        assert!(
            l.lint_source("crates/serve/src/x.rs", src).is_empty(),
            "the rule is scoped to the arithmetic crates"
        );
    }

    #[test]
    fn numeric_truncation_spares_helpers_and_honors_allows() {
        let mut l = Linter::with_allows(&[]);
        let clean = "let p = sat_u64(x.ceil());\nlet w = u64::from(n);\nlet f = t as f64;\n";
        assert!(l.lint_source("crates/catalog/src/y.rs", clean).is_empty());

        let allows = [Allow {
            path: "crates/verify/src/z.rs",
            rule: RuleKind::NumericTruncation,
            why: "test",
        }];
        let mut l = Linter::with_allows(&allows);
        assert!(l
            .lint_source("crates/verify/src/z.rs", "let n = x.round() as u64;")
            .is_empty());
        assert!(l.finish().is_empty());
    }

    #[test]
    fn comments_and_strings_never_trip_rules() {
        let mut l = Linter::with_allows(&[]);
        let src = "// Instant::now\nlet s = \"HashMap thread_rng\";\n/* OsRng */\n";
        assert!(l.lint_source("doc.rs", src).is_empty());
    }
}
