//! The byte-identical-stats regression test promised by
//! `csqp_simkernel::rng`: the simulator keeps **no hidden per-run state**,
//! so two runs from the same seed must produce *exactly* the same
//! metrics — every `f64` bit-for-bit, every counter, every per-operator
//! report. Any drift here means something in the pipeline consulted an
//! ambient source of entropy (a timestamp, an unseeded RNG, hash-map
//! iteration order) and broke reproducibility.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp_catalog::{BufAlloc, SiteId, SystemConfig};
use csqp_core::{bind, BindContext, Policy};
use csqp_cost::Objective;
use csqp_engine::{ExecutionBuilder, ServerLoad};
use csqp_experiments::common::Scenario;
use csqp_optimizer::{OptConfig, Optimizer};
use csqp_simkernel::rng::SimRng;
use csqp_workload::{random_placement, ten_way, two_way};

/// The full-precision rendering used for comparison: `{:?}` on the
/// metrics prints every float with round-trip precision, so equal
/// strings mean bit-identical stats.
fn render<T: std::fmt::Debug>(v: &T) -> String {
    format!("{v:?}")
}

#[test]
fn identically_seeded_runs_produce_byte_identical_stats() {
    let query = two_way();
    let catalog = csqp_workload::single_server_placement(&query);
    let mut sys = SystemConfig::default();
    sys.buf_alloc = BufAlloc::Min; // exercise the spill path too

    let plan = csqp_core::JoinTree::left_deep(&[csqp_catalog::RelId(0), csqp_catalog::RelId(1)])
        .into_plan(
            &query,
            csqp_core::Annotation::InnerRel,
            csqp_core::Annotation::PrimaryCopy,
        );
    let bound = bind(
        &plan,
        BindContext {
            catalog: &catalog,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap();

    let run = || {
        let builder = ExecutionBuilder::new(&query, &catalog, &sys).with_seed(0xC5);
        render(&builder.execute(&bound))
    };
    assert_eq!(run(), run(), "two identically-seeded executions diverged");
}

#[test]
fn loaded_multi_query_runs_are_byte_identical() {
    // Load generators and concurrent queries are the RNG-heaviest path:
    // every interleaving decision flows from the builder seed.
    let query = two_way();
    let catalog = csqp_workload::single_server_placement(&query);
    let sys = SystemConfig::default();

    let mk_bound = |jann, sann| {
        let p = csqp_core::JoinTree::left_deep(&[csqp_catalog::RelId(0), csqp_catalog::RelId(1)])
            .into_plan(&query, jann, sann);
        bind(
            &p,
            BindContext {
                catalog: &catalog,
                query_site: SiteId::CLIENT,
            },
        )
        .unwrap()
    };
    let bounds = vec![
        mk_bound(
            csqp_core::Annotation::InnerRel,
            csqp_core::Annotation::PrimaryCopy,
        ),
        mk_bound(
            csqp_core::Annotation::Consumer,
            csqp_core::Annotation::Client,
        ),
    ];

    let run = || {
        let builder = ExecutionBuilder::new(&query, &catalog, &sys)
            .with_seed(7)
            .with_load(SiteId::server(1), 20.0);
        render(&builder.execute_many(&bounds))
    };
    assert_eq!(run(), run(), "loaded multi-query executions diverged");
}

#[test]
fn whole_measurement_pipeline_is_byte_identical() {
    // Optimizer + binder + simulator, end to end, the way the figure
    // experiments drive it — including a server disk load feeding the
    // load-aware cost model.
    let query = ten_way();
    let mut rng = SimRng::seed_from_u64(99);
    let catalog = random_placement(&query, 4, &mut rng);
    let sys = SystemConfig::default();
    let loads = [ServerLoad {
        site: SiteId::server(1),
        rate_per_sec: 10.0,
    }];
    let scenario = Scenario {
        query: &query,
        catalog: &catalog,
        sys: &sys,
        loads: &loads,
    };

    let run = || {
        let model = scenario.cost_model();
        let optimizer = Optimizer::new(
            &model,
            Policy::HybridShipping,
            Objective::ResponseTime,
            OptConfig::fast(),
        );
        let mut opt_rng = SimRng::seed_from_u64(41);
        let plan = optimizer.optimize(&query, &mut opt_rng).plan;
        (render(&plan), render(&scenario.execute(&plan, 17)))
    };
    let (plan_a, stats_a) = run();
    let (plan_b, stats_b) = run();
    assert_eq!(
        plan_a, plan_b,
        "optimizer output diverged under the same seed"
    );
    assert_eq!(
        stats_a, stats_b,
        "pipeline stats diverged under the same seed"
    );
}
