//! The shared run-one-query entry point.
//!
//! Both consumers of the measurement pipeline — the figure harness
//! ([`crate::common::Scenario`]) and the serving layer (`csqp-serve`) —
//! call [`run_query`]: optimize under a policy/objective, bind the winning
//! plan to physical sites, simulate it, and report the metrics. Keeping
//! one entry point means the service measures *exactly* what the figures
//! measure; there is no second, subtly different setup path.
//!
//! Unlike the figure harness (which panics on malformed plans, because a
//! malformed optimizer output is a harness bug), this module returns
//! typed [`RunError`]s so a network server can turn them into ERROR
//! frames instead of dying.

use csqp_catalog::{Catalog, QuerySpec, SiteId, SystemConfig};
use csqp_core::cancel::{CancelToken, StopReason};
use csqp_core::{bind, BindContext, BindError, Diagnostic, Plan, Policy};
use csqp_cost::{CostModel, Objective};
use csqp_engine::{ExecutionBuilder, ExecutionMetrics, ServerLoad};
use csqp_optimizer::{OptConfig, Optimizer};
use csqp_simkernel::rng::SimRng;
use csqp_workload::load_utilization;

/// Why a plan could not be executed.
#[derive(Debug)]
pub enum RunError {
    /// The plan arena is malformed (cycle, bad arity, dangling child …).
    Structure(Diagnostic),
    /// Site annotations could not be resolved against the catalog.
    Bind(BindError),
    /// A cancel token stopped the run between phases (client disconnect
    /// or expired deadline).
    Interrupted(StopReason),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Structure(d) => write!(f, "invalid plan structure: {d}"),
            RunError::Bind(e) => write!(f, "plan does not bind: {e}"),
            RunError::Interrupted(r) => write!(f, "run interrupted: {r}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Everything one optimized-and-simulated query yields.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// The plan the optimizer chose (join order + site annotations).
    pub plan: Plan,
    /// The optimizer's estimate for that plan under the objective.
    pub est_cost: f64,
    /// Plans the two-phase search evaluated (diagnostic).
    pub evaluations: u64,
    /// Measured execution metrics from the simulator.
    pub metrics: ExecutionMetrics,
}

/// The load-aware cost model for a scenario: Table 2 parameters plus the
/// disk-utilization penalty of any external server load (§4.2.2).
pub fn cost_model<'a>(
    sys: &'a SystemConfig,
    catalog: &'a Catalog,
    query: &'a QuerySpec,
    loads: &[ServerLoad],
) -> CostModel<'a> {
    let mut model = CostModel::new(sys, catalog, query, SiteId::CLIENT);
    for l in loads {
        model = model.with_disk_load(
            l.site,
            load_utilization(l.rate_per_sec, sys.disk_rand_page_ms),
        );
    }
    model
}

/// Bind `plan` and simulate it under the scenario; the returned error is
/// typed, never a panic.
pub fn execute_plan(
    plan: &Plan,
    query: &QuerySpec,
    catalog: &Catalog,
    sys: &SystemConfig,
    loads: &[ServerLoad],
    seed: u64,
) -> Result<ExecutionMetrics, RunError> {
    execute_plan_guarded(
        plan,
        query,
        catalog,
        sys,
        loads,
        seed,
        &CancelToken::inert(),
    )
}

/// [`execute_plan`] with a cancel probe between the simulated-engine
/// phases (validate → bind → execute), so a serving worker abandons dead
/// work at the next phase boundary instead of simulating a plan nobody
/// will read.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_guarded(
    plan: &Plan,
    query: &QuerySpec,
    catalog: &Catalog,
    sys: &SystemConfig,
    loads: &[ServerLoad],
    seed: u64,
    guard: &CancelToken,
) -> Result<ExecutionMetrics, RunError> {
    if let Some(reason) = guard.stop_reason() {
        return Err(RunError::Interrupted(reason));
    }
    plan.validate_structure(query)
        .map_err(RunError::Structure)?;
    if let Some(reason) = guard.stop_reason() {
        return Err(RunError::Interrupted(reason));
    }
    let bound = bind(
        plan,
        BindContext {
            catalog,
            query_site: SiteId::CLIENT,
        },
    )
    .map_err(RunError::Bind)?;
    if let Some(reason) = guard.stop_reason() {
        return Err(RunError::Interrupted(reason));
    }
    let mut builder = ExecutionBuilder::new(query, catalog, sys).with_seed(seed);
    for l in loads {
        builder = builder.with_load(l.site, l.rate_per_sec);
    }
    Ok(builder.execute(&bound))
}

/// The paper's measurement pipeline in one call: optimize `query` under
/// `policy` for `objective` against the scenario's cost model, then
/// simulate the winning plan ("the query optimizer was configured to
/// generate plans that minimized the metric being studied", §4.1).
#[allow(clippy::too_many_arguments)]
pub fn run_query(
    query: &QuerySpec,
    catalog: &Catalog,
    sys: &SystemConfig,
    loads: &[ServerLoad],
    policy: Policy,
    objective: Objective,
    opt: &OptConfig,
    seed: u64,
) -> Result<RunStats, RunError> {
    let model = cost_model(sys, catalog, query, loads);
    let optimizer = Optimizer::new(&model, policy, objective, opt.clone());
    let mut rng = SimRng::seed_from_u64(seed);
    let result = optimizer.optimize(query, &mut rng);
    let metrics = execute_plan(&result.plan, query, catalog, sys, loads, seed)?;
    Ok(RunStats {
        plan: result.plan,
        est_cost: result.cost,
        evaluations: result.evaluations,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_core::NodeId;
    use csqp_workload::{single_server_placement, two_way};

    #[test]
    fn run_query_matches_scenario_pipeline() {
        let q = two_way();
        let cat = single_server_placement(&q);
        let sys = SystemConfig::default();
        let stats = run_query(
            &q,
            &cat,
            &sys,
            &[],
            Policy::QueryShipping,
            Objective::Communication,
            &OptConfig::fast(),
            1,
        )
        .unwrap();
        assert_eq!(stats.metrics.pages_sent, 250);
        assert_eq!(stats.metrics.result_tuples, 10_000);
        assert!((stats.est_cost - 250.0).abs() < 1.0);
        assert!(stats.evaluations > 0);
    }

    #[test]
    fn execute_plan_reports_structure_errors_without_panicking() {
        let q = two_way();
        let cat = single_server_placement(&q);
        let sys = SystemConfig::default();
        let stats = run_query(
            &q,
            &cat,
            &sys,
            &[],
            Policy::DataShipping,
            Objective::ResponseTime,
            &OptConfig::fast(),
            1,
        )
        .unwrap();
        let mut broken = stats.plan;
        let join = broken.join_nodes()[0];
        broken.node_mut(join).children[1] = Some(NodeId(4096));
        let err = execute_plan(&broken, &q, &cat, &sys, &[], 1);
        assert!(matches!(err, Err(RunError::Structure(_))), "{err:?}");
    }
}
