//! Shared experiment plumbing.

use csqp_catalog::{Catalog, QuerySpec, SystemConfig};
use csqp_core::{Plan, Policy};
use csqp_cost::{CostModel, Objective};
use csqp_engine::{ExecutionMetrics, ServerLoad};
use csqp_json::Json;
use csqp_optimizer::OptConfig;
use csqp_simkernel::stats::Sample;

use crate::runner;

/// Experiment-wide knobs.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Optimizer search parameters.
    pub opt: OptConfig,
    /// Repetitions per data point (seeds for placement / optimizer /
    /// load).
    pub reps: usize,
    /// Base seed; repetition `i` of point `p` derives its own stream.
    pub base_seed: u64,
}

impl ExpContext {
    /// Full-quality settings (used for the published numbers).
    pub fn standard() -> ExpContext {
        ExpContext {
            opt: OptConfig::default(),
            reps: 5,
            base_seed: 0xC59D,
        }
    }

    /// Cheap settings for tests and criterion benches.
    pub fn fast() -> ExpContext {
        ExpContext {
            opt: OptConfig::fast(),
            reps: 2,
            base_seed: 0xC59D,
        }
    }

    /// Derive a deterministic seed for repetition `rep` of point `point`.
    pub fn seed(&self, point: u64, rep: u64) -> u64 {
        self.base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(point.wrapping_mul(0x100_0000_01B3))
            .wrapping_add(rep)
    }
}

/// One measured point of a series.
#[derive(Debug, Clone)]
pub struct Point {
    /// The x coordinate (cached %, number of servers, …).
    pub x: f64,
    /// Mean over repetitions.
    pub mean: f64,
    /// Half-width of the 90% confidence interval.
    pub ci90: f64,
    /// Number of repetitions.
    pub n: u64,
}

/// A labelled series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. "DS", "QS", "HY", "Deep 2-Step").
    pub label: String,
    /// Points in x order.
    pub points: Vec<Point>,
}

/// The result of one experiment: what the paper's figure/table shows.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// Experiment id ("fig2", "table1", …).
    pub id: String,
    /// Human title (the paper's caption).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form notes (assumption deviations, in-text numbers).
    pub notes: Vec<String>,
}

impl FigResult {
    /// Find a series by label.
    pub fn series(&self, label: &str) -> &Series {
        self.series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("no series '{label}' in {}", self.id))
    }

    /// Mean value of a series at an x coordinate.
    pub fn value(&self, label: &str, x: f64) -> f64 {
        let s = self.series(label);
        s.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .unwrap_or_else(|| panic!("series '{label}' has no point at x={x}"))
            .mean
    }

    /// Render as an aligned text table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " | {:>22}", s.label);
        }
        let _ = writeln!(out);
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{x:>12.1}");
            for s in &self.series {
                let p = &s.points[i];
                let _ = write!(out, " | {:>13.3} ±{:>6.3}", p.mean, p.ci90);
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "   note: {n}");
        }
        out
    }

    /// Render as pretty-printed JSON (the `--out` persistence format).
    pub fn to_json_pretty(&self) -> String {
        let series = self
            .series
            .iter()
            .map(|s| {
                let points = s
                    .points
                    .iter()
                    .map(|p| {
                        csqp_json::obj(vec![
                            ("x", Json::from(p.x)),
                            ("mean", Json::from(p.mean)),
                            ("ci90", Json::from(p.ci90)),
                            ("n", Json::from(p.n)),
                        ])
                    })
                    .collect::<Vec<_>>();
                csqp_json::obj(vec![
                    ("label", Json::from(s.label.clone())),
                    ("points", Json::Arr(points)),
                ])
            })
            .collect::<Vec<_>>();
        csqp_json::obj(vec![
            ("id", Json::from(self.id.clone())),
            ("title", Json::from(self.title.clone())),
            ("x_label", Json::from(self.x_label.clone())),
            ("y_label", Json::from(self.y_label.clone())),
            ("series", Json::Arr(series)),
            (
                "notes",
                Json::Arr(self.notes.iter().map(|n| Json::from(n.clone())).collect()),
            ),
        ])
        .render_pretty()
    }

    /// Render as CSV (`series,x,mean,ci90,n`).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("series,x,mean,ci90,n\n");
        for s in &self.series {
            for p in &s.points {
                let _ = writeln!(out, "{},{},{},{},{}", s.label, p.x, p.mean, p.ci90, p.n);
            }
        }
        out
    }
}

/// Aggregate repetitions into a [`Point`].
pub fn aggregate(x: f64, values: &[f64]) -> Point {
    let mut s = Sample::new();
    for v in values {
        s.add(*v);
    }
    Point {
        x,
        mean: s.mean(),
        ci90: s.ci90_half_width(),
        n: s.count(),
    }
}

/// A fully specified single-query scenario.
pub struct Scenario<'a> {
    /// The query.
    pub query: &'a QuerySpec,
    /// Placement + cache state.
    pub catalog: &'a Catalog,
    /// Table 2 parameters (with the experiment's BufAlloc).
    pub sys: &'a SystemConfig,
    /// External server-disk loads.
    pub loads: &'a [ServerLoad],
}

impl<'a> Scenario<'a> {
    /// Cost model for this scenario, load-aware.
    pub fn cost_model(&self) -> CostModel<'a> {
        runner::cost_model(self.sys, self.catalog, self.query, self.loads)
    }

    /// Optimize under `policy` for `objective` and simulate the winning
    /// plan. This is the paper's measurement pipeline: "the query
    /// optimizer was configured to generate plans that minimized the
    /// metric being studied" (§4.1). Delegates to [`runner::run_query`],
    /// the entry point shared with the serving layer.
    // Invariant panic: optimizer output is checker-verified and therefore
    // structurally valid and bindable.
    #[allow(clippy::expect_used)]
    pub fn optimize_and_run(
        &self,
        policy: Policy,
        objective: Objective,
        opt: &OptConfig,
        seed: u64,
    ) -> ExecutionMetrics {
        runner::run_query(
            self.query,
            self.catalog,
            self.sys,
            self.loads,
            policy,
            objective,
            opt,
            seed,
        )
        .expect("optimized plans are well-formed")
        .metrics
    }

    /// Simulate a given plan in this scenario.
    // Invariant panic: callers pass optimizer output, which is
    // checker-verified and therefore bindable.
    #[allow(clippy::expect_used)]
    pub fn execute(&self, plan: &Plan, seed: u64) -> ExecutionMetrics {
        runner::execute_plan(plan, self.query, self.catalog, self.sys, self.loads, seed)
            .expect("optimized plans are well-formed")
    }
}

/// Extract the experiment metric from a run.
pub fn metric_of(objective: Objective, m: &ExecutionMetrics) -> f64 {
    match objective {
        Objective::Communication => m.pages_sent as f64,
        Objective::ResponseTime | Objective::TotalCost => m.response_secs(),
    }
}

/// The three policies with the paper's series labels.
pub const POLICIES: [(Policy, &str); 3] = [
    (Policy::DataShipping, "DS"),
    (Policy::QueryShipping, "QS"),
    (Policy::HybridShipping, "HY"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_workload::{single_server_placement, two_way};

    #[test]
    fn aggregate_computes_ci() {
        let p = aggregate(5.0, &[10.0, 12.0, 11.0, 9.0]);
        assert_eq!(p.n, 4);
        assert!((p.mean - 10.5).abs() < 1e-12);
        assert!(p.ci90 > 0.0);
    }

    #[test]
    fn fig_result_accessors_and_rendering() {
        let fig = FigResult {
            id: "figX".into(),
            title: "test".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                label: "DS".into(),
                points: vec![aggregate(0.0, &[1.0, 1.0])],
            }],
            notes: vec!["hello".into()],
        };
        assert_eq!(fig.value("DS", 0.0), 1.0);
        let t = fig.render_table();
        assert!(t.contains("figX"));
        assert!(t.contains("DS"));
        assert!(t.contains("hello"));
        let csv = fig.to_csv();
        assert!(csv.starts_with("series,x,mean,ci90,n"));
        assert!(csv.contains("DS,0,1,0,2"));
    }

    #[test]
    fn scenario_pipeline_runs_end_to_end() {
        let q = two_way();
        let cat = single_server_placement(&q);
        let sys = SystemConfig::default();
        let scenario = Scenario {
            query: &q,
            catalog: &cat,
            sys: &sys,
            loads: &[],
        };
        let m = scenario.optimize_and_run(
            Policy::QueryShipping,
            Objective::Communication,
            &OptConfig::fast(),
            1,
        );
        assert_eq!(m.pages_sent, 250);
        assert_eq!(m.result_tuples, 10_000);
    }

    #[test]
    fn seeds_differ_across_points_and_reps() {
        let ctx = ExpContext::fast();
        assert_ne!(ctx.seed(1, 0), ctx.seed(1, 1));
        assert_ne!(ctx.seed(1, 0), ctx.seed(2, 0));
    }
}
