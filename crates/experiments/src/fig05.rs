//! Figure 5: Response Time, 2-Way Join — *maximum* allocation, varying
//! caching, no load.
//!
//! Expected shape (§4.2.3): QS flat; DS improves linearly with caching;
//! the crossover sits slightly *past* 50% because DS faults pages in one
//! at a time while QS overlaps communication with join processing. HY
//! tracks the lower envelope (the paper notes one optimizer blip at 75%
//! from its optimistic overlap assumption).

use csqp_catalog::{BufAlloc, SystemConfig};
use csqp_cost::Objective;
use csqp_workload::{cache_all, single_server_placement, two_way};

use crate::common::{aggregate, metric_of, ExpContext, FigResult, Scenario, Series, POLICIES};
use crate::fig02::CACHE_STEPS;

/// Run the experiment.
pub fn run(ctx: &ExpContext) -> FigResult {
    let query = two_way();
    let mut sys = SystemConfig::default();
    sys.buf_alloc = BufAlloc::Max;
    let mut series: Vec<Series> = POLICIES
        .iter()
        .map(|(_, label)| Series {
            label: label.to_string(),
            points: Vec::new(),
        })
        .collect();

    for (xi, pct) in CACHE_STEPS.iter().enumerate() {
        let mut catalog = single_server_placement(&query);
        cache_all(&mut catalog, &query, pct / 100.0);
        let scenario = Scenario {
            query: &query,
            catalog: &catalog,
            sys: &sys,
            loads: &[],
        };
        for (pi, (policy, _)) in POLICIES.iter().enumerate() {
            let values: Vec<f64> = (0..ctx.reps)
                .map(|rep| {
                    let seed = ctx.seed((xi * 3 + pi) as u64, rep as u64);
                    let m =
                        scenario.optimize_and_run(*policy, Objective::ResponseTime, &ctx.opt, seed);
                    metric_of(Objective::ResponseTime, &m)
                })
                .collect();
            series[pi].points.push(aggregate(*pct, &values));
        }
    }

    FigResult {
        id: "fig5".into(),
        title: "Response Time, 2-Way Join, 1 Server, Vary Caching, No Load, Max Alloc".into(),
        x_label: "cached %".into(),
        y_label: "response time [s]".into(),
        series,
        notes: vec![
            "paper: QS flat; DS improves linearly; crossover slightly past 50% \
             (DS page-at-a-time faulting vs QS overlapped pipelining)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_matches_paper() {
        let fig = run(&ExpContext::fast());
        // QS flat.
        let qs0 = fig.value("QS", 0.0);
        let qs100 = fig.value("QS", 100.0);
        assert!(
            (qs0 - qs100).abs() / qs0 < 0.05,
            "QS flat: {qs0} vs {qs100}"
        );
        // DS improves monotonically with caching, crossing QS.
        let ds0 = fig.value("DS", 0.0);
        let ds100 = fig.value("DS", 100.0);
        assert!(ds0 > qs0, "DS slower than QS with empty cache");
        assert!(ds100 < qs100, "DS faster than QS fully cached");
        assert!(ds100 < ds0);
        // The crossover is *past* 50%: at exactly 50% cached DS still
        // loses (the page-at-a-time faulting handicap).
        assert!(
            fig.value("DS", 50.0) > fig.value("QS", 50.0),
            "DS should still lose at 50%: {} vs {}",
            fig.value("DS", 50.0),
            fig.value("QS", 50.0)
        );
        // HY tracks the lower envelope within optimizer slack.
        for pct in CACHE_STEPS {
            let hy = fig.value("HY", pct);
            let best = fig.value("DS", pct).min(fig.value("QS", pct));
            assert!(hy <= best * 1.15, "HY {hy} vs best {best} at {pct}%");
        }
    }
}
