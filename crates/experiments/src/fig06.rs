//! Figure 6: Pages Sent, 10-Way Join — varying number of servers, no
//! caching.
//!
//! Expected shape (§4.3.1): DS flat at 2500 pages (ten 250-page
//! relations); QS grows from 250 (one server: joins local, ship the
//! result) towards 2500 as relations spread over more servers; HY matches
//! the lower envelope.

use csqp_catalog::SystemConfig;
use csqp_cost::Objective;
use csqp_workload::{random_placement, ten_way};

use crate::common::{aggregate, metric_of, ExpContext, FigResult, Scenario, Series, POLICIES};

/// Server counts on the x axis.
pub const SERVER_STEPS: [u32; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];

/// Shared driver for Figures 6 and 7.
pub fn run_comm_experiment(ctx: &ExpContext, cache_five: bool, id: &str, title: &str) -> FigResult {
    let query = ten_way();
    let sys = SystemConfig::default();
    let mut series: Vec<Series> = POLICIES
        .iter()
        .map(|(_, label)| Series {
            label: label.to_string(),
            points: Vec::new(),
        })
        .collect();

    for (xi, servers) in SERVER_STEPS.iter().enumerate() {
        let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); POLICIES.len()];
        for rep in 0..ctx.reps {
            // A fresh random placement per repetition (§4.3: "the data
            // points presented below represent the average of many such
            // random placements").
            let seed = ctx.seed(xi as u64, rep as u64);
            let mut rng = csqp_simkernel::rng::SimRng::seed_from_u64(seed);
            let mut catalog = random_placement(&query, *servers, &mut rng);
            if cache_five {
                csqp_workload::cache_k_relations(&mut catalog, &query, 5, &mut rng);
            }
            let scenario = Scenario {
                query: &query,
                catalog: &catalog,
                sys: &sys,
                loads: &[],
            };
            for (pi, (policy, _)) in POLICIES.iter().enumerate() {
                let m = scenario.optimize_and_run(
                    *policy,
                    Objective::Communication,
                    &ctx.opt,
                    seed.wrapping_add(pi as u64 + 1),
                );
                per_policy[pi].push(metric_of(Objective::Communication, &m));
            }
        }
        for (pi, values) in per_policy.iter().enumerate() {
            series[pi].points.push(aggregate(*servers as f64, values));
        }
    }

    FigResult {
        id: id.into(),
        title: title.into(),
        x_label: "number of servers".into(),
        y_label: "pages sent".into(),
        series,
        notes: vec!["placements are random with every server holding >=1 relation".into()],
    }
}

/// Run Figure 6.
pub fn run(ctx: &ExpContext) -> FigResult {
    run_comm_experiment(
        ctx,
        false,
        "fig6",
        "Pages Sent, 10-Way Join, Vary Servers, No Caching",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_matches_paper() {
        let mut ctx = ExpContext::fast();
        ctx.reps = 2;
        let fig = run(&ctx);
        // DS flat at 2500 pages regardless of server count.
        for s in [1.0, 5.0, 10.0] {
            assert_eq!(fig.value("DS", s), 2500.0, "DS at {s} servers");
        }
        // QS: 250 with one server, grows with more, reaches DS at ten.
        assert_eq!(fig.value("QS", 1.0), 250.0);
        assert!(fig.value("QS", 5.0) > fig.value("QS", 2.0));
        assert!(fig.value("QS", 10.0) > 1500.0);
        // HY tracks the lower envelope (10% slack at the fast search
        // budget; the standard run converges tighter, see EXPERIMENTS.md).
        for s in SERVER_STEPS {
            let hy = fig.value("HY", s as f64);
            let best = fig.value("DS", s as f64).min(fig.value("QS", s as f64));
            assert!(hy <= best * 1.10 + 5.0, "HY {hy} vs best {best} at {s}");
        }
        // §4.3.1's non-linearity: two servers more than double one
        // server's cost (co-located but non-joinable relations).
        assert!(fig.value("QS", 2.0) > 2.0 * fig.value("QS", 1.0));
    }
}
