//! Figure 10: Relative Response Time, 10-Way Join — static vs 2-step,
//! left-deep vs bushy compile-time plans, varying servers; minimum
//! allocation, no caching.
//!
//! Compile-time knowledge is deliberately wrong (§5.2): left-deep plans
//! were compiled believing the database is centralized; bushy plans
//! believing it is fully distributed. At runtime relations sit randomly
//! on the actual servers. Every strategy's response time is reported
//! relative to an "ideal" plan — full hybrid optimization against the
//! true runtime state.
//!
//! Expected shape: static-deep pays a huge penalty (all joins on one
//! site); 2-step-deep mitigates but cannot create parallelism; static
//! bushy suffers at both extremes; 2-step bushy ≈ 1 everywhere.

use csqp_catalog::{BufAlloc, QuerySpec, SystemConfig};
use csqp_core::Policy;
use csqp_cost::Objective;
use csqp_optimizer::{CompileTimeAssumption, TwoStepPlanner};
use csqp_simkernel::rng::SimRng;
use csqp_workload::{random_placement, ten_way, ten_way_hisel};

use crate::common::{aggregate, ExpContext, FigResult, Scenario, Series};

/// Server counts on the x axis (1..10; kept even for runtime).
pub const SERVER_STEPS: [u32; 5] = [1, 2, 4, 6, 10];

/// Shared driver for Figures 10 and 11.
pub fn run_twostep_experiment(
    ctx: &ExpContext,
    query: &QuerySpec,
    id: &str,
    title: &str,
) -> FigResult {
    let mut sys = SystemConfig::default();
    sys.buf_alloc = BufAlloc::Min;
    let planner = TwoStepPlanner {
        policy: Policy::HybridShipping,
        objective: Objective::ResponseTime,
        config: ctx.opt.clone(),
    };
    let labels = ["Deep Static", "Deep 2-Step", "Bushy Static", "Bushy 2-Step"];
    let mut series: Vec<Series> = labels
        .iter()
        .map(|l| Series {
            label: l.to_string(),
            points: Vec::new(),
        })
        .collect();

    for (xi, servers) in SERVER_STEPS.iter().enumerate() {
        let mut rel: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for rep in 0..ctx.reps {
            let seed = ctx.seed(xi as u64, rep as u64);
            let mut rng = SimRng::seed_from_u64(seed);
            let catalog = random_placement(query, *servers, &mut rng);
            let scenario = Scenario {
                query,
                catalog: &catalog,
                sys: &sys,
                loads: &[],
            };

            // Ideal: full hybrid optimization against the true state.
            // The randomized search is not exhaustive, so the ideal is
            // taken as the best plan observed with true knowledge —
            // including any strategy that happens to beat the one-shot
            // hybrid search (ratios are then >= 1 by construction, as in
            // the paper's figure).
            let hy = scenario
                .optimize_and_run(
                    Policy::HybridShipping,
                    Objective::ResponseTime,
                    &ctx.opt,
                    seed,
                )
                .response_secs();

            let mut times = [0.0f64; 4];
            for (i, assumption) in [
                CompileTimeAssumption::Centralized,
                CompileTimeAssumption::FullyDistributed,
            ]
            .iter()
            .enumerate()
            {
                let compiled = planner.compile(query, &sys, *assumption, &mut rng);
                times[i * 2] = scenario.execute(&compiled, seed).response_secs();
                let selected = planner.site_select(&compiled, query, &sys, &catalog, &mut rng);
                times[i * 2 + 1] = scenario.execute(&selected, seed).response_secs();
            }
            let ideal = times.iter().copied().fold(hy, f64::min);
            for (i, t) in times.iter().enumerate() {
                rel[i].push(t / ideal);
            }
        }
        for (i, values) in rel.iter().enumerate() {
            series[i].points.push(aggregate(*servers as f64, values));
        }
    }

    FigResult {
        id: id.into(),
        title: title.into(),
        x_label: "number of servers".into(),
        y_label: "relative response time".into(),
        series,
        notes: vec![
            "relative to an ideal plan (full hybrid reoptimization at runtime)".into(),
            "deep = compiled assuming a centralized database; bushy = fully distributed".into(),
        ],
    }
}

/// Run Figure 10 (moderate selectivity).
pub fn run(ctx: &ExpContext) -> FigResult {
    run_twostep_experiment(
        ctx,
        &ten_way(),
        "fig10",
        "Relative Response Time, 10-Way Join, Deep & Bushy, Static & 2-Step",
    )
}

/// Run Figure 11's workload through the same driver (used by `fig11`).
pub fn run_hisel(ctx: &ExpContext) -> FigResult {
    run_twostep_experiment(
        ctx,
        &ten_way_hisel(),
        "fig11",
        "Relative Response Time, HiSel 10-Way Join, Deep & Bushy, Static & 2-Step",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_shape_matches_paper() {
        let mut ctx = ExpContext::fast();
        ctx.reps = 2;
        let fig = run(&ctx);
        // With several servers, static-deep pays the largest penalty:
        // all joins land on one site.
        let sd = fig.value("Deep Static", 10.0);
        let b2 = fig.value("Bushy 2-Step", 10.0);
        assert!(sd > 1.2, "deep static should pay a clear penalty: {sd}");
        assert!(sd > b2, "deep static {sd} worse than bushy 2-step {b2}");
        // 2-step mitigates the deep plan's penalty.
        let d2 = fig.value("Deep 2-Step", 10.0);
        assert!(
            d2 < sd * 1.02,
            "2-step should not lose to static: {d2} vs {sd}"
        );
        // Bushy 2-step stays near the ideal across server counts.
        for s in SERVER_STEPS {
            let v = fig.value("Bushy 2-Step", s as f64);
            assert!(v < 1.6, "bushy 2-step near ideal at {s} servers: {v}");
        }
        // The ideal is the best observed plan, so every ratio >= 1.
        for s in &fig.series {
            for p in &s.points {
                assert!(p.mean >= 1.0 - 1e-9, "{} at {}: {}", s.label, p.x, p.mean);
            }
        }
    }
}
