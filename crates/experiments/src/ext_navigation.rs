//! Extension experiment (paper §7 future work): navigation-based access.
//!
//! An application at the client chases 1,000 object references through a
//! benchmark relation; the sweep varies the cached fraction for two
//! locality levels. This quantifies the introduction's claim that
//! data-shipping's client caching is what makes "light-weight …
//! navigational data access" viable.

use csqp_catalog::{RelId, SystemConfig};
use csqp_engine::ExecutionBuilder;
use csqp_workload::{single_server_placement, two_way};

use crate::common::{aggregate, ExpContext, FigResult, Series};

/// Reference-chain length.
pub const STEPS: u64 = 1_000;

/// Run the extension experiment.
pub fn run(ctx: &ExpContext) -> FigResult {
    let query = two_way();
    let sys = SystemConfig::default();
    let mut series: Vec<Series> = [0.0f64, 0.8]
        .iter()
        .map(|l| Series {
            label: format!("locality {l:.1}"),
            points: Vec::new(),
        })
        .collect();

    for (xi, cached_pct) in [0.0f64, 25.0, 50.0, 75.0, 100.0].iter().enumerate() {
        for (li, locality) in [0.0f64, 0.8].iter().enumerate() {
            let vals: Vec<f64> = (0..ctx.reps)
                .map(|rep| {
                    let mut catalog = single_server_placement(&query);
                    catalog.set_cached_fraction(RelId(0), cached_pct / 100.0);
                    ExecutionBuilder::new(&query, &catalog, &sys)
                        .with_seed(ctx.seed(xi as u64, rep as u64))
                        .navigate(RelId(0), STEPS, *locality)
                        .response_secs()
                })
                .collect();
            series[li].points.push(aggregate(*cached_pct, &vals));
        }
    }

    FigResult {
        id: "ext-navigation".into(),
        title: "Extension (§7): Navigational Access, 1000 Reference Traversal".into(),
        x_label: "cached %".into(),
        y_label: "elapsed [s]".into(),
        series,
        notes: vec![
            "uncached steps pay a synchronous fault RPC; cached steps run at \
             client-disk speed"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_and_locality_both_pay_off() {
        let fig = run(&ExpContext::fast());
        for label in ["locality 0.0", "locality 0.8"] {
            let cold = fig.value(label, 0.0);
            let warm = fig.value(label, 100.0);
            assert!(warm < cold, "{label}: caching must help ({cold} -> {warm})");
        }
        // Locality helps at every cache level.
        for pct in [0.0, 50.0, 100.0] {
            assert!(
                fig.value("locality 0.8", pct) < fig.value("locality 0.0", pct),
                "locality should help at {pct}%"
            );
        }
    }
}
