//! Experiment CLI: regenerate any table or figure of the paper.
//!
//! ```text
//! csqp-experiments [--fast] [--reps N] [--out DIR] [all | <ids>...]
//! ```
//!
//! Prints each experiment as an aligned table and, with `--out`, writes
//! `<id>.csv` and `<id>.json` files.

use std::path::PathBuf;
use std::time::Instant;

use csqp_experiments::{run_by_id, ExpContext, ALL_EXPERIMENTS};

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut ctx = ExpContext::standard();
    let mut out_dir: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => ctx = ExpContext::fast(),
            "--reps" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a number"));
                ctx.reps = n;
            }
            "--seed" => {
                let s = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
                ctx.base_seed = s;
            }
            "--out" => {
                let dir = args
                    .next()
                    .unwrap_or_else(|| die("--out needs a directory"));
                out_dir = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!(
                    "usage: csqp-experiments [--fast] [--reps N] [--seed S] [--out DIR] \
                     [all | {}]",
                    ALL_EXPERIMENTS.join(" | ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!(
                "cannot create output directory {}: {e}",
                dir.display()
            ));
        }
    }

    for id in &ids {
        let start = Instant::now();
        let Some(fig) = run_by_id(id, &ctx) else {
            eprintln!("unknown experiment '{id}' (try --help)");
            std::process::exit(2);
        };
        println!("{}", fig.render_table());
        println!("   [{} finished in {:.1?}]\n", fig.id, start.elapsed());
        if let Some(dir) = &out_dir {
            for (ext, body) in [("csv", fig.to_csv()), ("json", fig.to_json_pretty())] {
                let path = dir.join(format!("{}.{ext}", fig.id));
                if let Err(e) = std::fs::write(&path, body) {
                    die(&format!("cannot write {}: {e}", path.display()));
                }
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
