//! Figure 4: Response Time of *data-shipping*, 2-Way Join — varying
//! server disk load and client caching, minimum allocation.
//!
//! Expected shape (§4.2.2): with an unloaded (or lightly loaded) server
//! disk, caching *hurts* DS (it moves scan I/O onto the client disk where
//! the join spills already contend). At high load (≥ 60 req/s) the
//! benefit of off-loading the saturated server disk wins and caching
//! *helps*.

use csqp_catalog::{BufAlloc, SiteId, SystemConfig};
use csqp_core::Policy;
use csqp_cost::Objective;
use csqp_engine::ServerLoad;
use csqp_workload::{cache_all, single_server_placement, two_way, FIG4_LOAD_LEVELS};

use crate::common::{aggregate, metric_of, ExpContext, FigResult, Scenario, Series};
use crate::fig02::CACHE_STEPS;

/// Run the experiment.
pub fn run(ctx: &ExpContext) -> FigResult {
    let query = two_way();
    let mut sys = SystemConfig::default();
    sys.buf_alloc = BufAlloc::Min;
    let mut series = Vec::new();

    for (li, load) in FIG4_LOAD_LEVELS.iter().enumerate() {
        let loads: Vec<ServerLoad> = if *load > 0.0 {
            vec![ServerLoad {
                site: SiteId::server(1),
                rate_per_sec: *load,
            }]
        } else {
            Vec::new()
        };
        let mut s = Series {
            label: format!("{load:.0} req/sec"),
            points: Vec::new(),
        };
        for (xi, pct) in CACHE_STEPS.iter().enumerate() {
            let mut catalog = single_server_placement(&query);
            cache_all(&mut catalog, &query, pct / 100.0);
            let scenario = Scenario {
                query: &query,
                catalog: &catalog,
                sys: &sys,
                loads: &loads,
            };
            let values: Vec<f64> = (0..ctx.reps)
                .map(|rep| {
                    let seed = ctx.seed((li * 5 + xi) as u64, rep as u64);
                    let m = scenario.optimize_and_run(
                        Policy::DataShipping,
                        Objective::ResponseTime,
                        &ctx.opt,
                        seed,
                    );
                    metric_of(Objective::ResponseTime, &m)
                })
                .collect();
            s.points.push(aggregate(*pct, &values));
        }
        series.push(s);
    }

    // Supplementary in-text numbers (§4.2.2): QS response under load.
    let mut notes = vec!["paper: caching hurts DS at 0/40 req/s, helps at 60-70 req/s".into()];
    {
        let catalog = single_server_placement(&query);
        for rate in [40.0, 60.0] {
            let loads = vec![ServerLoad {
                site: SiteId::server(1),
                rate_per_sec: rate,
            }];
            let scenario = Scenario {
                query: &query,
                catalog: &catalog,
                sys: &sys,
                loads: &loads,
            };
            let m = scenario.optimize_and_run(
                Policy::QueryShipping,
                Objective::ResponseTime,
                &ctx.opt,
                ctx.seed(99, rate as u64),
            );
            notes.push(format!(
                "QS at {rate:.0} req/s: {:.1} s (paper: 19 s at 40, 36 s at 60)",
                m.response_secs()
            ));
        }
    }

    FigResult {
        id: "fig4".into(),
        title: "Response Time, DS, 2-Way Join, 1 Server, Vary Load & Caching, Min Alloc".into(),
        x_label: "cached %".into(),
        y_label: "response time [s]".into(),
        series,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_matches_paper() {
        let fig = run(&ExpContext::fast());
        // Unloaded: caching hurts DS.
        let unloaded_0 = fig.value("0 req/sec", 0.0);
        let unloaded_100 = fig.value("0 req/sec", 100.0);
        assert!(
            unloaded_100 > unloaded_0,
            "caching should hurt at no load: {unloaded_0} -> {unloaded_100}"
        );
        // Heavily loaded: caching helps DS significantly.
        let hot_0 = fig.value("70 req/sec", 0.0);
        let hot_100 = fig.value("70 req/sec", 100.0);
        assert!(
            hot_100 < 0.8 * hot_0,
            "caching should help at 70 req/s: {hot_0} -> {hot_100}"
        );
        // More load never makes the uncached case faster.
        assert!(fig.value("70 req/sec", 0.0) > fig.value("0 req/sec", 0.0));
        // Fully cached, DS doesn't care about server load at all.
        let a = fig.value("0 req/sec", 100.0);
        let b = fig.value("70 req/sec", 100.0);
        assert!((a - b).abs() / a < 0.05, "{a} vs {b}");
    }
}
