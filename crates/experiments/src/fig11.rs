//! Figure 11: Relative Response Time for the HiSel 10-way join (§5.2).
//!
//! "The weakness of bushy plans become apparent if the join selectivity
//! is high. … with small number of servers, the bushy plans perform
//! poorly for a HiSel 10-way join in which only 20% of the tuples of
//! every input relation participate in the output of a join. As servers
//! are added, however, a bushy 2-step plan performs well for this query,
//! too, because the extra work that it does is split across many servers
//! and is largely done in parallel."

use crate::common::{ExpContext, FigResult};
use crate::fig10::run_hisel;

/// Run Figure 11.
pub fn run(ctx: &ExpContext) -> FigResult {
    run_hisel(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_shape_matches_paper() {
        let mut ctx = ExpContext::fast();
        ctx.reps = 2;
        let fig = run(&ctx);
        // Bushy 2-step recovers with many servers.
        let few = fig.value("Bushy 2-Step", 1.0);
        let many = fig.value("Bushy 2-Step", 10.0);
        assert!(
            many <= few * 1.05,
            "bushy 2-step should not get worse with servers: {few} -> {many}"
        );
        assert!(many < 1.6, "bushy 2-step near ideal at 10 servers: {many}");
        // Static strategies degrade relative to 2-step at 10 servers.
        let ds = fig.value("Deep Static", 10.0);
        let d2 = fig.value("Deep 2-Step", 10.0);
        assert!(
            d2 <= ds * 1.05,
            "2-step should not lose to static: {d2} vs {ds}"
        );
    }
}
