//! Figure 7: Pages Sent, 10-Way Join — five of the ten relations fully
//! cached at the client, varying servers.
//!
//! Expected shape (§4.3.1): DS halves to 1250 pages; QS unchanged from
//! Figure 6 (it ignores the cache); and HY can beat *both* pure policies
//! at intermediate server counts by joining co-located relations at
//! whichever site (client cache or server) avoids shipment.

use crate::common::{ExpContext, FigResult};
use crate::fig06::run_comm_experiment;

/// Run Figure 7.
pub fn run(ctx: &ExpContext) -> FigResult {
    let mut fig = run_comm_experiment(
        ctx,
        true,
        "fig7",
        "Pages Sent, 10-Way Join, Vary Servers, 5 Relations Cached",
    );
    fig.notes
        .push("paper: DS flat 1250; QS as in Fig 6; HY below both for mid server counts".into());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig06::SERVER_STEPS;

    #[test]
    fn fig7_shape_matches_paper() {
        let mut ctx = ExpContext::fast();
        ctx.reps = 2;
        let fig = run(&ctx);
        // DS ships exactly the five uncached relations.
        for s in [1.0, 5.0, 10.0] {
            assert_eq!(fig.value("DS", s), 1250.0, "DS at {s} servers");
        }
        // QS still ignores the cache: one server = result only.
        assert_eq!(fig.value("QS", 1.0), 250.0);
        // Beyond a few servers QS sends more than DS.
        assert!(fig.value("QS", 8.0) > fig.value("DS", 8.0));
        // HY at most the lower envelope everywhere…
        let mut strictly_better = 0;
        for s in SERVER_STEPS {
            let hy = fig.value("HY", s as f64);
            let best = fig.value("DS", s as f64).min(fig.value("QS", s as f64));
            assert!(hy <= best * 1.10 + 5.0, "HY {hy} vs best {best} at {s}");
            if hy < best * 0.95 {
                strictly_better += 1;
            }
        }
        // …and strictly below both for at least one mid server count
        // (the paper's headline for this figure).
        assert!(
            strictly_better >= 1,
            "HY should beat both pure policies somewhere"
        );
    }
}
