//! Extension experiment (paper §7 future work): multi-query workloads.
//!
//! Runs 1, 2, 4 and 8 concurrent copies of the 2-way benchmark join on a
//! single server and reports the mean response time for (a) all
//! query-shipping and (b) an alternating data-/query-shipping mix with a
//! fully cached client. The mix exploits the *aggregate* resources of
//! the system — the motivation the paper gives for flexible
//! architectures in multi-user settings.

use csqp_catalog::{BufAlloc, RelId, SiteId, SystemConfig};
use csqp_core::{bind, Annotation, BindContext, BoundPlan, JoinTree};
use csqp_engine::ExecutionBuilder;
use csqp_workload::{single_server_placement, two_way};

use crate::common::{aggregate, ExpContext, FigResult, Series};

/// Concurrency levels on the x axis.
pub const COPIES: [usize; 4] = [1, 2, 4, 8];

// Invariant panic: the fixed uniform-annotation two-way plans built here
// are acyclic by construction, so binding cannot fail.
#[allow(clippy::unwrap_used)]
fn plan(
    query: &csqp_catalog::QuerySpec,
    catalog: &csqp_catalog::Catalog,
    jann: Annotation,
    sann: Annotation,
) -> BoundPlan {
    let p = JoinTree::left_deep(&[RelId(0), RelId(1)]).into_plan(query, jann, sann);
    bind(
        &p,
        BindContext {
            catalog,
            query_site: SiteId::CLIENT,
        },
    )
    .unwrap()
}

/// Run the extension experiment.
pub fn run(ctx: &ExpContext) -> FigResult {
    let query = two_way();
    let mut sys = SystemConfig::default();
    sys.buf_alloc = BufAlloc::Max;

    let mut all_qs = Series {
        label: "all QS".into(),
        points: Vec::new(),
    };
    let mut mixed = Series {
        label: "DS/QS mix (cached)".into(),
        points: Vec::new(),
    };

    for (xi, &n) in COPIES.iter().enumerate() {
        let mut qs_vals = Vec::new();
        let mut mix_vals = Vec::new();
        for rep in 0..ctx.reps {
            let seed = ctx.seed(xi as u64, rep as u64);

            let catalog = single_server_placement(&query);
            let qs = plan(
                &query,
                &catalog,
                Annotation::InnerRel,
                Annotation::PrimaryCopy,
            );
            let res = ExecutionBuilder::new(&query, &catalog, &sys)
                .with_seed(seed)
                .execute_many(&vec![qs; n]);
            qs_vals.push(
                res.per_query
                    .iter()
                    .map(|q| q.response_time.as_secs_f64())
                    .sum::<f64>()
                    / n as f64,
            );

            let mut cached = single_server_placement(&query);
            cached.set_cached_fraction(RelId(0), 1.0);
            cached.set_cached_fraction(RelId(1), 1.0);
            let ds = plan(&query, &cached, Annotation::Consumer, Annotation::Client);
            let qs2 = plan(
                &query,
                &cached,
                Annotation::InnerRel,
                Annotation::PrimaryCopy,
            );
            let mix: Vec<BoundPlan> = (0..n)
                .map(|i| if i % 2 == 0 { ds.clone() } else { qs2.clone() })
                .collect();
            let res = ExecutionBuilder::new(&query, &cached, &sys)
                .with_seed(seed)
                .execute_many(&mix);
            mix_vals.push(
                res.per_query
                    .iter()
                    .map(|q| q.response_time.as_secs_f64())
                    .sum::<f64>()
                    / n as f64,
            );
        }
        all_qs.points.push(aggregate(n as f64, &qs_vals));
        mixed.points.push(aggregate(n as f64, &mix_vals));
    }

    FigResult {
        id: "ext-multiquery".into(),
        title: "Extension (§7): Concurrent Queries, Mean Response Time".into(),
        x_label: "concurrent queries".into(),
        y_label: "mean response time [s]".into(),
        series: vec![all_qs, mixed],
        notes: vec![
            "all QS piles onto one server disk; the cached DS/QS mix uses the \
             aggregate client+server resources"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_scales_better_than_all_qs() {
        let fig = run(&ExpContext::fast());
        let qs8 = fig.value("all QS", 8.0);
        let mix8 = fig.value("DS/QS mix (cached)", 8.0);
        assert!(
            mix8 < 0.7 * qs8,
            "mix should scale much better at 8 copies: {mix8} vs {qs8}"
        );
        // At one copy they are near-identical.
        let qs1 = fig.value("all QS", 1.0);
        let mix1 = fig.value("DS/QS mix (cached)", 1.0);
        assert!((qs1 - mix1).abs() / qs1 < 0.1);
        // All-QS degrades super-linearly in the copy count.
        assert!(qs8 > 3.0 * qs1);
    }
}
