//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§4 and §5), plus shared plumbing for repetition control and
//! 90% confidence intervals.
//!
//! Every experiment returns a [`FigResult`] — labelled series of
//! `(x, mean, ci90)` points — that the CLI prints as an aligned table and
//! writes as CSV. The paper's qualitative claims for each figure are
//! asserted by the crate's tests (at reduced repetition counts) and by
//! the workspace integration suite.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod calibration;
pub mod common;
pub mod ext_multiquery;
pub mod ext_navigation;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod runner;
pub mod tables;

pub use common::{ExpContext, FigResult, Point, Series};
pub use runner::{execute_plan, run_query, RunError, RunStats};

/// Run an experiment by id (`"fig2"`, `"table1"`, `"calibration"`, …).
/// Returns `None` for an unknown id.
pub fn run_by_id(id: &str, ctx: &ExpContext) -> Option<FigResult> {
    Some(match id {
        "table1" => tables::table1(),
        "table2" => tables::table2(),
        "calibration" => calibration::run(ctx),
        "fig2" | "fig02" => fig02::run(ctx),
        "fig3" | "fig03" => fig03::run(ctx),
        "fig4" | "fig04" => fig04::run(ctx),
        "fig5" | "fig05" => fig05::run(ctx),
        "fig6" | "fig06" => fig06::run(ctx),
        "fig7" | "fig07" => fig07::run(ctx),
        "fig8" | "fig08" => fig08::run(ctx),
        "fig9" | "fig09" => fig09::run(ctx),
        "fig10" => fig10::run(ctx),
        "fig11" => fig11::run(ctx),
        "ext-multiquery" => ext_multiquery::run(ctx),
        "ext-navigation" => ext_navigation::run(ctx),
        _ => return None,
    })
}

/// All experiment ids, in paper order, followed by the future-work
/// extensions.
pub const ALL_EXPERIMENTS: [&str; 15] = [
    "table1",
    "table2",
    "calibration",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "ext-multiquery",
    "ext-navigation",
];
