//! Figure 9: static vs 2-step plans under data migration — the worked
//! 4-way join example of §5.1.
//!
//! Compile-time placement: A, B on server 1; C, D on server 2.
//! Runtime placement:      B, C on server 1; A, D on server 2.
//!
//! The *static* plan is the paper's Figure 9(a): `(A⋈B)` and `(C⋈D)`
//! joined locally at their compile-time servers, the two results joined
//! at the client. After the migration it must ship two base relations
//! *plus* both intermediates. The *2-step* plan keeps that join order but
//! re-selects sites; full *re-optimization* also changes the order to
//! `(B⋈C)`, `(A⋈D)`.
//!
//! Deviation (documented in DESIGN.md): the paper stipulates "join
//! results and base relations are the same size", which no consistent
//! independence selectivity model satisfies for the 4-way result — ours
//! is one page. Adding the stipulated 250-page result shipment to the
//! 2-step and reoptimized plans recovers the paper's 1000 : 750 : 500
//! exactly; in our units the series is ≈ 1000 : 500 : 250.

use csqp_catalog::{JoinEdge, QuerySpec, RelId, Relation, SystemConfig};
use csqp_core::{Annotation, JoinTree, Plan, Policy};
use csqp_cost::Objective;
use csqp_optimizer::{explicit_placement, TwoStepPlanner};
use csqp_simkernel::rng::SimRng;
use csqp_workload::MODERATE_SEL;

use crate::common::{aggregate, ExpContext, FigResult, Scenario, Series};

/// The 4-way cycle query A-B-C-D-A ("assuming that all relations are
/// joinable", §5.1).
pub fn cycle_query() -> QuerySpec {
    let rels = (0..4)
        .map(|i| Relation::benchmark(RelId(i), ["A", "B", "C", "D"][i as usize]))
        .collect();
    let edges = vec![
        JoinEdge {
            a: RelId(0),
            b: RelId(1),
            selectivity: MODERATE_SEL,
        },
        JoinEdge {
            a: RelId(1),
            b: RelId(2),
            selectivity: MODERATE_SEL,
        },
        JoinEdge {
            a: RelId(2),
            b: RelId(3),
            selectivity: MODERATE_SEL,
        },
        JoinEdge {
            a: RelId(3),
            b: RelId(0),
            selectivity: MODERATE_SEL,
        },
    ];
    QuerySpec::new(rels, edges)
}

/// The paper's Figure 9(a) compile-time plan: `(A⋈B) ⋈ (C⋈D)`, the two
/// lower joins at their producers' (compile-time co-located) servers, the
/// top join at the client.
// Invariant panic: the tree literally constructed above has three joins.
#[allow(clippy::expect_used)]
pub fn paper_static_plan(query: &QuerySpec) -> Plan {
    let tree = JoinTree::join(
        JoinTree::join(JoinTree::leaf(RelId(0)), JoinTree::leaf(RelId(1))),
        JoinTree::join(JoinTree::leaf(RelId(2)), JoinTree::leaf(RelId(3))),
    );
    let mut plan = tree.into_plan(query, Annotation::InnerRel, Annotation::PrimaryCopy);
    let top = *plan.join_nodes().last().expect("three joins");
    plan.node_mut(top).ann = Annotation::Consumer;
    plan
}

/// Run the migration experiment.
pub fn run(ctx: &ExpContext) -> FigResult {
    let query = cycle_query();
    let sys = SystemConfig::default();
    // Migration: B,C @ server1; A,D @ server2 at runtime.
    let runtime_cat = explicit_placement(
        2,
        &[(RelId(1), 1), (RelId(2), 1), (RelId(0), 2), (RelId(3), 2)],
    );
    let planner = TwoStepPlanner {
        policy: Policy::HybridShipping,
        objective: Objective::Communication,
        config: ctx.opt.clone(),
    };
    let scenario = Scenario {
        query: &query,
        catalog: &runtime_cat,
        sys: &sys,
        loads: &[],
    };
    let compiled = paper_static_plan(&query);

    let mut static_pages = Vec::new();
    let mut twostep_pages = Vec::new();
    let mut optimal_pages = Vec::new();
    for rep in 0..ctx.reps {
        let seed = ctx.seed(9, rep as u64);
        let mut rng = SimRng::seed_from_u64(seed);
        // Static: the compiled plan, merely re-bound at runtime.
        static_pages.push(scenario.execute(&compiled, seed).pages_sent as f64);
        // 2-step: runtime site selection on the compiled join order.
        let selected = planner.site_select(&compiled, &query, &sys, &runtime_cat, &mut rng);
        twostep_pages.push(scenario.execute(&selected, seed).pages_sent as f64);
        // Optimal: full re-optimization against the runtime state.
        let fresh = planner.compile_against(&query, &sys, &runtime_cat, &mut rng);
        optimal_pages.push(scenario.execute(&fresh, seed).pages_sent as f64);
    }

    FigResult {
        id: "fig9".into(),
        title: "Static vs 2-Step Plans under Data Migration (4-Way Join)".into(),
        x_label: "strategy (0=static, 1=2-step, 2=reoptimized)".into(),
        y_label: "pages sent".into(),
        series: vec![
            Series {
                label: "Static".into(),
                points: vec![aggregate(0.0, &static_pages)],
            },
            Series {
                label: "2-Step".into(),
                points: vec![aggregate(1.0, &twostep_pages)],
            },
            Series {
                label: "Reoptimized".into(),
                points: vec![aggregate(2.0, &optimal_pages)],
            },
        ],
        notes: vec![
            "paper (result stipulated = 250 pages): 1000 : 750 : 500".into(),
            "ours (result = 1 page under independence): ≈ 1000 : 500 : 250".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_matches_paper_accounting() {
        let fig = run(&ExpContext::fast());
        let stat = fig.value("Static", 0.0);
        let two = fig.value("2-Step", 1.0);
        let opt = fig.value("Reoptimized", 2.0);
        // Static: ships B, D (500) plus both 250-page intermediates.
        assert!((stat - 1000.0).abs() < 20.0, "static {stat}");
        // 2-step: ships A, D (500) plus the one-page result.
        assert!((two - 500.0).abs() < 20.0, "2-step {two}");
        // Reoptimized: local joins, one intermediate + result.
        assert!((opt - 250.0).abs() < 20.0, "optimal {opt}");
        assert!(stat > two && two > opt);
        // Paper units: add the stipulated 250-page result to the plans
        // that do not already ship their result to the client.
        let paper_two = two + 249.0;
        let paper_opt = opt + 249.0;
        assert!((stat / paper_opt - 2.0).abs() < 0.1, "static = 2x optimal");
        assert!(
            (paper_two / paper_opt - 1.5).abs() < 0.1,
            "2-step = 1.5x optimal"
        );
    }
}
