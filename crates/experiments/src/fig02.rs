//! Figure 2: Pages Sent, 2-Way Join — 1 server, varying client caching.
//!
//! Expected shape (§4.2.1): QS flat at 250 pages (the result); DS starts
//! at 500 (both relations faulted) and falls linearly to 0; HY matches the
//! lower envelope with the crossover at 50% cached.

use csqp_catalog::SystemConfig;
use csqp_cost::Objective;
use csqp_workload::{cache_all, single_server_placement, two_way};

use crate::common::{aggregate, metric_of, ExpContext, FigResult, Scenario, Series, POLICIES};

/// Cached fractions on the x axis (percent).
pub const CACHE_STEPS: [f64; 5] = [0.0, 25.0, 50.0, 75.0, 100.0];

/// Run the experiment.
pub fn run(ctx: &ExpContext) -> FigResult {
    let query = two_way();
    let sys = SystemConfig::default();
    let mut series: Vec<Series> = POLICIES
        .iter()
        .map(|(_, label)| Series {
            label: label.to_string(),
            points: Vec::new(),
        })
        .collect();

    for (xi, pct) in CACHE_STEPS.iter().enumerate() {
        let mut catalog = single_server_placement(&query);
        cache_all(&mut catalog, &query, pct / 100.0);
        let scenario = Scenario {
            query: &query,
            catalog: &catalog,
            sys: &sys,
            loads: &[],
        };
        for (pi, (policy, _)) in POLICIES.iter().enumerate() {
            let values: Vec<f64> = (0..ctx.reps)
                .map(|rep| {
                    let seed = ctx.seed((xi * 3 + pi) as u64, rep as u64);
                    let m = scenario.optimize_and_run(
                        *policy,
                        Objective::Communication,
                        &ctx.opt,
                        seed,
                    );
                    metric_of(Objective::Communication, &m)
                })
                .collect();
            series[pi].points.push(aggregate(*pct, &values));
        }
    }

    FigResult {
        id: "fig2".into(),
        title: "Pages Sent, 2-Way Join, 1 Server, Vary Caching".into(),
        x_label: "cached %".into(),
        y_label: "pages sent".into(),
        series,
        notes: vec![
            "paper: DS 500→0 linear, QS flat 250, HY = min(DS, QS), crossover at 50%".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape_matches_paper() {
        let fig = run(&ExpContext::fast());
        // QS flat at 250 everywhere.
        for pct in CACHE_STEPS {
            assert_eq!(fig.value("QS", pct), 250.0, "QS at {pct}%");
        }
        // DS endpoints and linearity.
        assert_eq!(fig.value("DS", 0.0), 500.0);
        assert_eq!(fig.value("DS", 100.0), 0.0);
        let mid = fig.value("DS", 50.0);
        assert!((mid - 250.0).abs() <= 2.0, "DS at 50%: {mid}");
        // HY matches the best pure policy at every point.
        for pct in CACHE_STEPS {
            let hy = fig.value("HY", pct);
            let best = fig.value("DS", pct).min(fig.value("QS", pct));
            assert!(hy <= best + 1.0, "HY {hy} vs best {best} at {pct}%");
        }
        // Crossover: DS better beyond 50%, QS better before.
        assert!(fig.value("DS", 75.0) < fig.value("QS", 75.0));
        assert!(fig.value("DS", 25.0) > fig.value("QS", 25.0));
    }
}
