//! Disk-model calibration (§4.1): "The average performance of the disk
//! model with these settings is roughly 3.5 msec per page for sequential
//! I/O, and 11.8 msec per page for random I/O; these values were obtained
//! by separate simulation runs to calibrate the cost model of the
//! optimizer."

use csqp_disk::calibrate::measure;
use csqp_disk::DiskParams;

use crate::common::{aggregate, ExpContext, FigResult, Series};

/// Measure the sequential and random per-page averages of the default
/// disk model, over `ctx.reps` seeds for the random workload.
pub fn run(ctx: &ExpContext) -> FigResult {
    let params = DiskParams::default();
    let mut seq = Vec::new();
    let mut rnd = Vec::new();
    for rep in 0..ctx.reps.max(2) {
        let cal = measure(&params, 6_000, ctx.seed(0, rep as u64));
        seq.push(cal.sequential_ms);
        rnd.push(cal.random_ms);
    }
    FigResult {
        id: "calibration".into(),
        title: "Disk model calibration (paper: 3.5 ms seq / 11.8 ms random)".into(),
        x_label: "-".into(),
        y_label: "ms per page".into(),
        series: vec![
            Series {
                label: "sequential".into(),
                points: vec![aggregate(0.0, &seq)],
            },
            Series {
                label: "random".into(),
                points: vec![aggregate(0.0, &rnd)],
            },
        ],
        notes: vec!["sequential runs are deterministic; random runs vary by seed".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_constants() {
        let fig = run(&ExpContext::fast());
        let seq = fig.value("sequential", 0.0);
        let rnd = fig.value("random", 0.0);
        assert!((seq - 3.5).abs() < 0.6, "sequential {seq}");
        assert!((rnd - 11.8).abs() < 1.5, "random {rnd}");
    }
}
