//! Tables 1 and 2 of the paper, regenerated from the code that encodes
//! them (so any drift between paper and implementation shows up here and
//! in the tests that assert the entries).

use csqp_catalog::{RelId, SystemConfig};
use csqp_core::{LogicalOp, Policy};

use crate::common::{FigResult, Point, Series};

/// Table 1: site selection for operators, per policy.
pub fn table1() -> FigResult {
    let ops: [(&str, LogicalOp); 4] = [
        ("display", LogicalOp::Display),
        ("join", LogicalOp::Join),
        ("select", LogicalOp::Select { rel: RelId(0) }),
        ("scan", LogicalOp::Scan { rel: RelId(0) }),
    ];
    let mut notes = Vec::new();
    for (name, op) in ops {
        for policy in Policy::ALL {
            let anns: Vec<&str> = policy.allowed(op).iter().map(|a| a.as_str()).collect();
            notes.push(format!("{name} / {policy}: {}", anns.join(", ")));
        }
    }
    FigResult {
        id: "table1".into(),
        title: "Site Selection for Operators used in this Study".into(),
        x_label: "-".into(),
        y_label: "-".into(),
        series: Vec::new(),
        notes,
    }
}

/// Table 2: simulator parameters and default settings.
pub fn table2() -> FigResult {
    let c = SystemConfig::default();
    let rows: Vec<(&str, f64, &str)> = vec![
        ("Mips", c.mips as f64, "CPU speed (10^6 instr/sec)"),
        ("NumDisks", c.num_disks as f64, "number of disks on a site"),
        (
            "DiskInst",
            c.disk_inst as f64,
            "instr. to read a page from disk",
        ),
        (
            "PageSize",
            c.page_size as f64,
            "size of one data page (bytes)",
        ),
        (
            "NetBw",
            c.net_bw_mbit as f64,
            "network bandwidth (Mbit/sec)",
        ),
        (
            "MsgInst",
            c.msg_inst as f64,
            "instr. to send/receive a message",
        ),
        (
            "PerSizeMI",
            c.per_size_mi as f64,
            "instr. to send/receive 4096 bytes",
        ),
        (
            "Display",
            c.display_inst as f64,
            "instr. to display a tuple",
        ),
        (
            "Compare",
            c.compare_inst as f64,
            "instr. to apply a predicate",
        ),
        ("HashInst", c.hash_inst as f64, "instr. to hash a tuple"),
        ("MoveInst", c.move_inst as f64, "instr. to copy 4 bytes"),
    ];
    let series = vec![Series {
        label: "value".into(),
        points: rows
            .iter()
            .enumerate()
            .map(|(i, (_, v, _))| Point {
                x: i as f64,
                mean: *v,
                ci90: 0.0,
                n: 1,
            })
            .collect(),
    }];
    let notes = rows
        .iter()
        .map(|(name, v, desc)| format!("{name} = {v} ({desc})"))
        .chain(std::iter::once(format!(
            "BufAlloc = {:?} (buffer allocated to a join; min or max)",
            c.buf_alloc
        )))
        .collect();
    FigResult {
        id: "table2".into(),
        title: "Simulator Parameters and Default Settings".into(),
        x_label: "row".into(),
        y_label: "value".into(),
        series,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_twelve_cells() {
        let t = table1();
        assert_eq!(t.notes.len(), 12);
        assert!(t
            .notes
            .contains(&"join / query-shipping: inner relation, outer relation".to_string()));
        assert!(t
            .notes
            .contains(&"scan / hybrid-shipping: client, primary copy".to_string()));
        assert!(t.notes.iter().filter(|n| n.contains("display")).count() == 3);
    }

    #[test]
    fn table2_matches_paper_values() {
        let t = table2();
        let get = |name: &str| -> f64 {
            let row = t
                .notes
                .iter()
                .find(|n| n.starts_with(&format!("{name} = ")))
                .unwrap();
            row.split('=')
                .nth(1)
                .unwrap()
                .trim()
                .split(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert_eq!(get("Mips"), 50.0);
        assert_eq!(get("DiskInst"), 5000.0);
        assert_eq!(get("PageSize"), 4096.0);
        assert_eq!(get("NetBw"), 100.0);
        assert_eq!(get("MsgInst"), 20000.0);
        assert_eq!(get("PerSizeMI"), 12000.0);
        assert_eq!(get("Display"), 0.0);
        assert_eq!(get("Compare"), 2.0);
        assert_eq!(get("HashInst"), 9.0);
        assert_eq!(get("MoveInst"), 1.0);
    }
}
