//! Figure 8: Response Time, 10-Way Join — varying servers, no caching,
//! minimum allocation.
//!
//! Expected shape (§4.3.2): DS roughly flat (all nine joins spill on the
//! one client disk); QS improves steeply as servers are added (parallel
//! disks); HY at least matches both, beating them at small server counts
//! by using client *and* servers, with the advantage dissipating beyond
//! about three servers.

use csqp_catalog::{BufAlloc, SystemConfig};
use csqp_cost::Objective;
use csqp_workload::{random_placement, ten_way};

use crate::common::{aggregate, metric_of, ExpContext, FigResult, Scenario, Series, POLICIES};
use crate::fig06::SERVER_STEPS;

/// Run Figure 8.
pub fn run(ctx: &ExpContext) -> FigResult {
    let query = ten_way();
    let mut sys = SystemConfig::default();
    sys.buf_alloc = BufAlloc::Min;
    let mut series: Vec<Series> = POLICIES
        .iter()
        .map(|(_, label)| Series {
            label: label.to_string(),
            points: Vec::new(),
        })
        .collect();

    for (xi, servers) in SERVER_STEPS.iter().enumerate() {
        let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); POLICIES.len()];
        for rep in 0..ctx.reps {
            let seed = ctx.seed(xi as u64, rep as u64);
            let mut rng = csqp_simkernel::rng::SimRng::seed_from_u64(seed);
            let catalog = random_placement(&query, *servers, &mut rng);
            let scenario = Scenario {
                query: &query,
                catalog: &catalog,
                sys: &sys,
                loads: &[],
            };
            for (pi, (policy, _)) in POLICIES.iter().enumerate() {
                let m = scenario.optimize_and_run(
                    *policy,
                    Objective::ResponseTime,
                    &ctx.opt,
                    seed.wrapping_add(pi as u64 + 1),
                );
                per_policy[pi].push(metric_of(Objective::ResponseTime, &m));
            }
        }
        for (pi, values) in per_policy.iter().enumerate() {
            series[pi].points.push(aggregate(*servers as f64, values));
        }
    }

    FigResult {
        id: "fig8".into(),
        title: "Response Time, 10-Way Join, Vary Servers, No Caching, Min Alloc".into(),
        x_label: "number of servers".into(),
        y_label: "response time [s]".into(),
        series,
        notes: vec![
            "paper: DS ~flat; QS improves steeply with servers; HY <= both, \
             advantage fades beyond ~3 servers"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_shape_matches_paper() {
        let mut ctx = ExpContext::fast();
        ctx.reps = 2;
        let fig = run(&ctx);
        // DS roughly flat: the client disk is the bottleneck throughout.
        let ds1 = fig.value("DS", 1.0);
        let ds10 = fig.value("DS", 10.0);
        assert!(
            (ds1 - ds10).abs() / ds1 < 0.35,
            "DS roughly flat: {ds1} vs {ds10}"
        );
        // QS improves greatly with added servers.
        let qs1 = fig.value("QS", 1.0);
        let qs10 = fig.value("QS", 10.0);
        assert!(qs10 < 0.5 * qs1, "QS should drop: {qs1} -> {qs10}");
        // With one server, DS beats QS (contention on the single server
        // disk); with ten, QS beats DS.
        assert!(ds1 < qs1, "one server: DS {ds1} < QS {qs1}");
        assert!(qs10 < ds10, "ten servers: QS {qs10} < DS {ds10}");
        // HY at least matches the best pure policy everywhere (the fast
        // optimizer preset and full-overlap cost model leave some slack;
        // the standard run tightens this considerably).
        for s in SERVER_STEPS {
            let hy = fig.value("HY", s as f64);
            let best = fig.value("DS", s as f64).min(fig.value("QS", s as f64));
            assert!(hy <= best * 1.35, "HY {hy} vs best {best} at {s} servers");
        }
        // And at two servers HY is at worst on par with the best pure
        // policy (the strict win the paper reports shows up at the
        // standard search budget; see EXPERIMENTS.md).
        let hy2 = fig.value("HY", 2.0);
        let best2 = fig.value("DS", 2.0).min(fig.value("QS", 2.0));
        assert!(
            hy2 <= best2 * 1.05,
            "HY {hy2} should at least match both ({best2}) at 2 servers"
        );
    }
}
