//! Figure 3: Response Time, 2-Way Join — 1 server, varying caching, no
//! external load, *minimum* join memory allocation.
//!
//! Expected shape (§4.2.2): QS worst and flat (scan and join spill I/O
//! contend on the single server disk); DS best with an empty cache
//! (server disk does the scans, client disk the spills) and degrading as
//! caching grows (everything lands on the client disk); HY flat at the
//! best plan regardless of cache contents.

use csqp_catalog::{BufAlloc, SystemConfig};
use csqp_cost::Objective;
use csqp_workload::{cache_all, single_server_placement, two_way};

use crate::common::{aggregate, metric_of, ExpContext, FigResult, Scenario, Series, POLICIES};
use crate::fig02::CACHE_STEPS;

/// Run the experiment.
pub fn run(ctx: &ExpContext) -> FigResult {
    let query = two_way();
    let mut sys = SystemConfig::default();
    sys.buf_alloc = BufAlloc::Min;
    let mut series: Vec<Series> = POLICIES
        .iter()
        .map(|(_, label)| Series {
            label: label.to_string(),
            points: Vec::new(),
        })
        .collect();

    for (xi, pct) in CACHE_STEPS.iter().enumerate() {
        let mut catalog = single_server_placement(&query);
        cache_all(&mut catalog, &query, pct / 100.0);
        let scenario = Scenario {
            query: &query,
            catalog: &catalog,
            sys: &sys,
            loads: &[],
        };
        for (pi, (policy, _)) in POLICIES.iter().enumerate() {
            let values: Vec<f64> = (0..ctx.reps)
                .map(|rep| {
                    let seed = ctx.seed((xi * 3 + pi) as u64, rep as u64);
                    let m =
                        scenario.optimize_and_run(*policy, Objective::ResponseTime, &ctx.opt, seed);
                    metric_of(Objective::ResponseTime, &m)
                })
                .collect();
            series[pi].points.push(aggregate(*pct, &values));
        }
    }

    FigResult {
        id: "fig3".into(),
        title: "Response Time, 2-Way Join, 1 Server, Vary Caching, No Load, Min Alloc".into(),
        x_label: "cached %".into(),
        y_label: "response time [s]".into(),
        series,
        notes: vec![
            "paper: QS worst & flat; DS best at 0% and degrades with caching; HY best everywhere"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape_matches_paper() {
        let fig = run(&ExpContext::fast());
        // QS is (nearly) flat: caching can't help it.
        let qs0 = fig.value("QS", 0.0);
        let qs100 = fig.value("QS", 100.0);
        assert!(
            (qs0 - qs100).abs() / qs0 < 0.05,
            "QS flat: {qs0} vs {qs100}"
        );
        // DS beats QS with an empty cache, degrades as caching grows.
        let ds0 = fig.value("DS", 0.0);
        let ds100 = fig.value("DS", 100.0);
        assert!(ds0 < qs0, "DS {ds0} should beat QS {qs0} at 0%");
        assert!(ds100 > 1.3 * ds0, "DS should degrade: {ds0} -> {ds100}");
        // At full caching DS is at most slightly better than QS.
        assert!(ds100 <= qs100 * 1.05, "DS {ds100} ~<= QS {qs100} at 100%");
        // HY at least matches the best pure policy everywhere (5% slack
        // for the randomized optimizer).
        for pct in CACHE_STEPS {
            let hy = fig.value("HY", pct);
            let best = fig.value("DS", pct).min(fig.value("QS", pct));
            assert!(hy <= best * 1.10, "HY {hy} vs best {best} at {pct}%");
        }
    }
}
