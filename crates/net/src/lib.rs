//! Network model for the csqp simulator.
//!
//! "The network is modeled simply as a FIFO queue with a specified
//! bandwidth (NetBw); the details of a particular technology (i.e.,
//! Ethernet, ATM, etc.) are not modeled. The cost of a message involves
//! the time-on-the-wire which is based on the size of the message, and
//! both fixed and size-dependent CPU costs to send and receive which are
//! computed from MsgInst and PerSizeMI." (§3.2.2)
//!
//! The [`Link`] resource implements the wire: a single FIFO server whose
//! service time is `bytes × 8 / bandwidth`. The CPU costs of sending and
//! receiving are charged by the engine on the sender's and receiver's CPU
//! queues (they are site costs, not wire costs); [`MsgCost`] computes them.
//!
//! The [`chaos`] module is the other face of the same concern: where
//! [`Link`] models the wire's *cost*, [`chaos::FaultPlan`] models its
//! *failures* — deterministic, seeded fault schedules the serving stack's
//! chaos harness injects at the client edge.
//!
//! The [`poll`] module is the third face: where [`Link`] models the wire
//! and [`chaos`] models its failures, [`poll`] touches the real wire — a
//! dependency-free `poll(2)` readiness wrapper the serving stack's
//! event-driven session engine multiplexes live sockets on.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod chaos;
pub mod poll;

use csqp_catalog::SystemConfig;
use csqp_simkernel::{FifoServer, SimDuration, SimTime};

/// Kinds of messages the engine sends, for accounting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// A full data page moving between operators or as a fault reply.
    DataPage,
    /// A small control message (e.g. a page-fault request).
    Control,
}

/// Wire-traffic counters of a [`Link`], as one typed record.
///
/// This is the accounting surface consumers (the engine's metrics, the
/// serving layer's STATS frame) read instead of reaching into the link
/// for individual counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Full data pages shipped — the paper's "pages sent" metric (§4.1).
    pub data_pages_sent: u64,
    /// Small control messages shipped (fault requests etc.).
    pub control_msgs_sent: u64,
    /// Total bytes on the wire, data and control combined.
    pub bytes_sent: u64,
}

/// The shared network link: one FIFO queue for the whole system.
#[derive(Debug)]
pub struct Link<T> {
    server: FifoServer<T>,
    bandwidth_bits_per_sec: f64,
    stats: LinkStats,
}

impl<T> Link<T> {
    /// Build the link from the system configuration (`NetBw`).
    pub fn new(config: &SystemConfig) -> Link<T> {
        Link {
            server: FifoServer::new(),
            bandwidth_bits_per_sec: config.net_bw_mbit as f64 * 1e6,
            stats: LinkStats::default(),
        }
    }

    /// Time-on-the-wire for a message of `bytes` bytes.
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bits_per_sec)
    }

    /// Submit a message for transmission. Returns the completion time when
    /// the wire was idle (caller schedules the completion event), `None`
    /// when queued behind earlier messages.
    pub fn submit(&mut self, now: SimTime, token: T, bytes: u64, kind: MsgKind) -> Option<SimTime> {
        match kind {
            MsgKind::DataPage => self.stats.data_pages_sent += 1,
            MsgKind::Control => self.stats.control_msgs_sent += 1,
        }
        self.stats.bytes_sent += bytes;
        let service = self.wire_time(bytes);
        self.server.submit(now, token, service)
    }

    /// Complete the message in flight; returns it plus the completion time
    /// of the next queued message, if any (caller schedules it).
    pub fn finish_current(&mut self, now: SimTime) -> (T, Option<SimTime>) {
        self.server.finish_current(now)
    }

    /// Snapshot of the wire-traffic counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Data pages shipped so far — the paper's "pages sent" metric counts
    /// exactly these (§4.1: "the number of pages sent … the average amount
    /// of data sent over the network").
    pub fn data_pages_sent(&self) -> u64 {
        self.stats.data_pages_sent
    }

    /// Small control messages shipped so far (fault requests etc.).
    pub fn control_msgs_sent(&self) -> u64 {
        self.stats.control_msgs_sent
    }

    /// Total bytes shipped.
    pub fn bytes_sent(&self) -> u64 {
        self.stats.bytes_sent
    }

    /// Wire utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.server.utilization(now)
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.server.is_idle()
    }
}

/// CPU costs of messaging, per Table 2.
#[derive(Debug, Clone, Copy)]
pub struct MsgCost {
    msg_inst: u64,
    per_size_mi: u64,
    page_size: u32,
}

impl MsgCost {
    /// Build from the system configuration.
    pub fn new(config: &SystemConfig) -> MsgCost {
        MsgCost {
            msg_inst: config.msg_inst,
            per_size_mi: config.per_size_mi,
            page_size: config.page_size,
        }
    }

    /// Instructions charged on the sending *or* receiving CPU for a message
    /// of `bytes` bytes: `MsgInst + PerSizeMI · bytes / PageSize`.
    pub fn cpu_instr(&self, bytes: u64) -> u64 {
        self.msg_inst + (self.per_size_mi as f64 * bytes as f64 / self.page_size as f64) as u64
    }
}

/// Size in bytes of a small control message (page-fault request). Not a
/// Table 2 parameter; any small value — the fixed `MsgInst` dominates.
pub const CONTROL_MSG_BYTES: u64 = 256;

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link<u32> {
        Link::new(&SystemConfig::default())
    }

    #[test]
    fn page_wire_time_is_327us() {
        let l = link();
        let t = l.wire_time(4096);
        assert!((t.as_secs_f64() - 327.68e-6).abs() < 1e-12);
    }

    #[test]
    fn fifo_ordering_and_accounting() {
        let mut l = link();
        let t0 = SimTime::ZERO;
        let fin = l.submit(t0, 1, 4096, MsgKind::DataPage).unwrap();
        assert!(l.submit(t0, 2, 4096, MsgKind::DataPage).is_none());
        assert!(l.submit(t0, 3, 256, MsgKind::Control).is_none());
        let (m, next) = l.finish_current(fin);
        assert_eq!(m, 1);
        let fin2 = next.unwrap();
        let (m, next) = l.finish_current(fin2);
        assert_eq!(m, 2);
        let (m, next2) = l.finish_current(next.unwrap());
        assert_eq!(m, 3);
        assert!(next2.is_none());
        assert_eq!(l.data_pages_sent(), 2);
        assert_eq!(l.control_msgs_sent(), 1);
        assert_eq!(l.bytes_sent(), 8448);
        assert_eq!(
            l.stats(),
            LinkStats {
                data_pages_sent: 2,
                control_msgs_sent: 1,
                bytes_sent: 8448,
            }
        );
        assert!(l.is_idle());
    }

    #[test]
    fn msg_cpu_costs_match_table2() {
        let c = MsgCost::new(&SystemConfig::default());
        assert_eq!(c.cpu_instr(4096), 32_000);
        assert_eq!(c.cpu_instr(CONTROL_MSG_BYTES), 20_750);
    }

    #[test]
    fn utilization_grows_under_load() {
        let mut l = link();
        let fin = l.submit(SimTime::ZERO, 0, 4096, MsgKind::DataPage).unwrap();
        l.finish_current(fin);
        let u = l.utilization(fin);
        assert!((u - 1.0).abs() < 1e-9, "wire was busy the whole time: {u}");
    }
}
