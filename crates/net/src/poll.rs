//! Thin, dependency-free readiness polling over `poll(2)`.
//!
//! The serving stack's event-driven session engine multiplexes every
//! connected socket on a fixed set of event-loop threads; this module is
//! the only place it touches the operating system's readiness interface.
//! It binds `poll(2)` directly through the C library the Rust standard
//! library already links — no `libc` crate, no async runtime — and keeps
//! the surface tiny: a `#[repr(C)]` [`PollFd`] mirroring `struct pollfd`,
//! one [`poll_fds`] call, and a [`Waker`] built on a non-blocking
//! `UnixStream` pair so other threads can interrupt a sleeping poller.
//!
//! Why `poll(2)` and not `epoll(7)`: the engine re-registers interest on
//! every loop iteration anyway (interest depends on the per-session state
//! machine), so the O(n) scan `poll` performs is the same work an
//! `epoll_ctl` storm would do — and `poll` is portable across Unixes and
//! needs no extra kernel object lifetime management. At the scale the
//! idle-session test pins (thousands of sockets per shard), one `poll`
//! sweep is microseconds.

use std::io::{self, Read, Write};
use std::os::fd::RawFd;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// Readiness: data can be read without blocking (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Readiness: data can be written without blocking (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Condition: an error is pending on the descriptor (`POLLERR`).
pub const POLLERR: i16 = 0x008;
/// Condition: the peer hung up (`POLLHUP`).
pub const POLLHUP: i16 = 0x010;
/// Condition: the descriptor is not open (`POLLNVAL`).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set: a file descriptor, the events the
/// caller is interested in, and the events the kernel reported. Layout
/// matches `struct pollfd` exactly (three naturally-aligned fields, no
/// padding), so a `&mut [PollFd]` can be handed to the system call
/// directly.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for readability and/or writability.
    /// `POLLERR`/`POLLHUP` are always reported by the kernel and need no
    /// registration.
    pub fn new(fd: RawFd, read: bool, write: bool) -> PollFd {
        let mut events = 0i16;
        if read {
            events |= POLLIN;
        }
        if write {
            events |= POLLOUT;
        }
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The descriptor this entry watches.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// True when the kernel reported any event at all on this entry.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }

    /// True when a read will not block — includes hangup and error, which
    /// a read must observe (as EOF or a hard error) to make progress.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// True when a write will not block.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// True when the descriptor is in an error or invalid state and the
    /// connection should be torn down.
    pub fn error(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }

    /// True when the peer hung up its end.
    pub fn hangup(&self) -> bool {
        self.revents & POLLHUP != 0
    }
}

// `poll(2)` from the C library the standard library already links. The
// signature matches POSIX: `int poll(struct pollfd *fds, nfds_t nfds,
// int timeout)`; `nfds_t` is `unsigned long` on every supported Unix.
extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Wait until at least one entry is ready or the timeout passes. Returns
/// the number of ready entries (0 on timeout). `EINTR` is retried
/// transparently; the timeout is re-armed in full on retry, which biases
/// long — acceptable for an event loop that re-checks its work queues on
/// every wakeup anyway.
pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    let millis = timeout.as_millis().min(std::ffi::c_int::MAX as u128) as std::ffi::c_int;
    loop {
        // SAFETY: `fds` is a valid, exclusively-borrowed slice of
        // `#[repr(C)]` pollfd-layout structs; the kernel writes only the
        // `revents` fields within bounds.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, millis) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

/// A cross-thread wakeup channel for a poller: the receiving half joins
/// the poll set, senders write a byte to interrupt the sleep.
///
/// Built on a non-blocking `UnixStream` pair instead of a pipe so the
/// whole module stays inside `std`. The socket buffer bounds queued
/// wakeups; a full buffer means a wakeup is already pending, so the
/// `WouldBlock` on [`WakeHandle::wake`] is ignored by design.
#[derive(Debug)]
pub struct Waker {
    rx: UnixStream,
    tx: Arc<UnixStream>,
}

/// The sending half of a [`Waker`]; cheap to clone and share across
/// worker threads.
#[derive(Debug, Clone)]
pub struct WakeHandle {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// A fresh waker pair, both halves non-blocking.
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker {
            rx,
            tx: Arc::new(tx),
        })
    }

    /// The descriptor to include (readable) in the poll set.
    pub fn fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// A sending handle for other threads.
    pub fn handle(&self) -> WakeHandle {
        WakeHandle {
            tx: Arc::clone(&self.tx),
        }
    }

    /// Consume every pending wakeup byte so the poll set goes quiet
    /// until the next [`WakeHandle::wake`].
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.rx).read(&mut buf) {
                Ok(0) => return, // sender half gone; nothing more to drain
                Ok(_) => continue,
                Err(_) => return, // WouldBlock (drained) or a dead pair
            }
        }
    }
}

impl WakeHandle {
    /// Interrupt the poller. A full socket buffer means a wakeup is
    /// already pending, so every error is ignorable.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// `struct rlimit` for [`raise_nofile_limit`]; `rlim_t` is 64-bit on
/// every supported Unix.
#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: std::ffi::c_int = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: std::ffi::c_int = 8;

extern "C" {
    fn getrlimit(resource: std::ffi::c_int, rlim: *mut RLimit) -> std::ffi::c_int;
    fn setrlimit(resource: std::ffi::c_int, rlim: *const RLimit) -> std::ffi::c_int;
}

/// Raise this process's soft open-file limit to its hard limit and
/// return the resulting soft limit. The idle-session scale test opens
/// thousands of sockets; default soft limits (often 1024) would fail the
/// test for reasons that have nothing to do with the server.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a valid exclusive borrow of a `#[repr(C)]` rlimit.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur < lim.max {
        let want = RLimit {
            cur: lim.max,
            max: lim.max,
        };
        // SAFETY: `want` outlives the call; setrlimit only reads it.
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } != 0 {
            return Err(io::Error::last_os_error());
        }
        lim.cur = lim.max;
    }
    Ok(lim.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn timeout_returns_zero_ready() {
        let waker = Waker::new().expect("waker");
        let mut fds = [PollFd::new(waker.fd(), true, false)];
        let n = poll_fds(&mut fds, Duration::from_millis(10)).expect("poll");
        assert_eq!(n, 0);
        assert!(!fds[0].ready());
    }

    #[test]
    fn waker_interrupts_and_drains() {
        let waker = Waker::new().expect("waker");
        let handle = waker.handle();
        handle.wake();
        let mut fds = [PollFd::new(waker.fd(), true, false)];
        let n = poll_fds(&mut fds, Duration::from_secs(5)).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        waker.drain();
        let mut fds = [PollFd::new(waker.fd(), true, false)];
        let n = poll_fds(&mut fds, Duration::from_millis(5)).expect("poll again");
        assert_eq!(n, 0, "drain consumed the wakeup byte");
    }

    #[test]
    fn wake_handle_clones_share_the_channel() {
        let waker = Waker::new().expect("waker");
        let a = waker.handle();
        let b = a.clone();
        drop(a);
        b.wake();
        let mut fds = [PollFd::new(waker.fd(), true, false)];
        assert_eq!(poll_fds(&mut fds, Duration::from_secs(5)).expect("poll"), 1);
    }

    #[test]
    fn tcp_readiness_and_hangup_are_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        // Nothing sent yet: not readable.
        let mut fds = [PollFd::new(server.as_raw_fd(), true, false)];
        assert_eq!(
            poll_fds(&mut fds, Duration::from_millis(5)).expect("poll"),
            0
        );

        // Bytes in flight: readable.
        client.write_all(b"ping").expect("write");
        let mut fds = [PollFd::new(server.as_raw_fd(), true, false)];
        assert_eq!(poll_fds(&mut fds, Duration::from_secs(5)).expect("poll"), 1);
        assert!(fds[0].readable());

        // Peer gone: readable (EOF) and eventually HUP.
        drop(client);
        let mut fds = [PollFd::new(server.as_raw_fd(), true, false)];
        assert_eq!(poll_fds(&mut fds, Duration::from_secs(5)).expect("poll"), 1);
        assert!(fds[0].readable(), "EOF counts as readable");
    }

    #[test]
    fn nofile_limit_is_raised_or_already_maxed() {
        let lim = raise_nofile_limit().expect("rlimit");
        assert!(lim >= 256, "usable descriptor budget: {lim}");
        // Idempotent.
        assert_eq!(raise_nofile_limit().expect("rlimit again"), lim);
    }
}
