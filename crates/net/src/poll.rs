//! Thin, dependency-free readiness multiplexing over `poll(2)` and
//! `epoll(7)`.
//!
//! The serving stack's event-driven session engine multiplexes every
//! connected socket on a fixed set of event-loop threads; this module is
//! the only place it touches the operating system's readiness interface.
//! It binds the system calls directly through the C library the Rust
//! standard library already links — no `libc` crate, no async runtime —
//! and keeps the surface tiny: a [`Reactor`] trait with two std-only
//! implementations, a [`Waker`] built on a non-blocking `UnixStream`
//! pair so other threads can interrupt a sleeping reactor, and the raw
//! [`poll_fds`]/[`PollFd`] primitives the portable backend is built on.
//!
//! Choosing a backend: [`Backend::Poll`] is the portable fallback — one
//! `poll(2)` sweep per iteration, O(registered descriptors) in both user
//! and kernel time, perfectly adequate up to a few thousand sockets per
//! shard. [`Backend::Epoll`] (Linux only, the default there) keeps
//! interest registered in the kernel across iterations and caches each
//! descriptor's interest in user space, issuing `epoll_ctl` **only when
//! a session's computed interest actually changes** — so an idle session
//! costs zero syscalls per iteration and `epoll_wait` returns in
//! O(ready) rather than O(registered). That interest cache is what
//! retires the old objection that the engine "re-registers interest on
//! every loop iteration anyway": it still *recomputes* interest each
//! time a session steps, but recomputation is a cached comparison, not a
//! syscall.
//!
//! # The `Reactor` contract
//!
//! Implementations agree on these semantics, and the serve-layer
//! equivalence suites hold both backends to byte-identical wire
//! behavior:
//!
//! - **Spurious wakeups are allowed.** [`Reactor::wait`] may report a
//!   descriptor that then yields `WouldBlock`; callers must treat
//!   readiness as a hint and retry on the next event.
//! - **Hangup and error are always reported**, whether or not the caller
//!   registered read or write interest — a reactor never hides a dying
//!   descriptor behind an empty interest set.
//! - **EOF counts as readable.** A peer hangup surfaces through
//!   [`ReadyEvent::readable`] so the owner performs the read that
//!   observes EOF (or the pending error) and tears the session down, the
//!   same way on every backend.
//! - **[`Reactor::register`] is an upsert**: first call adds the
//!   descriptor, later calls update its interest, and updates that match
//!   the cached interest are free (no syscall).
//! - **[`Reactor::deregister`] must precede `close(2)`** of the
//!   descriptor; afterwards no further events for it are delivered.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::os::fd::RawFd;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// Readiness: data can be read without blocking (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Readiness: data can be written without blocking (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Condition: an error is pending on the descriptor (`POLLERR`).
pub const POLLERR: i16 = 0x008;
/// Condition: the peer hung up (`POLLHUP`).
pub const POLLHUP: i16 = 0x010;
/// Condition: the descriptor is not open (`POLLNVAL`).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set: a file descriptor, the events the
/// caller is interested in, and the events the kernel reported. Layout
/// matches `struct pollfd` exactly (three naturally-aligned fields, no
/// padding), so a `&mut [PollFd]` can be handed to the system call
/// directly.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for readability and/or writability.
    /// `POLLERR`/`POLLHUP` are always reported by the kernel and need no
    /// registration.
    pub fn new(fd: RawFd, read: bool, write: bool) -> PollFd {
        let mut events = 0i16;
        if read {
            events |= POLLIN;
        }
        if write {
            events |= POLLOUT;
        }
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The descriptor this entry watches.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// True when the kernel reported any event at all on this entry.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }

    /// True when a read will not block — includes hangup and error, which
    /// a read must observe (as EOF or a hard error) to make progress.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// True when a write will not block.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// True when the descriptor is in an error or invalid state and the
    /// connection should be torn down.
    pub fn error(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }

    /// True when the peer hung up its end.
    pub fn hangup(&self) -> bool {
        self.revents & POLLHUP != 0
    }
}

// `poll(2)` from the C library the standard library already links. The
// signature matches POSIX: `int poll(struct pollfd *fds, nfds_t nfds,
// int timeout)`; `nfds_t` is `unsigned long` on every supported Unix.
extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Wait until at least one entry is ready or the timeout passes. Returns
/// the number of ready entries (0 on timeout). `EINTR` is retried
/// transparently; the timeout is re-armed in full on retry, which biases
/// long — acceptable for an event loop that re-checks its work queues on
/// every wakeup anyway.
pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    let millis = timeout.as_millis().min(std::ffi::c_int::MAX as u128) as std::ffi::c_int;
    loop {
        // SAFETY: `fds` is a valid, exclusively-borrowed slice of
        // `#[repr(C)]` pollfd-layout structs; the kernel writes only the
        // `revents` fields within bounds.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, millis) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

/// What a registered descriptor should be watched for. Hangup and error
/// conditions are always reported and need no registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when a read would not block (includes EOF and errors).
    pub read: bool,
    /// Report when a write would not block.
    pub write: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle session.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };

    /// Interest covering both directions.
    pub fn new(read: bool, write: bool) -> Interest {
        Interest { read, write }
    }
}

/// One readiness report from [`Reactor::wait`], carrying the token the
/// descriptor was registered under. Accessors share the exact semantics
/// of [`PollFd`] so swapping backends cannot change how the engine
/// interprets an event.
#[derive(Debug, Clone, Copy)]
pub struct ReadyEvent {
    token: u64,
    revents: i16,
}

impl ReadyEvent {
    /// The token supplied at registration time.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// True when a read will not block — includes hangup and error, which
    /// a read must observe (as EOF or a hard error) to make progress.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// True when a write will not block.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// True when the descriptor is in an error or invalid state and the
    /// connection should be torn down.
    pub fn error(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }

    /// True when the peer hung up its end.
    pub fn hangup(&self) -> bool {
        self.revents & POLLHUP != 0
    }
}

/// Cumulative counters a reactor keeps about its own syscall traffic;
/// surfaced per shard through the server's STATS reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Blocking wait syscalls issued (`poll`/`epoll_wait`).
    pub wait_calls: u64,
    /// Interest-mutation syscalls issued (`epoll_ctl`; always zero for
    /// the `poll` backend, which carries interest in each wait call).
    pub ctl_calls: u64,
    /// Readiness events handed back to the caller across all waits.
    pub events_dispatched: u64,
}

/// A readiness multiplexer the session engine drives. See the module
/// docs for the cross-backend contract (spurious wakeups allowed,
/// hangup/error always reported, register-as-upsert, deregister before
/// close).
pub trait Reactor: Send {
    /// Add `fd` under `token`, or update its interest if already
    /// registered. Re-registering with unchanged interest is free.
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Stop watching `fd`. Must be called before the descriptor is
    /// closed; afterwards no further events for it are delivered.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Wait until at least one registered descriptor is ready or the
    /// timeout passes. Clears `events` and fills it with the ready set;
    /// returns the number of events (0 on timeout).
    fn wait(&mut self, timeout: Duration, events: &mut Vec<ReadyEvent>) -> io::Result<usize>;

    /// Cumulative syscall counters for this reactor instance.
    fn stats(&self) -> ReactorStats;

    /// Which backend this reactor is.
    fn backend(&self) -> Backend;
}

/// Which readiness backend a reactor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable `poll(2)` sweep: O(registered) per wait, zero kernel
    /// state between waits.
    Poll,
    /// Linux `epoll(7)`: kernel-resident interest with a user-space
    /// interest cache, O(ready) per wait.
    Epoll,
}

impl Backend {
    /// The default backend for the host this binary was compiled for:
    /// `epoll` on Linux, `poll` everywhere else.
    pub fn default_for_host() -> Backend {
        if cfg!(target_os = "linux") {
            Backend::Epoll
        } else {
            Backend::Poll
        }
    }

    /// Every backend this host supports, portable fallback first.
    pub fn all_supported() -> &'static [Backend] {
        if cfg!(target_os = "linux") {
            &[Backend::Poll, Backend::Epoll]
        } else {
            &[Backend::Poll]
        }
    }

    /// Parse a command-line / environment spelling.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "poll" => Some(Backend::Poll),
            "epoll" => Some(Backend::Epoll),
            _ => None,
        }
    }

    /// The canonical spelling accepted by [`Backend::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Backend::Poll => "poll",
            Backend::Epoll => "epoll",
        }
    }

    /// The `CSQP_REACTOR` environment override, if set and valid.
    pub fn from_env() -> Option<Backend> {
        std::env::var("CSQP_REACTOR").ok().and_then(|v| {
            let b = Backend::parse(&v);
            assert!(b.is_some(), "CSQP_REACTOR must be `poll` or `epoll`: {v}");
            b
        })
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The backends a test suite should parameterize over: the
/// `CSQP_REACTOR` override if set, otherwise every backend this host
/// supports. The serve-layer equivalence suites loop over this so one
/// `cargo test` run proves both backends (and CI can pin either).
pub fn test_backends() -> Vec<Backend> {
    match Backend::from_env() {
        Some(b) => vec![b],
        None => Backend::all_supported().to_vec(),
    }
}

/// Construct a reactor for `backend`. Requesting [`Backend::Epoll`] off
/// Linux fails with `Unsupported` rather than silently downgrading, so
/// a misconfigured deployment is loud.
pub fn new_reactor(backend: Backend) -> io::Result<Box<dyn Reactor>> {
    match backend {
        Backend::Poll => Ok(Box::new(PollReactor::new())),
        #[cfg(target_os = "linux")]
        Backend::Epoll => Ok(Box::new(EpollReactor::new()?)),
        #[cfg(not(target_os = "linux"))]
        Backend::Epoll => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll reactor requires Linux; use --reactor poll",
        )),
    }
}

/// The portable backend: an interest table swept by one `poll(2)` call
/// per wait. A `BTreeMap` keeps the sweep order deterministic (and keeps
/// the determinism linter quiet without an allowlist entry).
pub struct PollReactor {
    interests: BTreeMap<RawFd, (u64, Interest)>,
    scratch: Vec<PollFd>,
    stats: ReactorStats,
}

impl PollReactor {
    /// An empty reactor; registration populates the table.
    pub fn new() -> PollReactor {
        PollReactor {
            interests: BTreeMap::new(),
            scratch: Vec::new(),
            stats: ReactorStats::default(),
        }
    }
}

impl Default for PollReactor {
    fn default() -> PollReactor {
        PollReactor::new()
    }
}

impl Reactor for PollReactor {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.interests.insert(fd, (token, interest));
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.interests.remove(&fd);
        Ok(())
    }

    fn wait(&mut self, timeout: Duration, events: &mut Vec<ReadyEvent>) -> io::Result<usize> {
        events.clear();
        self.scratch.clear();
        for (&fd, &(_, interest)) in &self.interests {
            self.scratch
                .push(PollFd::new(fd, interest.read, interest.write));
        }
        self.stats.wait_calls += 1;
        let n = poll_fds(&mut self.scratch, timeout)?;
        if n > 0 {
            for entry in &self.scratch {
                if entry.ready() {
                    let (token, _) = self.interests[&entry.fd()];
                    events.push(ReadyEvent {
                        token,
                        revents: entry.revents,
                    });
                }
            }
        }
        self.stats.events_dispatched += events.len() as u64;
        Ok(events.len())
    }

    fn stats(&self) -> ReactorStats {
        self.stats
    }

    fn backend(&self) -> Backend {
        Backend::Poll
    }
}

/// `struct epoll_event`: a 32-bit event mask plus 64 bits of user data
/// (we store the registration token). The kernel ABI packs this struct
/// on x86-64 only; other architectures use natural alignment.
#[cfg(target_os = "linux")]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(target_os = "linux")]
const EPOLL_CTL_ADD: std::ffi::c_int = 1;
#[cfg(target_os = "linux")]
const EPOLL_CTL_DEL: std::ffi::c_int = 2;
#[cfg(target_os = "linux")]
const EPOLL_CTL_MOD: std::ffi::c_int = 3;
#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: std::ffi::c_int = 0x80000;
// epoll's event bits coincide with poll's for everything this module
// registers or reports (IN/OUT/ERR/HUP), so translating a kernel report
// into `ReadyEvent`'s poll-bit representation is a masked narrowing.
#[cfg(target_os = "linux")]
const EPOLL_REPORT_MASK: u32 = (POLLIN | POLLOUT | POLLERR | POLLHUP) as u32;

// `epoll(7)` and `close(2)` from the C library the standard library
// already links, same binding style as `poll` above.
#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: std::ffi::c_int) -> std::ffi::c_int;
    fn epoll_ctl(
        epfd: std::ffi::c_int,
        op: std::ffi::c_int,
        fd: std::ffi::c_int,
        event: *mut EpollEvent,
    ) -> std::ffi::c_int;
    fn epoll_wait(
        epfd: std::ffi::c_int,
        events: *mut EpollEvent,
        maxevents: std::ffi::c_int,
        timeout: std::ffi::c_int,
    ) -> std::ffi::c_int;
    fn close(fd: std::ffi::c_int) -> std::ffi::c_int;
}

/// The Linux backend: kernel-resident interest behind a user-space
/// cache, so `epoll_ctl` is issued only when a descriptor's `(token,
/// interest)` actually changes. Level-triggered throughout — the engine
/// may leave bytes unconsumed between iterations, and level triggering
/// re-reports them without edge-triggered re-arm bookkeeping.
#[cfg(target_os = "linux")]
pub struct EpollReactor {
    epfd: RawFd,
    interests: BTreeMap<RawFd, (u64, Interest)>,
    scratch: Vec<EpollEvent>,
    stats: ReactorStats,
}

#[cfg(target_os = "linux")]
impl EpollReactor {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<EpollReactor> {
        // SAFETY: plain syscall, no pointers.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollReactor {
            epfd,
            interests: BTreeMap::new(),
            scratch: Vec::new(),
            stats: ReactorStats::default(),
        })
    }

    fn ctl(
        &mut self,
        op: std::ffi::c_int,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: (interest.read as u32 * POLLIN as u32)
                | (interest.write as u32 * POLLOUT as u32),
            data: token,
        };
        self.stats.ctl_calls += 1;
        // SAFETY: `ev` is a valid exclusive borrow of a `#[repr(C)]`
        // epoll_event; the kernel only reads it (and ignores it for DEL).
        if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Reactor for EpollReactor {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self.interests.get(&fd) {
            Some(&cached) if cached == (token, interest) => Ok(()),
            Some(_) => {
                self.ctl(EPOLL_CTL_MOD, fd, token, interest)?;
                self.interests.insert(fd, (token, interest));
                Ok(())
            }
            None => {
                self.ctl(EPOLL_CTL_ADD, fd, token, interest)?;
                self.interests.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        if self.interests.remove(&fd).is_none() {
            return Ok(());
        }
        match self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::new(false, false)) {
            Ok(()) => Ok(()),
            // The kernel auto-deregisters a closed descriptor; a DEL
            // racing that close is not an engine bug.
            Err(e) if matches!(e.raw_os_error(), Some(2 /* ENOENT */) | Some(9 /* EBADF */)) => {
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn wait(&mut self, timeout: Duration, events: &mut Vec<ReadyEvent>) -> io::Result<usize> {
        events.clear();
        let cap = self.interests.len().clamp(64, 4096);
        self.scratch.resize(cap, EpollEvent { events: 0, data: 0 });
        let millis = timeout.as_millis().min(std::ffi::c_int::MAX as u128) as std::ffi::c_int;
        let n = loop {
            self.stats.wait_calls += 1;
            // SAFETY: `scratch` is a valid, exclusively-borrowed buffer of
            // `cap` epoll_event slots; the kernel writes at most `cap`.
            let rc = unsafe {
                epoll_wait(
                    self.epfd,
                    self.scratch.as_mut_ptr(),
                    cap as std::ffi::c_int,
                    millis,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        };
        for ev in &self.scratch[..n] {
            let raw = { *ev };
            events.push(ReadyEvent {
                token: raw.data,
                revents: (raw.events & EPOLL_REPORT_MASK) as i16,
            });
        }
        self.stats.events_dispatched += n as u64;
        Ok(n)
    }

    fn stats(&self) -> ReactorStats {
        self.stats
    }

    fn backend(&self) -> Backend {
        Backend::Epoll
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollReactor {
    fn drop(&mut self) {
        // SAFETY: `epfd` is owned by this reactor and closed exactly once.
        unsafe {
            close(self.epfd);
        }
    }
}

/// A cross-thread wakeup channel for a poller: the receiving half joins
/// the poll set, senders write a byte to interrupt the sleep.
///
/// Built on a non-blocking `UnixStream` pair instead of a pipe so the
/// whole module stays inside `std`. The socket buffer bounds queued
/// wakeups; a full buffer means a wakeup is already pending, so the
/// `WouldBlock` on [`WakeHandle::wake`] is ignored by design.
#[derive(Debug)]
pub struct Waker {
    rx: UnixStream,
    tx: Arc<UnixStream>,
}

/// The sending half of a [`Waker`]; cheap to clone and share across
/// worker threads.
#[derive(Debug, Clone)]
pub struct WakeHandle {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// A fresh waker pair, both halves non-blocking.
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker {
            rx,
            tx: Arc::new(tx),
        })
    }

    /// The descriptor to register (read interest) with the reactor.
    pub fn fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// A sending handle for other threads.
    pub fn handle(&self) -> WakeHandle {
        WakeHandle {
            tx: Arc::clone(&self.tx),
        }
    }

    /// Consume every pending wakeup byte so the poll set goes quiet
    /// until the next [`WakeHandle::wake`].
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.rx).read(&mut buf) {
                Ok(0) => return, // sender half gone; nothing more to drain
                Ok(_) => continue,
                Err(_) => return, // WouldBlock (drained) or a dead pair
            }
        }
    }
}

impl WakeHandle {
    /// Interrupt the poller. A full socket buffer means a wakeup is
    /// already pending, so every error is ignorable.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// `struct rlimit` for [`raise_nofile_limit`]; `rlim_t` is 64-bit on
/// every supported Unix.
#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: std::ffi::c_int = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: std::ffi::c_int = 8;

extern "C" {
    fn getrlimit(resource: std::ffi::c_int, rlim: *mut RLimit) -> std::ffi::c_int;
    fn setrlimit(resource: std::ffi::c_int, rlim: *const RLimit) -> std::ffi::c_int;
}

/// Raise this process's soft open-file limit to its hard limit and
/// return the resulting soft limit. The idle-session scale tests open
/// thousands (up to 100k+) of sockets; default soft limits (often 1024)
/// would fail the test for reasons that have nothing to do with the
/// server.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a valid exclusive borrow of a `#[repr(C)]` rlimit.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur < lim.max {
        let want = RLimit {
            cur: lim.max,
            max: lim.max,
        };
        // SAFETY: `want` outlives the call; setrlimit only reads it.
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } != 0 {
            return Err(io::Error::last_os_error());
        }
        lim.cur = lim.max;
    }
    Ok(lim.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn timeout_returns_zero_ready() {
        let waker = Waker::new().expect("waker");
        let mut fds = [PollFd::new(waker.fd(), true, false)];
        let n = poll_fds(&mut fds, Duration::from_millis(10)).expect("poll");
        assert_eq!(n, 0);
        assert!(!fds[0].ready());
    }

    #[test]
    fn waker_interrupts_and_drains() {
        let waker = Waker::new().expect("waker");
        let handle = waker.handle();
        handle.wake();
        let mut fds = [PollFd::new(waker.fd(), true, false)];
        let n = poll_fds(&mut fds, Duration::from_secs(5)).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        waker.drain();
        let mut fds = [PollFd::new(waker.fd(), true, false)];
        let n = poll_fds(&mut fds, Duration::from_millis(5)).expect("poll again");
        assert_eq!(n, 0, "drain consumed the wakeup byte");
    }

    #[test]
    fn wake_handle_clones_share_the_channel() {
        let waker = Waker::new().expect("waker");
        let a = waker.handle();
        let b = a.clone();
        drop(a);
        b.wake();
        let mut fds = [PollFd::new(waker.fd(), true, false)];
        assert_eq!(poll_fds(&mut fds, Duration::from_secs(5)).expect("poll"), 1);
    }

    #[test]
    fn tcp_readiness_and_hangup_are_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        // Nothing sent yet: not readable.
        let mut fds = [PollFd::new(server.as_raw_fd(), true, false)];
        assert_eq!(
            poll_fds(&mut fds, Duration::from_millis(5)).expect("poll"),
            0
        );

        // Bytes in flight: readable.
        client.write_all(b"ping").expect("write");
        let mut fds = [PollFd::new(server.as_raw_fd(), true, false)];
        assert_eq!(poll_fds(&mut fds, Duration::from_secs(5)).expect("poll"), 1);
        assert!(fds[0].readable());

        // Peer gone: readable (EOF) and eventually HUP.
        drop(client);
        let mut fds = [PollFd::new(server.as_raw_fd(), true, false)];
        assert_eq!(poll_fds(&mut fds, Duration::from_secs(5)).expect("poll"), 1);
        assert!(fds[0].readable(), "EOF counts as readable");
    }

    #[test]
    fn nofile_limit_is_raised_or_already_maxed() {
        let lim = raise_nofile_limit().expect("rlimit");
        assert!(lim >= 256, "usable descriptor budget: {lim}");
        // Idempotent.
        assert_eq!(raise_nofile_limit().expect("rlimit again"), lim);
    }

    #[test]
    fn backend_parses_and_defaults() {
        assert_eq!(Backend::parse("poll"), Some(Backend::Poll));
        assert_eq!(Backend::parse("epoll"), Some(Backend::Epoll));
        assert_eq!(Backend::parse("kqueue"), None);
        assert_eq!(Backend::Poll.name(), "poll");
        assert_eq!(Backend::Epoll.name(), "epoll");
        let default = Backend::default_for_host();
        assert!(Backend::all_supported().contains(&default));
        for &b in Backend::all_supported() {
            let r = new_reactor(b).expect("supported backend constructs");
            assert_eq!(r.backend(), b);
        }
    }

    /// Every supported backend reports the same readiness story for a
    /// TCP pair: quiet, then readable on bytes, then readable on EOF —
    /// the reactor-level kernel of the serve-layer equivalence suites.
    #[test]
    fn reactors_agree_on_tcp_readiness_and_hangup() {
        for &backend in Backend::all_supported() {
            let mut reactor = new_reactor(backend).expect("reactor");
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let mut client = TcpStream::connect(addr).expect("connect");
            let (server, _) = listener.accept().expect("accept");
            server.set_nonblocking(true).expect("nonblocking");
            let fd = server.as_raw_fd();
            reactor.register(fd, 7, Interest::READ).expect("register");

            let mut events = Vec::new();
            // Nothing sent yet: not readable.
            let n = reactor
                .wait(Duration::from_millis(5), &mut events)
                .expect("wait");
            assert_eq!(n, 0, "{backend}: quiet socket reported ready");

            // Bytes in flight: readable, under the registered token.
            client.write_all(b"ping").expect("write");
            let n = reactor
                .wait(Duration::from_secs(5), &mut events)
                .expect("wait");
            assert_eq!(n, 1, "{backend}: bytes must wake the reactor");
            assert_eq!(events[0].token(), 7);
            assert!(events[0].readable(), "{backend}: bytes are readable");

            // Peer gone: still readable (EOF counts as readable).
            drop(client);
            let n = reactor
                .wait(Duration::from_secs(5), &mut events)
                .expect("wait");
            assert_eq!(n, 1, "{backend}: hangup must wake the reactor");
            assert!(events[0].readable(), "{backend}: EOF counts as readable");

            reactor.deregister(fd).expect("deregister");
        }
    }

    /// Hangup and error conditions must surface even when the caller
    /// registered no interest at all — the contract that keeps dying
    /// sessions from going silent. (A dropped `UnixStream` peer closes
    /// both directions, which is what raises a true `POLLHUP`; a TCP FIN
    /// half-close only makes the socket readable.)
    #[test]
    fn hangup_is_reported_without_registered_interest() {
        for &backend in Backend::all_supported() {
            let mut reactor = new_reactor(backend).expect("reactor");
            let (local, peer) = UnixStream::pair().expect("pair");
            local.set_nonblocking(true).expect("nonblocking");
            reactor
                .register(local.as_raw_fd(), 1, Interest::new(false, false))
                .expect("register");
            drop(peer);
            let mut events = Vec::new();
            let n = reactor
                .wait(Duration::from_secs(5), &mut events)
                .expect("wait");
            assert_eq!(n, 1, "{backend}: hangup must be reported unregistered");
            assert!(events[0].hangup() || events[0].readable());
        }
    }

    /// The epoll interest cache: `epoll_ctl` is issued only when a
    /// descriptor's `(token, interest)` actually changes.
    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_ctl_is_issued_only_on_interest_change() {
        let mut reactor = EpollReactor::new().expect("epoll");
        let (a, _b) = UnixStream::pair().expect("pair");
        let fd = a.as_raw_fd();

        reactor.register(fd, 1, Interest::READ).expect("add");
        assert_eq!(reactor.stats().ctl_calls, 1, "first register is an ADD");

        // Unchanged interest: cached, no syscall.
        reactor.register(fd, 1, Interest::READ).expect("re-add");
        reactor.register(fd, 1, Interest::READ).expect("re-add");
        assert_eq!(reactor.stats().ctl_calls, 1, "unchanged interest is free");

        // Changed interest: exactly one MOD.
        reactor
            .register(fd, 1, Interest::new(true, true))
            .expect("mod");
        assert_eq!(reactor.stats().ctl_calls, 2, "interest change is one MOD");

        // Changed token only: also a MOD (the kernel carries the token).
        reactor
            .register(fd, 2, Interest::new(true, true))
            .expect("mod token");
        assert_eq!(reactor.stats().ctl_calls, 3);

        // Deregister: one DEL; a second deregister is cached out.
        reactor.deregister(fd).expect("del");
        assert_eq!(reactor.stats().ctl_calls, 4);
        reactor.deregister(fd).expect("re-del");
        assert_eq!(reactor.stats().ctl_calls, 4, "double deregister is free");

        // Re-register after deregister is an ADD again.
        reactor.register(fd, 3, Interest::READ).expect("re-add");
        assert_eq!(reactor.stats().ctl_calls, 5);
    }

    /// After `deregister`, a reactor delivers no further events for the
    /// descriptor even though it is still open and readable.
    #[test]
    fn deregistered_fd_delivers_no_events() {
        for &backend in Backend::all_supported() {
            let mut reactor = new_reactor(backend).expect("reactor");
            let (a, mut b) = UnixStream::pair().expect("pair");
            a.set_nonblocking(true).expect("nonblocking");
            let fd = a.as_raw_fd();
            reactor.register(fd, 9, Interest::READ).expect("register");
            b.write_all(b"x").expect("write");

            let mut events = Vec::new();
            let n = reactor
                .wait(Duration::from_secs(5), &mut events)
                .expect("wait");
            assert_eq!(n, 1, "{backend}: registered fd reports data");

            reactor.deregister(fd).expect("deregister");
            let n = reactor
                .wait(Duration::from_millis(20), &mut events)
                .expect("wait");
            assert_eq!(n, 0, "{backend}: deregistered fd must go silent");
        }
    }

    /// Reactor stats count waits and dispatched events.
    #[test]
    fn reactor_stats_count_waits_and_events() {
        for &backend in Backend::all_supported() {
            let mut reactor = new_reactor(backend).expect("reactor");
            let (a, mut b) = UnixStream::pair().expect("pair");
            a.set_nonblocking(true).expect("nonblocking");
            reactor
                .register(a.as_raw_fd(), 1, Interest::READ)
                .expect("register");
            let mut events = Vec::new();
            reactor
                .wait(Duration::from_millis(1), &mut events)
                .expect("idle wait");
            b.write_all(b"x").expect("write");
            reactor
                .wait(Duration::from_secs(5), &mut events)
                .expect("busy wait");
            let stats = reactor.stats();
            assert_eq!(stats.wait_calls, 2, "{backend}");
            assert_eq!(stats.events_dispatched, 1, "{backend}");
            if backend == Backend::Poll {
                assert_eq!(stats.ctl_calls, 0, "poll issues no ctl syscalls");
            }
        }
    }
}
