//! Seeded fault injection for the serving stack's wire.
//!
//! Distributed engines treat the network as a first-class failure domain;
//! the paper's runtime binding (§2.1) exists because client/server state
//! changes under the optimizer's feet, and faults are the extreme form of
//! that change. This module provides the *deterministic* half of the
//! chaos harness: a [`FaultPlan`] maps `(seed, client, query index)` to a
//! [`QueryFault`] via the simulator's own RNG, so the same seed always
//! yields the same fault schedule — the chaos soak asserts
//! same-seed-same-digest on top of this.
//!
//! Fault *application* (closing sockets, pacing writes) lives with the
//! load generator; this module owns only the pure, deterministic pieces:
//! the schedule and the byte-level frame mutations, plus a
//! [`FaultyStream`] wrapper that chops writes into short chunks to
//! exercise partial-read resumption on the peer.

use std::io::{Read, Write};

use csqp_simkernel::rng::SimRng;

/// What the injector does to one query exchange.
///
/// Faults are client-driven: from the server's point of view a client
/// that closes its socket mid-frame is indistinguishable from a broken
/// wire, so injecting at the client exercises exactly the server paths
/// the fault model targets (teardown at frame boundaries, partial reads,
/// corrupt frames, idle timeouts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryFault {
    /// No fault: send the frame and read the reply normally.
    None,
    /// Close the connection at the frame boundary, before sending.
    DropBeforeSend,
    /// Send a strict prefix of the frame, then close the connection.
    DropMidFrame,
    /// Send a frame whose declared payload length exceeds the bytes that
    /// follow, then close — the peer sees EOF mid-frame.
    TruncateFrame,
    /// Flip one payload byte before sending; the frame arrives complete
    /// but semantically damaged.
    CorruptFrame,
    /// Write the frame in short chunks with brief pauses between them —
    /// the peer must resume partial reads across its read timeout.
    ShortWrites,
    /// Pause before sending so the peer's blocking read times out at
    /// least once with no data (`WouldBlock`) and must keep waiting.
    PauseBeforeSend,
    /// Send normally but pause before consuming the reply, backing the
    /// peer's write up against the socket buffer.
    SlowConsume,
    /// Send the complete frame, then close the connection without ever
    /// reading the reply: the query is fully submitted, so the server
    /// executes it (or aborts it at a cancellation probe) with nobody
    /// left to answer — the abort-accounting path under load.
    DisconnectAfterSubmit,
}

impl QueryFault {
    /// All injectable faults (everything but `None`).
    pub const ALL: [QueryFault; 8] = [
        QueryFault::DropBeforeSend,
        QueryFault::DropMidFrame,
        QueryFault::TruncateFrame,
        QueryFault::CorruptFrame,
        QueryFault::ShortWrites,
        QueryFault::PauseBeforeSend,
        QueryFault::SlowConsume,
        QueryFault::DisconnectAfterSubmit,
    ];

    /// True when the server receives a complete, decodable-or-not frame
    /// and is therefore expected to produce a reply frame (RESULT or a
    /// typed ERROR) on a still-open stream.
    pub fn expects_reply(self) -> bool {
        matches!(
            self,
            QueryFault::None
                | QueryFault::CorruptFrame
                | QueryFault::ShortWrites
                | QueryFault::PauseBeforeSend
                | QueryFault::SlowConsume
        )
    }

    /// True when the fault ends the connection (the client closes the
    /// socket as part of the injection).
    pub fn drops_connection(self) -> bool {
        matches!(
            self,
            QueryFault::DropBeforeSend
                | QueryFault::DropMidFrame
                | QueryFault::TruncateFrame
                | QueryFault::DisconnectAfterSubmit
        )
    }

    /// Short stable name for reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            QueryFault::None => "none",
            QueryFault::DropBeforeSend => "drop_before_send",
            QueryFault::DropMidFrame => "drop_mid_frame",
            QueryFault::TruncateFrame => "truncate_frame",
            QueryFault::CorruptFrame => "corrupt_frame",
            QueryFault::ShortWrites => "short_writes",
            QueryFault::PauseBeforeSend => "pause_before_send",
            QueryFault::SlowConsume => "slow_consume",
            QueryFault::DisconnectAfterSubmit => "disconnect_after_submit",
        }
    }
}

/// What the *server* does to its own reply frame — the reply-path half of
/// the fault model. Where [`QueryFault`] is injected at the client edge,
/// a `ReplyFault` is applied by the serving stack itself (when configured
/// with a fault plan) to the RESULT/ERROR frame answering a decoded
/// QUERY, exercising the client's handling of damaged responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplyFault {
    /// Send the reply unchanged.
    None,
    /// Send a strict prefix of the reply frame, then close the session —
    /// the client sees EOF in the middle of a declared frame.
    TruncateReply,
    /// Flip one payload byte of the reply before sending; the frame
    /// arrives complete but semantically damaged.
    CorruptReply,
}

impl ReplyFault {
    /// Short stable name for reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            ReplyFault::None => "none",
            ReplyFault::TruncateReply => "truncate_reply",
            ReplyFault::CorruptReply => "corrupt_reply",
        }
    }
}

/// What happens to the catalog-replica propagation step serving a query —
/// the metadata-drift third of the fault model. Where [`QueryFault`] and
/// [`ReplyFault`] damage bytes on the wire, a `CatalogFault` damages the
/// *refresh* that should bring the serving shard's catalog replica up to
/// the coordinator's newest epoch, so plans risk being priced against
/// metadata the world has moved past.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CatalogFault {
    /// The refresh arrives intact: the replica catches up to the
    /// coordinator epoch.
    None,
    /// The refresh never arrives; the replica's epoch lag grows by the
    /// epochs published this tick.
    WithheldRefresh,
    /// A torn (partial) delivery: the replica applies all but the newest
    /// epoch, landing one behind the coordinator.
    TornEpoch,
    /// A reordered delivery: an *older* snapshot arrives; the replica's
    /// regression guard must reject it, leaving the lag unchanged.
    ReorderedEpoch,
    /// The refresh applies, but the cached-fraction state it carries is
    /// unusable: the replica must not price the client cache until the
    /// next clean refresh.
    PoisonedFraction,
}

impl CatalogFault {
    /// Every injectable catalog fault (not including `None`).
    pub const ALL: [CatalogFault; 4] = [
        CatalogFault::WithheldRefresh,
        CatalogFault::TornEpoch,
        CatalogFault::ReorderedEpoch,
        CatalogFault::PoisonedFraction,
    ];

    /// Short stable name for reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            CatalogFault::None => "none",
            CatalogFault::WithheldRefresh => "withheld_refresh",
            CatalogFault::TornEpoch => "torn_epoch",
            CatalogFault::ReorderedEpoch => "reordered_epoch",
            CatalogFault::PoisonedFraction => "poisoned_fraction",
        }
    }
}

/// Domain separator mixed into the reply-fault derivation so request and
/// reply schedules never correlate.
const REPLY_FAULT_SALT: u64 = 0x5250_4C59_464C_5421; // "RPLYFLT!"

/// Domain separator for the catalog-fault derivation: independent of both
/// the request-path and reply-path schedules.
const CATALOG_FAULT_SALT: u64 = 0x4341_5446_4C54_5A21; // "CATFLTZ!"

/// FNV-1a over a byte slice — the same mixing the serving layer uses for
/// per-query seeds, duplicated here so `csqp-net` stays dependency-light.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A deterministic map from `(client, query index)` to the fault injected
/// on that exchange.
///
/// The plan is a pure function of its master seed: deriving the per-query
/// RNG from `fnv1a(seed ‖ client ‖ index)` makes every exchange's fault
/// independent of how many queries ran before it, so schedules are stable
/// under retries and reordering.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    master_seed: u64,
    intensity: f64,
}

impl FaultPlan {
    /// Build a plan from a master seed and an injection probability in
    /// `[0, 1]` (the fraction of exchanges that receive a fault).
    pub fn new(master_seed: u64, intensity: f64) -> FaultPlan {
        FaultPlan {
            master_seed,
            intensity: intensity.clamp(0.0, 1.0),
        }
    }

    /// The master seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.master_seed
    }

    /// The injection probability.
    pub fn intensity(&self) -> f64 {
        self.intensity
    }

    /// The per-exchange RNG, derived so faults are independent across
    /// exchanges and deterministic per `(seed, client, index)`.
    pub fn rng_for(&self, client: u64, index: u64) -> SimRng {
        let mut bytes = [0u8; 24];
        bytes[..8].copy_from_slice(&self.master_seed.to_be_bytes());
        bytes[8..16].copy_from_slice(&client.to_be_bytes());
        bytes[16..].copy_from_slice(&index.to_be_bytes());
        SimRng::seed_from_u64(fnv1a(&bytes))
    }

    /// The fault injected on exchange `index` of connection `client`.
    pub fn fault_for(&self, client: u64, index: u64) -> QueryFault {
        let mut rng = self.rng_for(client, index);
        if !rng.chance(self.intensity) {
            return QueryFault::None;
        }
        *rng.pick(&QueryFault::ALL)
    }

    /// The first `n` faults of connection `client`, in order.
    pub fn schedule(&self, client: u64, n: u64) -> Vec<QueryFault> {
        (0..n).map(|i| self.fault_for(client, i)).collect()
    }

    /// The reply-path RNG for the query whose request carried
    /// `query_seed`. Keyed on the request's own seed — which both sides
    /// of the wire know — instead of connection counters, so server and
    /// harness agree on the schedule without sharing any session state.
    pub fn reply_rng_for(&self, query_seed: u64) -> SimRng {
        let mut bytes = [0u8; 24];
        bytes[..8].copy_from_slice(&self.master_seed.to_be_bytes());
        bytes[8..16].copy_from_slice(&REPLY_FAULT_SALT.to_be_bytes());
        bytes[16..].copy_from_slice(&query_seed.to_be_bytes());
        SimRng::seed_from_u64(fnv1a(&bytes))
    }

    /// The fault the server injects on its reply to the query whose
    /// request carried `query_seed`. Pure in `(master seed, query_seed)`.
    pub fn reply_fault_for(&self, query_seed: u64) -> ReplyFault {
        let mut rng = self.reply_rng_for(query_seed);
        if !rng.chance(self.intensity) {
            return ReplyFault::None;
        }
        *rng.pick(&[ReplyFault::TruncateReply, ReplyFault::CorruptReply])
    }

    /// The catalog-drift RNG for the query whose request carried
    /// `query_seed`. Keyed on the request's own seed, like the reply
    /// path, so the drift schedule is independent of session state and
    /// identical across servers fed the same query stream.
    pub fn catalog_rng_for(&self, query_seed: u64) -> SimRng {
        let mut bytes = [0u8; 24];
        bytes[..8].copy_from_slice(&self.master_seed.to_be_bytes());
        bytes[8..16].copy_from_slice(&CATALOG_FAULT_SALT.to_be_bytes());
        bytes[16..].copy_from_slice(&query_seed.to_be_bytes());
        SimRng::seed_from_u64(fnv1a(&bytes))
    }

    /// The fault injected on the catalog-replica refresh serving the
    /// query whose request carried `query_seed`. Pure in
    /// `(master seed, query_seed)`.
    pub fn catalog_fault_for(&self, query_seed: u64) -> CatalogFault {
        let mut rng = self.catalog_rng_for(query_seed);
        if !rng.chance(self.intensity) {
            return CatalogFault::None;
        }
        *rng.pick(&CatalogFault::ALL)
    }
}

/// Flip one byte of `frame` past the fixed header (or anywhere, for
/// frames too short to have a payload), deterministically per `rng`.
///
/// `header_len` is the size of the frame's fixed header; corruption
/// prefers the payload so the frame still parses as a frame but carries
/// damaged content — the harder path for the receiver.
pub fn corrupt_frame(frame: &[u8], header_len: usize, rng: &mut SimRng) -> Vec<u8> {
    let mut out = frame.to_vec();
    if out.is_empty() {
        return out;
    }
    let lo = if out.len() > header_len {
        header_len
    } else {
        0
    };
    let idx = rng.range(lo, out.len());
    // XOR with a nonzero mask guarantees the byte actually changes.
    out[idx] ^= 1 + rng.below(255) as u8;
    out
}

/// A strict prefix of `frame` (at least one byte short, at least the
/// first byte kept), deterministically per `rng`. The receiver sees EOF
/// in the middle of a declared frame.
pub fn truncate_frame(frame: &[u8], rng: &mut SimRng) -> Vec<u8> {
    if frame.len() <= 1 {
        return Vec::new();
    }
    let keep = rng.range(1, frame.len());
    frame[..keep].to_vec()
}

/// How a [`FaultyStream`] distorts writes.
#[derive(Debug, Clone, Copy)]
pub enum WritePacing {
    /// Pass writes through unchanged.
    Clean,
    /// Split every write into chunks of at most `max_chunk` bytes and
    /// pause `pause_ms` between chunks (flushing each), so the peer's
    /// reads land mid-frame.
    Chunked {
        /// Largest chunk written at once (≥ 1).
        max_chunk: usize,
        /// Milliseconds slept between chunks.
        pause_ms: u64,
    },
}

/// A stream wrapper that applies [`WritePacing`] to writes; reads pass
/// through. Works over any `Read + Write` (loopback TCP in the harness,
/// in-memory buffers in unit tests).
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    pacing: WritePacing,
}

impl<S> FaultyStream<S> {
    /// Wrap `inner` with the given write pacing.
    pub fn new(inner: S, pacing: WritePacing) -> FaultyStream<S> {
        FaultyStream { inner, pacing }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.pacing {
            WritePacing::Clean => self.inner.write(buf),
            WritePacing::Chunked { max_chunk, .. } => {
                let n = buf.len().min(max_chunk.max(1));
                self.inner.write(&buf[..n])
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }

    fn write_all(&mut self, mut buf: &[u8]) -> std::io::Result<()> {
        match self.pacing {
            WritePacing::Clean => self.inner.write_all(buf),
            WritePacing::Chunked {
                max_chunk,
                pause_ms,
            } => {
                let chunk = max_chunk.max(1);
                while !buf.is_empty() {
                    let n = buf.len().min(chunk);
                    self.inner.write_all(&buf[..n])?;
                    self.inner.flush()?;
                    buf = &buf[n..];
                    if !buf.is_empty() && pause_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(pause_ms));
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let plan = FaultPlan::new(42, 0.5);
        let again = FaultPlan::new(42, 0.5);
        assert_eq!(plan.schedule(3, 64), again.schedule(3, 64));
        let other = FaultPlan::new(43, 0.5);
        assert_ne!(plan.schedule(3, 64), other.schedule(3, 64));
    }

    #[test]
    fn schedule_is_independent_per_exchange() {
        // fault_for(c, i) must not depend on which exchanges ran before.
        let plan = FaultPlan::new(7, 0.8);
        let direct = plan.fault_for(2, 55);
        let _ = plan.schedule(2, 40);
        assert_eq!(plan.fault_for(2, 55), direct);
    }

    #[test]
    fn intensity_bounds_injection() {
        let never = FaultPlan::new(1, 0.0);
        assert!(never
            .schedule(0, 100)
            .iter()
            .all(|f| *f == QueryFault::None));
        let always = FaultPlan::new(1, 1.0);
        assert!(always
            .schedule(0, 100)
            .iter()
            .all(|f| *f != QueryFault::None));
        // Out-of-range intensities clamp instead of panicking.
        assert_eq!(FaultPlan::new(1, 7.0).intensity(), 1.0);
        assert_eq!(FaultPlan::new(1, -1.0).intensity(), 0.0);
    }

    #[test]
    fn all_faults_eventually_injected() {
        let plan = FaultPlan::new(9, 1.0);
        let seen: std::collections::HashSet<_> = plan.schedule(0, 200).into_iter().collect();
        for f in QueryFault::ALL {
            assert!(seen.contains(&f), "{} never scheduled", f.name());
        }
    }

    #[test]
    fn reply_schedule_is_deterministic_and_independent_of_requests() {
        let plan = FaultPlan::new(42, 0.7);
        let again = FaultPlan::new(42, 0.7);
        for seed in 0..256u64 {
            assert_eq!(plan.reply_fault_for(seed), again.reply_fault_for(seed));
        }
        // A different master seed reshuffles the reply schedule.
        let other = FaultPlan::new(43, 0.7);
        let differs = (0..256u64).any(|s| plan.reply_fault_for(s) != other.reply_fault_for(s));
        assert!(differs, "reply schedule must depend on the master seed");
        // Both reply faults eventually appear, and intensity 0 never
        // injects.
        let seen: std::collections::HashSet<_> =
            (0..512u64).map(|s| plan.reply_fault_for(s)).collect();
        assert!(seen.contains(&ReplyFault::TruncateReply));
        assert!(seen.contains(&ReplyFault::CorruptReply));
        let never = FaultPlan::new(42, 0.0);
        assert!((0..128u64).all(|s| never.reply_fault_for(s) == ReplyFault::None));
    }

    #[test]
    fn catalog_schedule_is_deterministic_and_independent_of_other_paths() {
        let plan = FaultPlan::new(42, 0.7);
        let again = FaultPlan::new(42, 0.7);
        for seed in 0..256u64 {
            assert_eq!(plan.catalog_fault_for(seed), again.catalog_fault_for(seed));
        }
        // A different master seed reshuffles the drift schedule.
        let other = FaultPlan::new(43, 0.7);
        let differs = (0..256u64).any(|s| plan.catalog_fault_for(s) != other.catalog_fault_for(s));
        assert!(differs, "catalog schedule must depend on the master seed");
        // Every catalog fault eventually appears; intensity 0 never
        // injects.
        let seen: std::collections::HashSet<_> =
            (0..2048u64).map(|s| plan.catalog_fault_for(s)).collect();
        for fault in CatalogFault::ALL {
            assert!(seen.contains(&fault), "missing {}", fault.name());
        }
        let never = FaultPlan::new(42, 0.0);
        assert!((0..128u64).all(|s| never.catalog_fault_for(s) == CatalogFault::None));
        // The three per-query fault paths are salted apart: the catalog
        // draw must not simply mirror the reply draw's inject decision.
        let reply_mask: Vec<bool> = (0..512u64)
            .map(|s| plan.reply_fault_for(s) != ReplyFault::None)
            .collect();
        let catalog_mask: Vec<bool> = (0..512u64)
            .map(|s| plan.catalog_fault_for(s) != CatalogFault::None)
            .collect();
        assert_ne!(reply_mask, catalog_mask, "salts must decorrelate the paths");
    }

    #[test]
    fn disconnect_after_submit_is_schedulable_and_terminal() {
        let plan = FaultPlan::new(11, 1.0);
        let seen: std::collections::HashSet<_> = plan.schedule(0, 256).into_iter().collect();
        assert!(seen.contains(&QueryFault::DisconnectAfterSubmit));
        assert!(QueryFault::DisconnectAfterSubmit.drops_connection());
        assert!(!QueryFault::DisconnectAfterSubmit.expects_reply());
    }

    #[test]
    fn corruption_changes_exactly_one_payload_byte() {
        let frame: Vec<u8> = (0..64).collect();
        let mut rng = SimRng::seed_from_u64(5);
        let bad = corrupt_frame(&frame, 12, &mut rng);
        assert_eq!(bad.len(), frame.len());
        let diffs: Vec<usize> = (0..frame.len()).filter(|&i| bad[i] != frame[i]).collect();
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0] >= 12, "corruption must land in the payload");
    }

    #[test]
    fn truncation_is_a_strict_nonempty_prefix() {
        let frame: Vec<u8> = (0..64).collect();
        for seed in 0..32 {
            let mut rng = SimRng::seed_from_u64(seed);
            let cut = truncate_frame(&frame, &mut rng);
            assert!(!cut.is_empty() && cut.len() < frame.len());
            assert_eq!(cut[..], frame[..cut.len()]);
        }
    }

    #[test]
    fn chunked_stream_splits_writes() {
        let mut s = FaultyStream::new(
            Vec::new(),
            WritePacing::Chunked {
                max_chunk: 3,
                pause_ms: 0,
            },
        );
        assert_eq!(s.write(&[0u8; 10]).unwrap(), 3);
        s.write_all(&[1u8; 10]).unwrap();
        assert_eq!(s.get_ref().len(), 13);
        let inner = s.into_inner();
        assert_eq!(&inner[3..], &[1u8; 10]);
    }
}
