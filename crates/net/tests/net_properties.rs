//! Property tests for the network link: FIFO delivery, exact wire-time
//! accounting, and byte bookkeeping under arbitrary message mixes.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp_catalog::SystemConfig;
use csqp_net::{Link, MsgKind};
use csqp_simkernel::SimTime;
use proptest::prelude::*;

fn drain(link: &mut Link<u32>, first_fin: SimTime) -> Vec<(u32, SimTime)> {
    let mut out = Vec::new();
    let mut fin = first_fin;
    loop {
        let (tok, next) = link.finish_current(fin);
        out.push((tok, fin));
        match next {
            Some(f) => fin = f,
            None => break,
        }
    }
    out
}

proptest! {
    /// Messages complete in submission order, and the total elapsed time
    /// equals the sum of the individual wire times.
    #[test]
    fn fifo_order_and_exact_timing(
        sizes in proptest::collection::vec(64u64..20_000, 1..40)
    ) {
        let cfg = SystemConfig::default();
        let mut link: Link<u32> = Link::new(&cfg);
        let mut first = None;
        for (i, bytes) in sizes.iter().enumerate() {
            let kind = if *bytes >= 4096 { MsgKind::DataPage } else { MsgKind::Control };
            if let Some(f) = link.submit(SimTime::ZERO, i as u32, *bytes, kind) {
                prop_assert!(first.is_none());
                first = Some(f);
            }
        }
        let done = drain(&mut link, first.unwrap());
        // FIFO order.
        let tokens: Vec<u32> = done.iter().map(|(t, _)| *t).collect();
        prop_assert_eq!(&tokens, &(0..sizes.len() as u32).collect::<Vec<_>>());
        // Exact completion time.
        let expect: f64 = sizes.iter().map(|b| *b as f64 * 8.0 / 100e6).sum();
        let last = done.last().unwrap().1.as_secs_f64();
        prop_assert!((last - expect).abs() < 1e-6, "{last} vs {expect}");
        // Byte accounting.
        prop_assert_eq!(link.bytes_sent(), sizes.iter().sum::<u64>());
        prop_assert!(link.is_idle());
    }

    /// The pages-sent counter counts exactly the DataPage submissions.
    #[test]
    fn page_counter_counts_data_pages(
        kinds in proptest::collection::vec(proptest::bool::ANY, 1..50)
    ) {
        let cfg = SystemConfig::default();
        let mut link: Link<u32> = Link::new(&cfg);
        let mut first = None;
        let mut pages = 0;
        for (i, is_page) in kinds.iter().enumerate() {
            let (bytes, kind) = if *is_page {
                pages += 1;
                (4096, MsgKind::DataPage)
            } else {
                (256, MsgKind::Control)
            };
            if let Some(f) = link.submit(SimTime::ZERO, i as u32, bytes, kind) {
                first = first.or(Some(f));
            }
        }
        drain(&mut link, first.unwrap());
        prop_assert_eq!(link.data_pages_sent(), pages);
        prop_assert_eq!(link.control_msgs_sent(), kinds.len() as u64 - pages);
    }
}
