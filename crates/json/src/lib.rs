//! A dependency-free JSON value type, recursive-descent parser, and
//! writer.
//!
//! This crate replaces `serde`/`serde_json` for the workspace so the seed
//! builds with no network access to a registry. It covers exactly what
//! the workspace needs: plan persistence (`csqp-core`'s
//! `Plan::to_json`/`from_json`), `SystemConfig` round-trips, and the
//! experiment harness's figure output.
//!
//! Numbers are stored as `f64`, which is lossless for every integer the
//! workspace serializes (node ids, Table 2 parameters, tuple counts —
//! all < 2^53).

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Error raised by [`Json::parse`] or by typed accessors during decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// The input is not syntactically valid JSON.
    Parse {
        /// Byte offset of the error.
        offset: usize,
        /// What went wrong.
        msg: String,
    },
    /// The document parsed but did not have the expected shape.
    Decode {
        /// Dotted path to the offending value (e.g. `nodes[3].ann`).
        path: String,
        /// What was expected.
        msg: String,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { offset, msg } => {
                write!(f, "JSON parse error at byte {offset}: {msg}")
            }
            JsonError::Decode { path, msg } => {
                write!(f, "JSON decode error at `{path}`: {msg}")
            }
        }
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A decode error at `path`.
    pub fn decode(path: impl Into<String>, msg: impl Into<String>) -> JsonError {
        JsonError::Decode {
            path: path.into(),
            msg: msg.into(),
        }
    }
}

/// Convenience constructor: an object from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl Json {
    /// The value under `key`, for objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, with a decode error naming the path.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::decode(key, "missing field"))
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parse a JSON document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    use fmt::Write;
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-round-trip float formatting is valid JSON.
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError::Parse {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's writers; reject them plainly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let doc = obj(vec![
            ("name", Json::from("R0")),
            ("tuples", Json::from(10_000u64)),
            ("sel", Json::from(1e-4)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(r#" { "a" : [ 1 , 2.5 , -3e2 ] , "b" : { "c" : "x\ny" } } "#).unwrap();
        assert_eq!(v.field("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.field("b").unwrap().field("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(
            v.field("a").unwrap().as_arr().unwrap()[2],
            Json::Num(-300.0)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} x").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let s = Json::Str("quote \" slash \\ tab \t nl \n unicode ü".into());
        let back = Json::parse(&s.render()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pretty_renders_with_indentation() {
        let doc = obj(vec![("k", Json::Arr(vec![Json::Num(1.0)]))]);
        let p = doc.render_pretty();
        assert!(p.contains("\n  \"k\""));
        assert_eq!(Json::parse(&p).unwrap(), doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(250.0).render(), "250");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }

    #[test]
    fn u64_accessor_rejects_fractions() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
