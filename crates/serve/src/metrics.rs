//! Thread-safe server-side metrics.
//!
//! Every worker thread records into one shared [`ServerMetrics`];
//! [`ServerMetrics::snapshot`] produces the STATS frame payload. Counters
//! are atomics; the latency reservoir is a mutex-guarded vector (bounded,
//! so a long-lived server cannot grow without limit).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use csqp_core::Policy;
use csqp_engine::LinkStats;

use crate::proto::StatsSnapshot;

/// Cap on retained latency samples; past this the reservoir keeps every
/// k-th sample so percentiles stay representative without unbounded
/// memory.
const MAX_SAMPLES: usize = 65_536;

/// Lock a mutex, recovering from poisoning (a panicked worker must not
/// take the metrics down with it).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn policy_slot(p: Policy) -> usize {
    match p {
        Policy::DataShipping => 0,
        Policy::QueryShipping => 1,
        Policy::HybridShipping => 2,
    }
}

/// Shared, thread-safe service counters.
///
/// The accounting invariant ([`ServerMetrics::conservation_holds`]):
/// every submitted query lands in exactly one terminal bucket, so
/// `submitted == served + rejected + errors + aborted + timed_out` once
/// the pipeline drains. The chaos harness asserts this after every soak.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    submitted: AtomicU64,
    queries_served: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    aborted: AtomicU64,
    timed_out: AtomicU64,
    degraded: AtomicU64,
    mem_bound_degraded: AtomicU64,
    mem_bound_rejected: AtomicU64,
    per_policy: [AtomicU64; 3],
    lint_checks: AtomicU64,
    wire_pages: AtomicU64,
    wire_msgs: AtomicU64,
    wire_bytes: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
    sample_stride: AtomicU64,
    sessions_open: AtomicU64,
    reactor_wait_calls: AtomicU64,
    reactor_ctl_calls: AtomicU64,
    reactor_events_dispatched: AtomicU64,
}

impl ServerMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    /// Record one successfully served query: its policy, service latency
    /// (queue wait + planning + simulation), and simulated wire traffic.
    pub fn record_served(&self, policy: Policy, latency_us: u64, wire: LinkStats) {
        let n = self.queries_served.fetch_add(1, Ordering::Relaxed);
        self.per_policy[policy_slot(policy)].fetch_add(1, Ordering::Relaxed);
        self.wire_pages
            .fetch_add(wire.data_pages_sent, Ordering::Relaxed);
        self.wire_msgs
            .fetch_add(wire.control_msgs_sent, Ordering::Relaxed);
        self.wire_bytes
            .fetch_add(wire.bytes_sent, Ordering::Relaxed);
        let stride = self.sample_stride.load(Ordering::Relaxed).max(1);
        if n.is_multiple_of(stride) {
            let mut samples = lock(&self.latencies_us);
            if samples.len() >= MAX_SAMPLES {
                // Decimate: keep every other sample and double the stride.
                let kept: Vec<u64> = samples.iter().copied().step_by(2).collect();
                *samples = kept;
                self.sample_stride.store(stride * 2, Ordering::Relaxed);
            }
            samples.push(latency_us);
        }
    }

    /// Record one decoded QUERY frame entering admission control. Every
    /// submit must later be matched by exactly one terminal record
    /// (served / reject / error / aborted / timed-out).
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one admission-control rejection.
    pub fn record_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request that failed with a non-reject error.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request abandoned mid-flight (client vanished, server
    /// shut down before the worker picked it up).
    pub fn record_aborted(&self) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request whose deadline expired before completion.
    pub fn record_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request served after degrading its policy to QS.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request degraded to QS specifically because its chosen
    /// plan's worst-case client footprint exceeded the memory budget.
    /// Always paired with [`ServerMetrics::record_degraded`].
    pub fn record_mem_bound_degraded(&self) {
        self.mem_bound_degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request rejected because even the QS fallback plan's
    /// worst-case footprint exceeded the memory budget. Always paired
    /// with [`ServerMetrics::record_reject`].
    pub fn record_mem_bound_rejected(&self) {
        self.mem_bound_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record that the Table-1 conformance lint ran on a plan before
    /// execution (the serve-path invariant checked by the loopback test).
    pub fn record_lint(&self) {
        self.lint_checks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one session opening (a socket registered with a session
    /// engine or a connection thread starting).
    pub fn session_opened(&self) {
        self.sessions_open.fetch_add(1, Ordering::AcqRel);
    }

    /// Record one session closing. Must pair with
    /// [`ServerMetrics::session_opened`].
    pub fn session_closed(&self) {
        let prev = self.sessions_open.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "sessions_open gauge underflow");
    }

    /// Sessions currently open — a gauge, not on the STATS wire; the
    /// idle-session scale test polls it to know when all its sockets are
    /// registered.
    pub fn sessions_open(&self) -> u64 {
        self.sessions_open.load(Ordering::Acquire)
    }

    /// Fold one shard's reactor counter growth (since its last publish)
    /// into the shared totals. Every shard pushes deltas each loop
    /// iteration, so the STATS wire sees all shards summed.
    pub fn record_reactor(&self, wait_calls: u64, ctl_calls: u64, events_dispatched: u64) {
        self.reactor_wait_calls
            .fetch_add(wait_calls, Ordering::Relaxed);
        self.reactor_ctl_calls
            .fetch_add(ctl_calls, Ordering::Relaxed);
        self.reactor_events_dispatched
            .fetch_add(events_dispatched, Ordering::Relaxed);
    }

    /// Reactor wait syscalls across all shards so far.
    pub fn reactor_wait_calls(&self) -> u64 {
        self.reactor_wait_calls.load(Ordering::Relaxed)
    }

    /// Reactor interest-mutation syscalls across all shards so far
    /// (always zero under the `poll` backend).
    pub fn reactor_ctl_calls(&self) -> u64 {
        self.reactor_ctl_calls.load(Ordering::Relaxed)
    }

    /// Readiness events dispatched to shard loops so far.
    pub fn reactor_events_dispatched(&self) -> u64 {
        self.reactor_events_dispatched.load(Ordering::Relaxed)
    }

    /// Queries served so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served.load(Ordering::Relaxed)
    }

    /// Admission rejections so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Non-reject errors so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// QUERY frames submitted to admission control so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Requests abandoned mid-flight so far.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Requests that hit their deadline so far.
    pub fn timed_out(&self) -> u64 {
        self.timed_out.load(Ordering::Relaxed)
    }

    /// Requests served after policy degradation so far.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Requests degraded to QS by the memory-bound admission gate so far.
    pub fn mem_bound_degraded(&self) -> u64 {
        self.mem_bound_degraded.load(Ordering::Relaxed)
    }

    /// Requests rejected by the memory-bound admission gate so far.
    pub fn mem_bound_rejected(&self) -> u64 {
        self.mem_bound_rejected.load(Ordering::Relaxed)
    }

    /// True when every submitted query has reached exactly one terminal
    /// bucket. Only meaningful once the pipeline has drained (no query
    /// in the queue or on a worker); the chaos harness polls STATS until
    /// this settles.
    pub fn conservation_holds(&self) -> bool {
        self.submitted()
            == self.queries_served()
                + self.rejected()
                + self.errors()
                + self.aborted()
                + self.timed_out()
    }

    /// Conformance-lint executions so far. On a healthy server this
    /// equals queries served plus policy-violation errors: every plan is
    /// linted exactly once, before execution.
    pub fn lint_checks(&self) -> u64 {
        self.lint_checks.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot for the STATS frame.
    pub fn snapshot(&self) -> StatsSnapshot {
        let sorted = {
            let samples = lock(&self.latencies_us);
            let mut s = samples.clone();
            s.sort_unstable();
            s
        };
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            queries_served: self.queries_served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            per_policy: [
                self.per_policy[0].load(Ordering::Relaxed),
                self.per_policy[1].load(Ordering::Relaxed),
                self.per_policy[2].load(Ordering::Relaxed),
            ],
            p50_ms: percentile_us(&sorted, 0.50) / 1000.0,
            p95_ms: percentile_us(&sorted, 0.95) / 1000.0,
            p99_ms: percentile_us(&sorted, 0.99) / 1000.0,
            wire: LinkStats {
                data_pages_sent: self.wire_pages.load(Ordering::Relaxed),
                control_msgs_sent: self.wire_msgs.load(Ordering::Relaxed),
                bytes_sent: self.wire_bytes.load(Ordering::Relaxed),
            },
            // The memo and the catalog drift state live on the
            // QueryService, not here; `QueryService::stats_snapshot`
            // merges their counters in.
            memo_hits: 0,
            memo_misses: 0,
            memo_evictions: 0,
            memo_bytes: 0,
            catalog_epoch: 0,
            catalog_refreshes: 0,
            catalog_stale_degraded: 0,
            catalog_stale_rejected: 0,
            catalog_epoch_regressions: 0,
            catalog_max_lag: 0,
            mem_bound_degraded: self.mem_bound_degraded.load(Ordering::Relaxed),
            mem_bound_rejected: self.mem_bound_rejected.load(Ordering::Relaxed),
            reactor_wait_calls: self.reactor_wait_calls.load(Ordering::Relaxed),
            reactor_ctl_calls: self.reactor_ctl_calls.load(Ordering::Relaxed),
            reactor_events_dispatched: self.reactor_events_dispatched.load(Ordering::Relaxed),
        }
    }
}

/// Nearest-rank percentile of a *sorted* sample, in the sample's unit.
/// Empty samples report 0.
pub fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&s, 0.50), 50.0);
        assert_eq!(percentile_us(&s, 0.95), 95.0);
        assert_eq!(percentile_us(&s, 0.99), 99.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
        assert_eq!(percentile_us(&[7], 0.99), 7.0);
    }

    #[test]
    fn snapshot_aggregates_counters() {
        let m = ServerMetrics::new();
        let wire = LinkStats {
            data_pages_sent: 10,
            control_msgs_sent: 3,
            bytes_sent: 4096,
        };
        for _ in 0..7 {
            m.record_submitted();
        }
        m.record_served(Policy::QueryShipping, 2_000, wire);
        m.record_served(Policy::QueryShipping, 4_000, wire);
        m.record_served(Policy::HybridShipping, 6_000, wire);
        m.record_reject();
        m.record_error();
        m.record_aborted();
        m.record_timed_out();
        m.record_degraded();
        m.record_lint();
        let s = m.snapshot();
        assert_eq!(s.submitted, 7);
        assert_eq!(s.queries_served, 3);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.errors, 1);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.degraded, 1);
        assert_eq!(s.per_policy, [0, 2, 1]);
        assert_eq!(s.wire.data_pages_sent, 30);
        assert_eq!(s.wire.bytes_sent, 3 * 4096);
        assert_eq!(s.p50_ms, 4.0);
        assert_eq!(m.lint_checks(), 1);
        assert!(m.conservation_holds(), "7 in, 3+1+1+1+1 out");
    }

    #[test]
    fn session_gauge_tracks_opens_and_closes() {
        let m = ServerMetrics::new();
        assert_eq!(m.sessions_open(), 0);
        m.session_opened();
        m.session_opened();
        assert_eq!(m.sessions_open(), 2);
        m.session_closed();
        assert_eq!(m.sessions_open(), 1);
        m.session_closed();
        assert_eq!(m.sessions_open(), 0);
    }

    #[test]
    fn reactor_deltas_accumulate_across_shards() {
        let m = ServerMetrics::new();
        m.record_reactor(10, 2, 7);
        m.record_reactor(5, 0, 3);
        assert_eq!(m.reactor_wait_calls(), 15);
        assert_eq!(m.reactor_ctl_calls(), 2);
        assert_eq!(m.reactor_events_dispatched(), 10);
        let s = m.snapshot();
        assert_eq!(s.reactor_wait_calls, 15);
        assert_eq!(s.reactor_ctl_calls, 2);
        assert_eq!(s.reactor_events_dispatched, 10);
    }

    #[test]
    fn conservation_detects_leaks() {
        let m = ServerMetrics::new();
        m.record_submitted();
        assert!(!m.conservation_holds(), "one query still in flight");
        m.record_aborted();
        assert!(m.conservation_holds());
    }

    #[test]
    fn reservoir_decimates_instead_of_growing() {
        let m = ServerMetrics::new();
        let wire = LinkStats::default();
        for i in 0..(MAX_SAMPLES as u64 + 10_000) {
            m.record_served(Policy::DataShipping, i, wire);
        }
        let kept = lock(&m.latencies_us).len();
        assert!(kept <= MAX_SAMPLES, "reservoir stayed bounded: {kept}");
        assert!(kept > MAX_SAMPLES / 4, "reservoir still representative");
    }
}
