//! The `csqp-load` client: N concurrent connections driving a seeded
//! workload mix against a server, with a throughput/latency report.
//!
//! Two arrival disciplines:
//!
//! - **closed loop** (default): each connection issues its next query the
//!   moment the previous reply lands;
//! - **open loop** (`rate` set): each connection issues on a fixed
//!   arrival schedule, sleeping until the next slot (a paced
//!   approximation — a single connection still awaits its reply).
//!
//! Everything a client sends is derived from `(seed, client, query
//! index)`, so two runs with the same seed issue byte-identical requests
//! and — because the server is deterministic too — receive byte-identical
//! results. [`LoadReport::digest`] folds every RESULT payload into an
//! order-independent checksum for exactly that comparison.
//!
//! With [`LoadConfig::pipeline`] > 1 each connection keeps a window of
//! queries outstanding and re-associates replies by request id with a
//! [`PipelineWindow`] — replies may complete in any order; the digest is
//! order-independent, so pipelined and stop-and-wait runs of the same
//! seed produce the same digest.

use std::collections::HashMap;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use csqp_core::Policy;
use csqp_cost::Objective;
use csqp_simkernel::rng::SimRng;
use csqp_workload::{WorkloadSpec, HISEL_SEL, MODERATE_SEL};

use crate::metrics::percentile_us;
use crate::proto::{
    read_frame, write_frame, ErrorCode, Frame, Hello, OptimizerMode, QueryRequest, ResultRecord,
    WireError,
};
use crate::server::{fnv1a, roundtrip};

/// What the load generator should do.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Concurrent connections.
    pub clients: usize,
    /// Stop issuing new queries after this long (ignored when
    /// `queries_per_client` is set).
    pub duration: Duration,
    /// Fixed per-connection query count (exact, deterministic runs).
    pub queries_per_client: Option<u64>,
    /// Master seed for the workload mix and all per-query seeds.
    pub seed: u64,
    /// Fixed policy, or `None` for a seeded DS/QS/HY mix.
    pub policy: Option<Policy>,
    /// Optimization objective for every request.
    pub objective: Objective,
    /// Per-request or precompiled planning.
    pub optimizer: OptimizerMode,
    /// Open-loop arrival rate per connection (queries/sec); `None` is
    /// closed-loop.
    pub rate: Option<f64>,
    /// On a saturation reject, honor the retry-after hint — with capped
    /// exponential backoff and seeded jitter — and resend the same query
    /// (otherwise count it and move on).
    pub retry_rejected: bool,
    /// Retry attempts per query before giving up on a saturated server.
    pub max_retries: u32,
    /// Upper bound on a single backoff sleep, in milliseconds; the
    /// exponential doubling saturates here.
    pub backoff_cap_ms: u64,
    /// Per-query deadline forwarded to the server, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Queries each connection keeps outstanding before reading replies
    /// (clamped to the window the server advertises in HELLO-ACK). 1 is
    /// stop-and-wait. With a window open, `retry_rejected` is ignored —
    /// rejects are counted, not resent.
    pub pipeline: usize,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: "127.0.0.1:7878".to_string(),
            clients: 4,
            duration: Duration::from_secs(2),
            queries_per_client: None,
            seed: 0xC59D,
            policy: None,
            objective: Objective::ResponseTime,
            optimizer: OptimizerMode::TwoPhase,
            rate: None,
            retry_rejected: false,
            max_retries: 8,
            backoff_cap_ms: 1_000,
            deadline_ms: None,
            pipeline: 1,
        }
    }
}

/// What a load run produced.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries answered with a RESULT frame.
    pub queries: u64,
    /// Saturation rejects observed (including retried ones).
    pub rejected: u64,
    /// Non-reject ERROR frames observed.
    pub errors: u64,
    /// Queries resent after a saturation reject (each resend counts).
    pub retries: u64,
    /// Deadline-exceeded ERROR frames observed.
    pub timed_out: u64,
    /// RESULT frames served under a degraded (QS-fallback) policy.
    pub degraded: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Client-observed median latency, ms.
    pub p50_ms: f64,
    /// Client-observed 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// Client-observed 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// RESULT frames per second of wall clock.
    pub throughput_qps: f64,
    /// Order-independent checksum over `(client, index, result payload)`
    /// triples: equal seeds ⇒ equal digests, independent of timing.
    pub digest: u64,
    /// RESULTs per policy, in `[DS, QS, HY]` order.
    pub per_policy: [u64; 3],
}

impl LoadReport {
    /// Render the human report printed by `csqp-load`.
    pub fn render(&self) -> String {
        format!(
            "queries   {}\nrejected  {}\nerrors    {}\nretries   {}\ntimed-out {}\ndegraded  {}\nelapsed   {:.2}s\nthroughput {:.1} q/s\nlatency   p50 {:.1} ms   p95 {:.1} ms   p99 {:.1} ms\nper-policy DS {}  QS {}  HY {}\ndigest    {:016x}",
            self.queries,
            self.rejected,
            self.errors,
            self.retries,
            self.timed_out,
            self.degraded,
            self.elapsed.as_secs_f64(),
            self.throughput_qps,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.per_policy[0],
            self.per_policy[1],
            self.per_policy[2],
            self.digest
        )
    }
}

/// Deterministic per-query seed: mixes the master seed, client index, and
/// query index through FNV so streams never collide. Masked into the
/// protocol's JSON-exact integer range so the seed survives the wire
/// byte-for-byte.
fn query_seed(master: u64, client: u64, index: u64) -> u64 {
    let mut bytes = [0u8; 24];
    bytes[0..8].copy_from_slice(&master.to_be_bytes());
    bytes[8..16].copy_from_slice(&client.to_be_bytes());
    bytes[16..24].copy_from_slice(&index.to_be_bytes());
    fnv1a(&bytes) & (crate::proto::MAX_SAFE_INT - 1)
}

/// The seeded workload mix: query shape, cache state, and policy for one
/// request. Pure in `(cfg.seed, client, index)`.
pub fn nth_request(cfg: &LoadConfig, client: u64, index: u64) -> QueryRequest {
    let seed = query_seed(cfg.seed, client, index);
    let mut rng = SimRng::seed_from_u64(seed);
    let n = rng.range(2, 6) as u32;
    // The paper's benchmark shapes: size-preserving moderate selectivity
    // or the HiSel variant (§5.2) — anything hotter overflows the
    // simulated disks with join spill.
    let spec = match rng.below(3) {
        0 => WorkloadSpec::Chain {
            n,
            selectivity: *rng.pick(&[MODERATE_SEL, HISEL_SEL]),
        },
        1 => WorkloadSpec::Star {
            n,
            selectivity: MODERATE_SEL,
        },
        _ => WorkloadSpec::Spj {
            n,
            join_sel: MODERATE_SEL,
            selection: 0.2,
            every_k: 2,
        },
    };
    // Declared client cache: each relation 0%, 25% or 50% resident.
    let cache = (0..spec.num_relations())
        .map(|_| *rng.pick(&[0.0, 0.25, 0.5]))
        .collect();
    let policy = cfg.policy.unwrap_or_else(|| {
        *rng.pick(&[
            Policy::DataShipping,
            Policy::QueryShipping,
            Policy::HybridShipping,
        ])
    });
    QueryRequest {
        id: index + 1,
        spec,
        cache,
        policy,
        objective: cfg.objective,
        optimizer: cfg.optimizer,
        seed,
        loads: vec![],
        deadline_ms: cfg.deadline_ms,
        keys: None,
    }
}

/// Backoff before retry `attempt` (0-based): the server's hint doubled
/// per attempt, capped, plus seeded jitter of up to one hint interval so
/// synchronized clients do not re-stampede the queue in lockstep.
fn retry_backoff(hint_ms: u64, attempt: u32, cap_ms: u64, rng: &mut SimRng) -> Duration {
    let base = hint_ms.max(1);
    let doubled = base.saturating_mul(1u64 << attempt.min(20));
    let jitter = rng.below((base + 1) as usize) as u64;
    Duration::from_millis(doubled.min(cap_ms.max(base)) + jitter)
}

/// One query a [`PipelineWindow`] is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssuedQuery {
    /// The load generator's query index (digest key).
    pub index: u64,
    /// The policy the request asked for.
    pub policy: Policy,
}

/// Client-side re-association for pipelined sessions: queries issued but
/// not yet answered, keyed by request id. Replies may complete in *any*
/// order — the window matches each back to the query it answers, which
/// is the property the pipelining proptest shuffles against.
#[derive(Debug)]
pub struct PipelineWindow {
    depth: usize,
    outstanding: HashMap<u64, (IssuedQuery, Instant)>,
}

impl PipelineWindow {
    /// An empty window admitting up to `depth` outstanding queries.
    pub fn new(depth: usize) -> PipelineWindow {
        PipelineWindow {
            depth: depth.max(1),
            outstanding: HashMap::new(),
        }
    }

    /// True when another query may be issued without closing the window.
    pub fn has_room(&self) -> bool {
        self.outstanding.len() < self.depth
    }

    /// Record an issued query. Returns `false` (and records nothing) on
    /// a duplicate id — ids must be unique within the window.
    pub fn issued(&mut self, id: u64, query: IssuedQuery, at: Instant) -> bool {
        if self.outstanding.contains_key(&id) {
            return false;
        }
        self.outstanding.insert(id, (query, at));
        true
    }

    /// Match a reply back to its query by id. `None` means the server
    /// answered an id this window never issued (a protocol violation).
    pub fn complete(&mut self, id: u64) -> Option<(IssuedQuery, Instant)> {
        self.outstanding.remove(&id)
    }

    /// Queries currently outstanding.
    pub fn len(&self) -> usize {
        self.outstanding.len()
    }

    /// True when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.outstanding.is_empty()
    }
}

struct ClientTally {
    queries: u64,
    rejected: u64,
    errors: u64,
    retries: u64,
    timed_out: u64,
    degraded: u64,
    latencies_us: Vec<u64>,
    digest: u64,
    per_policy: [u64; 3],
}

fn policy_slot(p: Policy) -> usize {
    match p {
        Policy::DataShipping => 0,
        Policy::QueryShipping => 1,
        Policy::HybridShipping => 2,
    }
}

/// Fold one result into the order-independent digest: hash the triple,
/// combine with a commutative wrapping add.
fn fold_digest(digest: u64, client: u64, index: u64, record: &ResultRecord) -> u64 {
    let payload = Frame::Result(record.clone()).encode();
    let mut keyed = Vec::with_capacity(16 + payload.len());
    keyed.extend_from_slice(&client.to_be_bytes());
    keyed.extend_from_slice(&index.to_be_bytes());
    keyed.extend_from_slice(&payload);
    digest.wrapping_add(fnv1a(&keyed))
}

fn run_client(cfg: &LoadConfig, client: u64, deadline: Instant) -> Result<ClientTally, WireError> {
    let mut stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true)?;
    let hello = roundtrip(
        &mut stream,
        &Frame::Hello(Hello {
            client: format!("csqp-load-{client}"),
        }),
    )?;
    let advertised = match hello {
        Frame::HelloAck(ack) => ack.pipeline_depth.max(1) as usize,
        _ => {
            return Err(WireError::Io(std::io::Error::other(
                "expected HELLO-ACK to open the session",
            )))
        }
    };
    let mut tally = ClientTally {
        queries: 0,
        rejected: 0,
        errors: 0,
        retries: 0,
        timed_out: 0,
        degraded: 0,
        latencies_us: Vec::new(),
        digest: 0,
        per_policy: [0; 3],
    };
    let window_depth = cfg.pipeline.clamp(1, advertised);
    if window_depth > 1 {
        run_client_pipelined(cfg, client, deadline, &mut stream, window_depth, &mut tally)?;
        let _ = roundtrip(&mut stream, &Frame::Bye)
            .map(|_| ())
            .or::<()>(Ok(()));
        return Ok(tally);
    }
    let start = Instant::now();
    let interval = cfg.rate.map(|r| Duration::from_secs_f64(1.0 / r.max(1e-9)));
    let mut index = 0u64;
    loop {
        match cfg.queries_per_client {
            Some(count) => {
                if index >= count {
                    break;
                }
            }
            None => {
                if Instant::now() >= deadline {
                    break;
                }
            }
        }
        // Open loop: wait for this query's arrival slot.
        if let Some(step) = interval {
            let slot = start + step.mul_f64(index as f64);
            let now = Instant::now();
            if slot > now {
                std::thread::sleep(slot - now);
            }
        }
        let req = nth_request(cfg, client, index);
        let policy = req.policy;
        let issued = Instant::now();
        let mut reply = roundtrip(&mut stream, &Frame::Query(req.clone()))?;
        // Honor retry-after on saturation if asked to: back off by the
        // server's hint, doubling per attempt up to the configured cap,
        // with seeded jitter so the retry schedule stays deterministic
        // per (seed, client, index) yet desynchronized across clients.
        if cfg.retry_rejected {
            let mut retry_rng = SimRng::seed_from_u64(req.seed ^ 0x52_45_54_52_59); // "RETRY"
            let mut attempt = 0u32;
            while let Frame::Error(e) = &reply {
                if e.code != ErrorCode::Saturated || attempt >= cfg.max_retries {
                    break;
                }
                tally.rejected += 1;
                let hint = e.retry_after_ms.unwrap_or(10);
                std::thread::sleep(retry_backoff(
                    hint,
                    attempt,
                    cfg.backoff_cap_ms,
                    &mut retry_rng,
                ));
                attempt += 1;
                tally.retries += 1;
                reply = roundtrip(&mut stream, &Frame::Query(req.clone()))?;
            }
        }
        match reply {
            Frame::Result(record) => {
                let lat = issued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                tally.queries += 1;
                tally.per_policy[policy_slot(policy)] += 1;
                tally.latencies_us.push(lat);
                if record.degraded_from.is_some() {
                    tally.degraded += 1;
                }
                tally.digest = fold_digest(tally.digest, client, index, &record);
            }
            Frame::Error(e) if e.code == ErrorCode::Saturated => tally.rejected += 1,
            Frame::Error(e) if e.code == ErrorCode::DeadlineExceeded => tally.timed_out += 1,
            Frame::Error(_) => tally.errors += 1,
            other => {
                return Err(WireError::Io(std::io::Error::other(format!(
                    "unexpected reply frame {:?}",
                    other.kind()
                ))));
            }
        }
        index += 1;
    }
    let _ = roundtrip(&mut stream, &Frame::Bye)
        .map(|_| ())
        .or::<()>(Ok(()));
    Ok(tally)
}

/// Block until the next frame arrives (between-frame read timeouts mean
/// the server is still computing).
fn read_next(stream: &mut TcpStream) -> Result<Frame, WireError> {
    loop {
        match read_frame(stream) {
            Err(WireError::TimedOut) => continue,
            Ok(Some(f)) => return Ok(f),
            Ok(None) => {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )))
            }
            Err(e) => return Err(e),
        }
    }
}

/// The pipelined session loop: keep up to `depth` queries outstanding,
/// re-associate each reply by id through a [`PipelineWindow`], and drain
/// the window before returning. Saturation rejects are counted, never
/// retried (a retry would reorder the deterministic issue schedule).
fn run_client_pipelined(
    cfg: &LoadConfig,
    client: u64,
    deadline: Instant,
    stream: &mut TcpStream,
    depth: usize,
    tally: &mut ClientTally,
) -> Result<(), WireError> {
    let start = Instant::now();
    let interval = cfg.rate.map(|r| Duration::from_secs_f64(1.0 / r.max(1e-9)));
    let mut window = PipelineWindow::new(depth);
    let mut index = 0u64;
    let done_issuing = |index: u64| match cfg.queries_per_client {
        Some(count) => index >= count,
        None => Instant::now() >= deadline,
    };
    loop {
        while window.has_room() && !done_issuing(index) {
            if let Some(step) = interval {
                let slot = start + step.mul_f64(index as f64);
                let now = Instant::now();
                if slot > now {
                    std::thread::sleep(slot - now);
                }
            }
            let req = nth_request(cfg, client, index);
            let issued = IssuedQuery {
                index,
                policy: req.policy,
            };
            write_frame(stream, &Frame::Query(req.clone()))?;
            if !window.issued(req.id, issued, Instant::now()) {
                return Err(WireError::Io(std::io::Error::other(format!(
                    "duplicate request id {} in the pipeline window",
                    req.id
                ))));
            }
            index += 1;
        }
        if window.is_empty() {
            if done_issuing(index) {
                return Ok(());
            }
            continue;
        }
        let reply = read_next(stream)?;
        let id = match &reply {
            Frame::Result(record) => record.id,
            Frame::Error(e) => e.id,
            other => {
                return Err(WireError::Io(std::io::Error::other(format!(
                    "unexpected reply frame {:?}",
                    other.kind()
                ))));
            }
        };
        let Some((query, at)) = window.complete(id) else {
            return Err(WireError::Io(std::io::Error::other(format!(
                "reply for id {id} which is not outstanding"
            ))));
        };
        match reply {
            Frame::Result(record) => {
                let lat = at.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                tally.queries += 1;
                tally.per_policy[policy_slot(query.policy)] += 1;
                tally.latencies_us.push(lat);
                if record.degraded_from.is_some() {
                    tally.degraded += 1;
                }
                tally.digest = fold_digest(tally.digest, client, query.index, &record);
            }
            Frame::Error(e) if e.code == ErrorCode::Saturated => tally.rejected += 1,
            Frame::Error(e) if e.code == ErrorCode::DeadlineExceeded => tally.timed_out += 1,
            Frame::Error(_) => tally.errors += 1,
            _ => unreachable!("non-result/error frames rejected above"),
        }
    }
}

/// Run the load: spawn `clients` connection threads, drive the seeded
/// mix, and aggregate the report. Connection-level failures surface as
/// `Err`; protocol-level errors are counted in the report.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, WireError> {
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let mut handles = Vec::with_capacity(cfg.clients);
    for client in 0..cfg.clients.max(1) as u64 {
        let cfg = cfg.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("csqp-load-{client}"))
                .spawn(move || run_client(&cfg, client, deadline))
                .map_err(WireError::Io)?,
        );
    }
    let mut queries = 0u64;
    let mut rejected = 0u64;
    let mut errors = 0u64;
    let mut retries = 0u64;
    let mut timed_out = 0u64;
    let mut degraded = 0u64;
    let mut digest = 0u64;
    let mut per_policy = [0u64; 3];
    let mut latencies = Vec::new();
    for h in handles {
        let tally = h
            .join()
            .map_err(|_| WireError::Io(std::io::Error::other("load client panicked")))??;
        queries += tally.queries;
        rejected += tally.rejected;
        errors += tally.errors;
        retries += tally.retries;
        timed_out += tally.timed_out;
        degraded += tally.degraded;
        digest = digest.wrapping_add(tally.digest);
        for (total, n) in per_policy.iter_mut().zip(tally.per_policy) {
            *total += n;
        }
        latencies.extend(tally.latencies_us);
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    Ok(LoadReport {
        queries,
        rejected,
        errors,
        retries,
        timed_out,
        degraded,
        elapsed,
        p50_ms: percentile_us(&latencies, 0.50) / 1000.0,
        p95_ms: percentile_us(&latencies, 0.95) / 1000.0,
        p99_ms: percentile_us(&latencies, 0.99) / 1000.0,
        throughput_qps: if elapsed.as_secs_f64() > 0.0 {
            queries as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        digest,
        per_policy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_mix_is_deterministic_and_valid() {
        let cfg = LoadConfig::default();
        for client in 0..4 {
            for index in 0..16 {
                let a = nth_request(&cfg, client, index);
                let b = nth_request(&cfg, client, index);
                assert_eq!(a, b, "pure in (seed, client, index)");
                a.spec.validate().expect("generated specs are valid");
                assert_eq!(a.cache.len(), a.spec.num_relations() as usize);
            }
        }
    }

    #[test]
    fn request_mix_varies_across_clients_and_indices() {
        let cfg = LoadConfig::default();
        let a = nth_request(&cfg, 0, 0);
        let b = nth_request(&cfg, 1, 0);
        let c = nth_request(&cfg, 0, 1);
        assert!(a.seed != b.seed && a.seed != c.seed && b.seed != c.seed);
    }

    #[test]
    fn backoff_doubles_caps_and_stays_seeded() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for attempt in 0..12 {
            let x = retry_backoff(50, attempt, 1_000, &mut a);
            let y = retry_backoff(50, attempt, 1_000, &mut b);
            assert_eq!(x, y, "same seed, same schedule");
            // Doubled hint capped at 1 s, plus at most one hint of jitter.
            let doubled = 50u64.saturating_mul(1 << attempt.min(20)).min(1_000);
            assert!(x >= Duration::from_millis(doubled));
            assert!(x <= Duration::from_millis(doubled + 50));
        }
        // A zero hint still sleeps a little and never divides by zero.
        let z = retry_backoff(0, 0, 1_000, &mut a);
        assert!(z >= Duration::from_millis(1) && z <= Duration::from_millis(2));
    }

    #[test]
    fn pipeline_window_reassociates_and_bounds() {
        let mut w = PipelineWindow::new(2);
        assert!(w.is_empty() && w.has_room());
        let now = Instant::now();
        let q = |index| IssuedQuery {
            index,
            policy: Policy::QueryShipping,
        };
        assert!(w.issued(1, q(0), now));
        assert!(w.issued(2, q(1), now));
        assert!(!w.has_room(), "window of 2 is full");
        assert!(!w.issued(1, q(9), now), "duplicate ids are refused");
        // Out-of-order completion re-associates by id.
        assert_eq!(w.complete(2).map(|(p, _)| p.index), Some(1));
        assert!(w.has_room());
        assert_eq!(w.complete(2), None, "already answered");
        assert_eq!(w.complete(7), None, "never issued");
        assert_eq!(w.complete(1).map(|(p, _)| p.index), Some(0));
        assert!(w.is_empty());
        assert!(PipelineWindow::new(0).has_room(), "depth clamps to 1");
    }

    #[test]
    fn fixed_policy_overrides_the_mix() {
        let cfg = LoadConfig {
            policy: Some(Policy::QueryShipping),
            ..LoadConfig::default()
        };
        for index in 0..8 {
            assert_eq!(nth_request(&cfg, 0, index).policy, Policy::QueryShipping);
        }
    }
}
