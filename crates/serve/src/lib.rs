//! The serving layer: a client-server deployment of the reproduction.
//!
//! The paper studies client-server query processing by simulation; this
//! crate closes the loop by actually *serving* those simulations over
//! TCP. A [`server::Server`] hosts the catalog, the two-phase and 2-step
//! optimizers, and the simulated execution engine; clients connect with
//! the length-prefixed frame protocol of [`proto`], declare a workload
//! spec plus their cache state, and get back the same figure-style
//! records the experiment harness produces — because both call the same
//! [`csqp_experiments::runner`] entry points.
//!
//! Module map:
//!
//! - [`proto`] — frames, the versioned header, typed [`proto::WireError`];
//! - [`server`] — accept loop, bounded admission queue, worker pool, and
//!   the deterministic [`server::QueryService`];
//! - `engine` (private) — the event-driven session engine: a fixed set
//!   of poll-based shard threads multiplexing every connection and
//!   driving each session as an explicit state machine, with per-session
//!   query pipelining (DESIGN.md §10);
//! - [`metrics`] — thread-safe counters behind the STATS frame;
//! - [`load`] — the `csqp-load` client: concurrent seeded load with a
//!   latency-percentile report;
//! - [`chaos`] — the seeded fault-injection soak harness behind
//!   `csqp-load --chaos`, asserting the no-panic / no-leak /
//!   conservation / same-seed-same-digest invariants.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod chaos;
mod engine;
pub mod load;
pub mod metrics;
pub mod proto;
pub mod server;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use load::{run_load, IssuedQuery, LoadConfig, LoadReport, PipelineWindow};
pub use metrics::ServerMetrics;
pub use proto::{Frame, OptimizerMode, QueryRequest, ResultRecord, WireError};
pub use server::{CatalogVerdict, QueryService, Server, ServerConfig, ServerHandle};
