//! The event-driven session engine (DESIGN.md §10).
//!
//! A fixed set of *shard* threads multiplexes every connected socket
//! with the `poll(2)` wrapper in [`csqp_net::poll`]; the accept thread
//! routes each new connection to a shard by file descriptor. One shard
//! owns its sessions exclusively — no locks on the session path — and
//! drives each as an explicit state machine:
//!
//! ```text
//!              HELLO            QUERY submitted
//!  Handshake ───────► Idle ◄──────────────────┐
//!                      │ bytes arrive         │ last reply written
//!                      ▼                      │
//!                ReadingFrame ──► AwaitingResult ──► Writing
//!                      ▲   complete frame        │
//!                      └─────────────────────────┘
//!                            more pipelined frames buffered
//! ```
//!
//! Pipelining: a session may have up to
//! [`crate::ServerConfig::pipeline_depth`] queries outstanding at once.
//! Each admitted query carries a per-session *serial*; workers post the
//! outcome to the owning shard's completion queue tagged with `(session,
//! serial)` and wake its poller, and the shard writes replies in
//! *completion order* — the client re-associates them by request id. A
//! QUERY past the window is rejected `saturated` without consuming a
//! queue slot.
//!
//! Teardown keeps the accounting conservation invariant: a vanished
//! peer cancels every in-flight guard (workers then record `aborted` or
//! `timed-out` — exactly one terminal bucket per admitted query), and
//! replies for dead sessions are dropped *after* the worker has
//! recorded them.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use csqp_core::cancel::CancelToken;
use csqp_net::poll::{poll_fds, PollFd, WakeHandle, Waker};

use crate::proto::{
    DegradeReason, ErrorCode, ErrorFrame, Frame, FrameReader, HelloAck, ReadStep, ResultRecord,
};
use crate::server::{
    mangle_reply, Job, QueryService, ReplySink, RETRY_AFTER_MS, SHUTDOWN_RETRY_AFTER_MS,
};

/// A finished query's outcome, posted by a worker to the shard that owns
/// the session it arrived on.
pub(crate) struct Completion {
    /// Shard-local session id the query arrived on.
    pub(crate) session: u64,
    /// The session's serial for this query (see [`Session::inflight`]).
    pub(crate) serial: u64,
    /// What the worker produced.
    pub(crate) outcome: Result<ResultRecord, ErrorFrame>,
}

/// The accept thread's handle to one shard: a registration queue plus
/// the waker that interrupts the shard's poll sleep.
#[derive(Clone)]
pub(crate) struct Registrar {
    tx: mpsc::Sender<TcpStream>,
    wake: WakeHandle,
}

impl Registrar {
    /// Hand a fresh connection to the shard.
    fn register(&self, stream: TcpStream) {
        if self.tx.send(stream).is_ok() {
            self.wake.wake();
        }
    }
}

/// Owning handle to a running shard thread.
pub(crate) struct ShardHandle {
    reg: mpsc::Sender<TcpStream>,
    wake: WakeHandle,
    thread: std::thread::JoinHandle<()>,
}

impl ShardHandle {
    /// A registration handle for the accept thread.
    pub(crate) fn registrar(&self) -> Registrar {
        Registrar {
            tx: self.reg.clone(),
            wake: self.wake.clone(),
        }
    }

    /// Wake the shard (it observes the shutdown flag) and join it.
    pub(crate) fn join(self) {
        self.wake.wake();
        let _ = self.thread.join();
    }
}

/// Route accepted connections to shards by file descriptor. Runs on the
/// accept thread until the shutdown flag is raised (the handle unblocks
/// it with a throwaway connection).
pub(crate) fn accept_into_shards(
    listener: &TcpListener,
    registrars: &[Registrar],
    shutdown: &AtomicBool,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        registrars[shard_for_fd(stream.as_raw_fd(), registrars.len())].register(stream);
    }
}

/// The shard a descriptor lands on: a plain modulus. Descriptors are
/// dense small integers, so consecutive connections spread evenly.
fn shard_for_fd(fd: i32, shards: usize) -> usize {
    (fd.max(0) as usize) % shards.max(1)
}

/// Explicit session states (the machine in the module diagram). The
/// shard recomputes the state after every pump; poll interest and
/// teardown decisions derive from the same fields, so the stored state
/// is the machine's observable face (tests and debug assertions check
/// it stays consistent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionState {
    /// Connected, no HELLO seen yet.
    Handshake,
    /// Nothing buffered, nothing in flight.
    Idle,
    /// A frame is partially buffered mid-read.
    ReadingFrame,
    /// At least one admitted query awaits its worker.
    AwaitingResult,
    /// Reply bytes are queued for the socket.
    Writing,
}

/// One admitted query the session is waiting on.
struct InflightQuery {
    /// Cancelled on disconnect; carries the request deadline.
    guard: Arc<CancelToken>,
    /// The request's seed — the reply-fault key (see
    /// [`crate::server::ServerConfig::reply_faults`]).
    seed: u64,
}

/// One connection, owned by exactly one shard.
struct Session {
    stream: TcpStream,
    reader: FrameReader,
    /// Bytes queued for the socket, drained front-first by the write pump.
    out: Vec<u8>,
    /// Admitted-but-unanswered queries, keyed by serial.
    inflight: HashMap<u64, InflightQuery>,
    next_serial: u64,
    handshaken: bool,
    /// Stop reading (BYE seen, stream poisoned, or peer half-closed).
    read_closed: bool,
    /// Close once in-flight queries drain and `out` is flushed.
    draining: bool,
    /// Framing is broken (truncated reply sent or garbage received):
    /// drop further completions, close once `out` is flushed.
    poisoned: bool,
    state: SessionState,
}

impl Session {
    fn new(stream: TcpStream) -> Session {
        Session {
            stream,
            reader: FrameReader::new(),
            out: Vec::new(),
            inflight: HashMap::new(),
            next_serial: 0,
            handshaken: false,
            read_closed: false,
            draining: false,
            poisoned: false,
            state: SessionState::Handshake,
        }
    }

    /// The state the machine is in right now, recomputed from the
    /// session's fields. Priority order mirrors what the session is
    /// *blocked on*: the handshake, then outstanding queries, then
    /// pending output, then a partial frame.
    fn current_state(&self) -> SessionState {
        if !self.handshaken {
            SessionState::Handshake
        } else if !self.inflight.is_empty() {
            SessionState::AwaitingResult
        } else if !self.out.is_empty() {
            SessionState::Writing
        } else if self.reader.mid_frame() {
            SessionState::ReadingFrame
        } else {
            SessionState::Idle
        }
    }

    /// Queue a frame for the socket, unmodified.
    fn push_clean(&mut self, frame: &Frame) {
        self.out.extend_from_slice(&frame.encode());
    }

    /// Mark the stream unusable and cancel everything outstanding;
    /// workers record the terminal buckets.
    fn poison(&mut self) {
        self.poisoned = true;
        self.read_closed = true;
        self.draining = true;
        for q in self.inflight.values() {
            q.guard.cancel();
        }
    }

    /// True when the shard should drop the session: a poisoned stream
    /// with its best-effort error flushed, or a drained BYE.
    fn finished(&self) -> bool {
        if self.poisoned {
            self.out.is_empty()
        } else {
            self.draining && self.inflight.is_empty() && self.out.is_empty()
        }
    }
}

/// One event-loop thread: owns a disjoint set of sessions and the only
/// poll set that watches them.
pub(crate) struct Shard {
    service: Arc<QueryService>,
    submit: SyncSender<Job>,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    reg_rx: Receiver<TcpStream>,
    done_rx: Receiver<Completion>,
    done_tx: mpsc::Sender<Completion>,
    sessions: HashMap<u64, Session>,
    next_session: u64,
}

impl Shard {
    /// Spawn one shard thread.
    pub(crate) fn spawn(
        index: usize,
        service: Arc<QueryService>,
        submit: SyncSender<Job>,
        shutdown: Arc<AtomicBool>,
    ) -> io::Result<ShardHandle> {
        let waker = Waker::new()?;
        let wake = waker.handle();
        let (reg_tx, reg_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel();
        let mut shard = Shard {
            service,
            submit,
            shutdown,
            waker,
            reg_rx,
            done_rx,
            done_tx,
            sessions: HashMap::new(),
            next_session: 0,
        };
        let thread = std::thread::Builder::new()
            .name(format!("csqp-shard-{index}"))
            .spawn(move || shard.run())?;
        Ok(ShardHandle {
            reg: reg_tx,
            wake,
            thread,
        })
    }

    fn run(&mut self) {
        let timeout = self.service.config().read_timeout;
        let mut fds: Vec<PollFd> = Vec::new();
        let mut ids: Vec<u64> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                self.close_all();
                return;
            }
            fds.clear();
            ids.clear();
            fds.push(PollFd::new(self.waker.fd(), true, false));
            for (&id, s) in &self.sessions {
                debug_assert_eq!(s.state, s.current_state(), "state retuned after pumps");
                fds.push(PollFd::new(
                    s.stream.as_raw_fd(),
                    !s.read_closed,
                    !s.out.is_empty(),
                ));
                ids.push(id);
            }
            if poll_fds(&mut fds, timeout).is_err() {
                // EINTR is retried inside poll_fds; anything else here
                // is a broken poll set — re-check shutdown and rebuild.
                continue;
            }
            self.waker.drain();
            self.adopt_new_sessions();
            self.drain_completions();
            for (i, fd) in fds.iter().enumerate().skip(1) {
                let id = ids[i - 1];
                if fd.error() {
                    self.teardown(id);
                } else if fd.readable() {
                    self.pump_read(id);
                }
            }
            // Opportunistic write for every session with queued bytes —
            // replies appended this iteration should not wait a poll
            // cycle; a non-writable socket answers WouldBlock.
            let pending: Vec<u64> = self
                .sessions
                .iter()
                .filter(|(_, s)| !s.out.is_empty())
                .map(|(&id, _)| id)
                .collect();
            for id in pending {
                self.pump_write(id);
            }
            self.sweep();
        }
    }

    /// Pull freshly accepted connections off the registration queue.
    fn adopt_new_sessions(&mut self) {
        while let Ok(stream) = self.reg_rx.try_recv() {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let id = self.next_session;
            self.next_session += 1;
            self.service.metrics().session_opened();
            self.sessions.insert(id, Session::new(stream));
        }
    }

    /// Drain worker completions: re-associate each by `(session,
    /// serial)`, apply the reply-fault plan, and queue the reply bytes.
    fn drain_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            let Some(s) = self.sessions.get_mut(&done.session) else {
                // Session torn down while the query ran; the worker
                // already recorded the terminal bucket.
                continue;
            };
            if s.poisoned {
                continue;
            }
            let Some(q) = s.inflight.remove(&done.serial) else {
                continue;
            };
            let frame = match done.outcome {
                Ok(record) => Frame::Result(record),
                Err(err) => Frame::Error(err),
            };
            let wire = mangle_reply(self.service.config(), q.seed, &frame);
            let closes = wire.closes_session();
            s.out.extend_from_slice(wire.bytes());
            if closes {
                s.poison();
            } else {
                s.state = s.current_state();
            }
        }
    }

    /// Read until the socket runs dry, processing every complete frame
    /// (this is what makes pipelining work: back-to-back frames that
    /// arrived in one read are all admitted before the next poll).
    fn pump_read(&mut self, id: u64) {
        loop {
            let Some(s) = self.sessions.get_mut(&id) else {
                return;
            };
            if s.read_closed {
                return;
            }
            match s.reader.step(&mut s.stream) {
                Ok(ReadStep::Frame(frame)) => self.process_frame(id, frame),
                Ok(ReadStep::Pending) => {
                    s.state = s.current_state();
                    return;
                }
                Ok(ReadStep::Closed) => {
                    self.teardown(id);
                    return;
                }
                Err(e) => {
                    // Protocol garbage: best-effort typed error, then
                    // the stream can no longer be trusted.
                    s.push_clean(&Frame::Error(ErrorFrame {
                        id: 0,
                        code: ErrorCode::BadFrame,
                        message: e.to_string(),
                        retry_after_ms: None,
                    }));
                    s.poison();
                    s.state = s.current_state();
                    return;
                }
            }
        }
    }

    /// Handle one decoded client frame on session `id`.
    fn process_frame(&mut self, id: u64, frame: Frame) {
        let config = self.service.config().clone();
        let Some(s) = self.sessions.get_mut(&id) else {
            return;
        };
        match frame {
            Frame::Hello(_) => {
                s.handshaken = true;
                s.push_clean(&Frame::HelloAck(HelloAck {
                    server: config.name.clone(),
                    num_servers: config.num_servers,
                    pipeline_depth: config.effective_pipeline_depth() as u32,
                }));
            }
            Frame::Query(req) => {
                self.service.metrics().record_submitted();
                let id_in_req = req.id;
                let seed = req.seed;
                if s.inflight.len() >= config.effective_pipeline_depth() {
                    // Window violation: reject without consuming a
                    // queue slot or an in-flight count.
                    self.service.metrics().record_reject();
                    s.push_clean(&Frame::Error(ErrorFrame {
                        id: id_in_req,
                        code: ErrorCode::Saturated,
                        message: format!(
                            "pipeline window full ({} outstanding)",
                            config.effective_pipeline_depth()
                        ),
                        retry_after_ms: Some(RETRY_AFTER_MS),
                    }));
                    s.state = s.current_state();
                    return;
                }
                let deadline = req
                    .deadline_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms));
                let guard = Arc::new(CancelToken::new(deadline));
                let degrade =
                    if self.service.begin_inflight() >= config.effective_high_water() as u64 {
                        Some(DegradeReason::Saturated)
                    } else {
                        None
                    };
                let serial = s.next_serial;
                s.next_serial += 1;
                let job = Job {
                    req,
                    reply: ReplySink::Shard {
                        tx: self.done_tx.clone(),
                        session: id,
                        serial,
                        waker: self.waker.handle(),
                    },
                    enqueued: Instant::now(),
                    guard: Arc::clone(&guard),
                    degrade,
                };
                match self.submit.try_send(job) {
                    Ok(()) => {
                        s.inflight.insert(serial, InflightQuery { guard, seed });
                    }
                    Err(TrySendError::Full(_)) => {
                        self.service.end_inflight();
                        self.service.metrics().record_reject();
                        s.push_clean(&Frame::Error(ErrorFrame {
                            id: id_in_req,
                            code: ErrorCode::Saturated,
                            message: "admission queue full".to_string(),
                            retry_after_ms: Some(RETRY_AFTER_MS),
                        }));
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        self.service.end_inflight();
                        self.service.metrics().record_aborted();
                        s.push_clean(&Frame::Error(ErrorFrame {
                            id: id_in_req,
                            code: ErrorCode::ShuttingDown,
                            message: "server shutting down".to_string(),
                            retry_after_ms: Some(SHUTDOWN_RETRY_AFTER_MS),
                        }));
                        s.read_closed = true;
                        s.draining = true;
                    }
                }
            }
            Frame::StatsRequest => {
                s.push_clean(&Frame::Stats(self.service.metrics().snapshot()));
            }
            Frame::Bye => {
                // Stop reading; pipelined replies still owed are
                // delivered before the session closes.
                s.read_closed = true;
                s.draining = true;
            }
            // Server-to-client frames arriving at the server are a
            // client bug, not stream corruption: report and continue.
            Frame::HelloAck(_) | Frame::Result(_) | Frame::Error(_) | Frame::Stats(_) => {
                s.push_clean(&Frame::Error(ErrorFrame {
                    id: 0,
                    code: ErrorCode::BadRequest,
                    message: "unexpected server-to-client frame".to_string(),
                    retry_after_ms: None,
                }));
            }
        }
        s.state = s.current_state();
    }

    /// Write queued bytes until the socket would block or `out` drains.
    fn pump_write(&mut self, id: u64) {
        let Some(s) = self.sessions.get_mut(&id) else {
            return;
        };
        let mut wrote = 0;
        let dead = loop {
            if wrote == s.out.len() {
                break false;
            }
            match s.stream.write(&s.out[wrote..]) {
                Ok(0) => break true,
                Ok(n) => wrote += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                    ) =>
                {
                    break false
                }
                Err(_) => break true,
            }
        };
        s.out.drain(..wrote);
        if dead {
            self.teardown(id);
        } else if let Some(s) = self.sessions.get_mut(&id) {
            s.state = s.current_state();
        }
    }

    /// Drop a session whose peer vanished: cancel every in-flight guard
    /// so workers abandon its queries at their next probe.
    fn teardown(&mut self, id: u64) {
        if let Some(s) = self.sessions.remove(&id) {
            for q in s.inflight.values() {
                q.guard.cancel();
            }
            self.service.metrics().session_closed();
        }
    }

    /// Remove sessions that finished gracefully (BYE drained, or a
    /// poisoned stream with its error flushed).
    fn sweep(&mut self) {
        let done: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.finished())
            .map(|(&id, _)| id)
            .collect();
        for id in done {
            if self.sessions.remove(&id).is_some() {
                self.service.metrics().session_closed();
            }
        }
    }

    /// Shutdown: best-effort ShuttingDown error to every session, one
    /// write pass, cancel everything outstanding, release the gauge.
    fn close_all(&mut self) {
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        for &id in &ids {
            if let Some(s) = self.sessions.get_mut(&id) {
                s.push_clean(&Frame::Error(ErrorFrame {
                    id: 0,
                    code: ErrorCode::ShuttingDown,
                    message: "server shutting down".to_string(),
                    retry_after_ms: Some(SHUTDOWN_RETRY_AFTER_MS),
                }));
            }
            self.pump_write(id);
        }
        for id in ids {
            self.teardown(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn loopback_session() -> (Session, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        (Session::new(server), client)
    }

    #[test]
    fn state_machine_transitions_in_priority_order() {
        let (mut s, _client) = loopback_session();
        assert_eq!(s.current_state(), SessionState::Handshake);
        s.handshaken = true;
        assert_eq!(s.current_state(), SessionState::Idle);
        s.out.extend_from_slice(b"reply bytes");
        assert_eq!(s.current_state(), SessionState::Writing);
        s.inflight.insert(
            0,
            InflightQuery {
                guard: Arc::new(CancelToken::inert()),
                seed: 1,
            },
        );
        // An outstanding query outranks pending output.
        assert_eq!(s.current_state(), SessionState::AwaitingResult);
        s.inflight.clear();
        s.out.clear();
        assert_eq!(s.current_state(), SessionState::Idle);
    }

    #[test]
    fn reading_frame_state_reflects_a_partial_frame() {
        use std::io::Write as _;
        let (mut s, mut client) = loopback_session();
        s.handshaken = true;
        // First 5 bytes of a real frame: mid-frame after one step.
        let bytes = Frame::Bye.encode();
        client.write_all(&bytes[..5]).expect("partial write");
        loop {
            match s.reader.step(&mut s.stream) {
                Ok(ReadStep::Pending) => {
                    if s.reader.mid_frame() {
                        break;
                    }
                }
                other => panic!("unexpected step: {other:?}"),
            }
        }
        assert_eq!(s.current_state(), SessionState::ReadingFrame);
    }

    #[test]
    fn poison_cancels_inflight_and_finishes_after_flush() {
        let (mut s, _client) = loopback_session();
        let guard = Arc::new(CancelToken::inert());
        s.inflight.insert(
            7,
            InflightQuery {
                guard: Arc::clone(&guard),
                seed: 9,
            },
        );
        s.out.extend_from_slice(b"partial reply");
        s.poison();
        assert!(guard.is_cancelled(), "teardown cancels workers");
        assert!(!s.finished(), "error bytes still owed");
        s.out.clear();
        assert!(s.finished(), "poisoned + flushed = removable");
    }

    #[test]
    fn draining_session_waits_for_inflight_and_output() {
        let (mut s, _client) = loopback_session();
        s.handshaken = true;
        s.draining = true;
        s.inflight.insert(
            0,
            InflightQuery {
                guard: Arc::new(CancelToken::inert()),
                seed: 1,
            },
        );
        assert!(!s.finished(), "a pipelined reply is still owed");
        s.inflight.clear();
        s.out.extend_from_slice(b"the reply");
        assert!(!s.finished(), "reply not flushed yet");
        s.out.clear();
        assert!(s.finished());
    }

    #[test]
    fn fd_sharding_spreads_and_never_panics() {
        assert_eq!(shard_for_fd(10, 4), 2);
        assert_eq!(shard_for_fd(11, 4), 3);
        assert_eq!(shard_for_fd(0, 1), 0);
        assert_eq!(shard_for_fd(-1, 4), 0, "defensive on invalid fds");
        assert_eq!(shard_for_fd(7, 0), 0, "zero shards clamps");
    }
}
