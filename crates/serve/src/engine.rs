//! The event-driven session engine (DESIGN.md §10).
//!
//! A fixed set of *shard* threads multiplexes every connected socket
//! with a [`csqp_net::poll::Reactor`] — `epoll(7)` by default on Linux,
//! `poll(2)` as the portable fallback, selected by
//! [`crate::ServerConfig::reactor`]; the accept thread routes each new
//! connection to a shard by file descriptor. One shard owns its sessions
//! exclusively — no locks on the session path — and drives each as an
//! explicit state machine:
//!
//! ```text
//!              HELLO            QUERY submitted
//!  Handshake ───────► Idle ◄──────────────────┐
//!                      │ bytes arrive         │ last reply written
//!                      ▼                      │
//!                ReadingFrame ──► AwaitingResult ──► Writing
//!                      ▲   complete frame        │
//!                      └─────────────────────────┘
//!                            more pipelined frames buffered
//! ```
//!
//! The machine itself is *not defined here*: every per-session decision
//! routes through the pure transition function
//! [`csqp_verify::protocol::step`] — the shard maps socket readiness,
//! decoded frames, worker completions, and the shutdown sweep onto
//! [`protocol::Event`]s, applies `step`, and interprets the returned
//! [`protocol::Action`]s against the real socket, guards, and admission
//! queue. The model checker in `csqp-verify` explores the same function
//! exhaustively (`csqp-check --protocol`), so the machine being checked
//! is the machine being served.
//!
//! Pipelining: a session may have up to
//! [`crate::ServerConfig::pipeline_depth`] queries outstanding at once
//! (capped at [`protocol::MAX_SERIALS`] so the machine stays finite).
//! Each admitted query occupies a per-session *slot*; workers post the
//! outcome to the owning shard's completion queue tagged with `(session,
//! slot)` and wake its poller, and the shard writes replies in
//! *completion order* — the client re-associates them by request id. A
//! QUERY past the window is rejected `saturated` without consuming a
//! queue slot.
//!
//! Teardown keeps the accounting conservation invariant: a vanished
//! peer cancels every in-flight guard (workers then record `aborted` or
//! `timed-out` — exactly one terminal bucket per admitted query), and
//! replies for dead sessions are dropped *after* the worker has
//! recorded them.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use csqp_core::cancel::CancelToken;
use csqp_net::poll::{new_reactor, Interest, Reactor, ReactorStats, ReadyEvent, WakeHandle, Waker};
use csqp_verify::protocol::{self, Action, ErrorClass, Event, SessionModel};
use csqp_verify::system::{completion_disposition, submit_outcome, CompletionDisposition};

use crate::proto::{
    DegradeReason, ErrorCode, ErrorFrame, Frame, FrameReader, HelloAck, QueryRequest, ReadStep,
    ResultRecord,
};
use crate::server::{
    mangle_reply, Job, QueryService, ReplySink, RETRY_AFTER_MS, SHUTDOWN_RETRY_AFTER_MS,
};

/// A finished query's outcome, posted by a worker to the shard that owns
/// the session it arrived on.
pub(crate) struct Completion {
    /// Shard-local session id the query arrived on.
    pub(crate) session: u64,
    /// The session's slot for this query (see [`Session::inflight`]).
    pub(crate) serial: u64,
    /// What the worker produced.
    pub(crate) outcome: Result<ResultRecord, ErrorFrame>,
}

/// The accept thread's handle to one shard: a registration queue plus
/// the waker that interrupts the shard's poll sleep.
#[derive(Clone)]
pub(crate) struct Registrar {
    tx: mpsc::Sender<TcpStream>,
    wake: WakeHandle,
}

impl Registrar {
    /// Hand a fresh connection to the shard.
    fn register(&self, stream: TcpStream) {
        if self.tx.send(stream).is_ok() {
            self.wake.wake();
        }
    }
}

/// Owning handle to a running shard thread.
pub(crate) struct ShardHandle {
    reg: mpsc::Sender<TcpStream>,
    wake: WakeHandle,
    thread: std::thread::JoinHandle<()>,
}

impl ShardHandle {
    /// A registration handle for the accept thread.
    pub(crate) fn registrar(&self) -> Registrar {
        Registrar {
            tx: self.reg.clone(),
            wake: self.wake.clone(),
        }
    }

    /// Wake the shard (it observes the shutdown flag) and join it.
    pub(crate) fn join(self) {
        self.wake.wake();
        let _ = self.thread.join();
    }
}

/// Route accepted connections to shards by file descriptor. Runs on the
/// accept thread until the shutdown flag is raised (the handle unblocks
/// it with a throwaway connection).
pub(crate) fn accept_into_shards(
    listener: &TcpListener,
    registrars: &[Registrar],
    shutdown: &AtomicBool,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        registrars[shard_for_fd(stream.as_raw_fd(), registrars.len())].register(stream);
    }
}

/// The shard a descriptor lands on: a plain modulus. Descriptors are
/// dense small integers, so consecutive connections spread evenly.
fn shard_for_fd(fd: i32, shards: usize) -> usize {
    (fd.max(0) as usize) % shards.max(1)
}

/// Explicit session states (the machine in the module diagram),
/// projected from the pure [`SessionModel`]. The shard recomputes the
/// state after every pump; poll interest and teardown decisions derive
/// from the same fields, so the stored state is the machine's observable
/// face (tests and debug assertions check it stays consistent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionState {
    /// Connected, no HELLO seen yet.
    Handshake,
    /// Nothing buffered, nothing in flight.
    Idle,
    /// A frame is partially buffered mid-read.
    ReadingFrame,
    /// At least one admitted query awaits its worker.
    AwaitingResult,
    /// Reply bytes are queued for the socket.
    Writing,
}

/// One admitted query the session is waiting on.
struct InflightQuery {
    /// Cancelled on disconnect; carries the request deadline.
    guard: Arc<CancelToken>,
    /// The request's seed — the reply-fault key (see
    /// [`crate::server::ServerConfig::reply_faults`]).
    seed: u64,
}

/// One connection, owned by exactly one shard. The decision-bearing
/// fields live in [`Session::model`]; everything else is the real I/O
/// the model abstracts (socket, byte buffers, cancellation guards).
struct Session {
    stream: TcpStream,
    reader: FrameReader,
    /// Bytes queued for the socket, drained front-first by the write pump.
    out: Vec<u8>,
    /// The pure protocol state; the only place admit/reject/drain/close
    /// decisions are made.
    model: SessionModel,
    /// Guards and fault seeds for admitted queries, indexed by the
    /// model's slot. The model's `inflight` bitmask says which entries
    /// are live.
    inflight: [Option<InflightQuery>; protocol::MAX_SERIALS as usize],
    state: SessionState,
}

/// The payload an [`Event`] carries into the action interpreter: the
/// model decides *what* happens, the context supplies the bytes and
/// handles the decision applies to.
enum EventCtx {
    /// No payload (HELLO, BYE, stats, disconnect, sweeps, drains).
    None,
    /// The QUERY frame being admitted or rejected.
    Query(QueryRequest),
    /// A submit outcome: the guard and fault seed to stash on admit, the
    /// wire id to cite on rejection.
    Submit {
        guard: Arc<CancelToken>,
        seed: u64,
        req_id: u64,
    },
    /// The already-mangled reply bytes for a completion.
    Reply(Vec<u8>),
    /// The decode error text for protocol garbage.
    Garbage(String),
}

impl Session {
    fn new(stream: TcpStream, window: u8) -> Session {
        Session {
            stream,
            reader: FrameReader::new(),
            out: Vec::new(),
            model: SessionModel::new(window),
            inflight: std::array::from_fn(|_| None),
            state: SessionState::Handshake,
        }
    }

    /// The state the machine is in right now, projected from the model.
    /// Priority order mirrors what the session is *blocked on*: the
    /// handshake, then outstanding queries, then pending output, then a
    /// partial frame.
    fn current_state(&self) -> SessionState {
        if !self.model.handshaken {
            SessionState::Handshake
        } else if self.model.inflight != 0 {
            SessionState::AwaitingResult
        } else if !self.out.is_empty() {
            SessionState::Writing
        } else if self.reader.mid_frame() {
            SessionState::ReadingFrame
        } else {
            SessionState::Idle
        }
    }

    /// Queue a frame for the socket, unmodified.
    fn push_clean(&mut self, frame: &Frame) {
        self.out.extend_from_slice(&frame.encode());
    }
}

/// The reactor token reserved for the shard's [`Waker`]. Session ids
/// count up from zero, so the all-ones token can never collide.
const WAKER_TOKEN: u64 = u64::MAX;

/// One event-loop thread: owns a disjoint set of sessions and the only
/// reactor that watches them.
pub(crate) struct Shard {
    /// This shard's index — the "site" its catalog replica lives at in
    /// the drift model (see `QueryService::catalog_verdict`).
    index: usize,
    service: Arc<QueryService>,
    submit: SyncSender<Job>,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    /// The readiness backend. Sessions are registered under their id as
    /// the token; interest updates route through [`Shard::retune`] so
    /// the reactor's interest cache sees every change exactly once.
    reactor: Box<dyn Reactor>,
    reg_rx: Receiver<TcpStream>,
    done_rx: Receiver<Completion>,
    done_tx: mpsc::Sender<Completion>,
    sessions: HashMap<u64, Session>,
    next_session: u64,
    /// Sessions whose `out` gained bytes this iteration: flushed once
    /// after event dispatch so a fresh reply never waits a full reactor
    /// timeout, without an O(sessions) scan per tick.
    wout: Vec<u64>,
    /// Reactor counters as of the last publish to [`ServerMetrics`];
    /// the loop pushes deltas so multiple shards can share the gauges.
    reported: ReactorStats,
}

impl Shard {
    /// Spawn one shard thread. Fails loudly (propagating to
    /// `Server::bind`) if the configured reactor backend cannot be
    /// constructed on this host.
    pub(crate) fn spawn(
        index: usize,
        service: Arc<QueryService>,
        submit: SyncSender<Job>,
        shutdown: Arc<AtomicBool>,
    ) -> io::Result<ShardHandle> {
        let waker = Waker::new()?;
        let wake = waker.handle();
        let mut reactor = new_reactor(service.config().reactor)?;
        reactor.register(waker.fd(), WAKER_TOKEN, Interest::READ)?;
        let (reg_tx, reg_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel();
        let mut shard = Shard {
            index,
            service,
            submit,
            shutdown,
            waker,
            reactor,
            reg_rx,
            done_rx,
            done_tx,
            sessions: HashMap::new(),
            next_session: 0,
            wout: Vec::new(),
            reported: ReactorStats::default(),
        };
        let thread = std::thread::Builder::new()
            .name(format!("csqp-shard-{index}"))
            .spawn(move || shard.run())?;
        Ok(ShardHandle {
            reg: reg_tx,
            wake,
            thread,
        })
    }

    fn run(&mut self) {
        let timeout = self.service.config().read_timeout;
        let mut events: Vec<ReadyEvent> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                self.close_all();
                self.publish_reactor_stats();
                return;
            }
            if self.reactor.wait(timeout, &mut events).is_err() {
                // EINTR is retried inside the reactor; anything else
                // here is a broken wait — re-check shutdown and retry.
                continue;
            }
            self.waker.drain();
            self.adopt_new_sessions();
            self.drain_completions();
            for &ev in &events {
                let id = ev.token();
                if id == WAKER_TOKEN {
                    continue;
                }
                if ev.error() {
                    self.advance(id, Event::Disconnect, EventCtx::None);
                } else {
                    if ev.readable() {
                        self.pump_read(id);
                    }
                    if ev.writable() {
                        self.pump_write(id);
                    }
                }
            }
            // Opportunistic write for every session that queued bytes
            // this iteration — replies should not wait a reactor cycle;
            // a non-writable socket answers WouldBlock and its write
            // interest (retuned above) delivers the continuation event.
            for id in std::mem::take(&mut self.wout) {
                self.pump_write(id);
            }
            self.publish_reactor_stats();
        }
    }

    /// Push the reactor's counter growth since the last publish into the
    /// shared server metrics.
    fn publish_reactor_stats(&mut self) {
        let now = self.reactor.stats();
        self.service.metrics().record_reactor(
            now.wait_calls - self.reported.wait_calls,
            now.ctl_calls - self.reported.ctl_calls,
            now.events_dispatched - self.reported.events_dispatched,
        );
        self.reported = now;
    }

    /// Sync a session's reactor registration with its computed interest:
    /// read while the model still reads, write while bytes are queued.
    /// Unchanged interest is a cached no-op inside the reactor, so this
    /// is cheap to call after every pump. A failed registration orphans
    /// the session (it would never see another event) — tear it down.
    fn retune(&mut self, id: u64) {
        let Some(s) = self.sessions.get(&id) else {
            return;
        };
        debug_assert_eq!(s.state, s.current_state(), "state retuned after pumps");
        let fd = s.stream.as_raw_fd();
        let interest = Interest::new(!s.model.read_closed, !s.out.is_empty());
        if self.reactor.register(fd, id, interest).is_err() {
            self.finish(id);
        }
    }

    /// Pull freshly accepted connections off the registration queue.
    fn adopt_new_sessions(&mut self) {
        let window = self.service.config().effective_pipeline_depth() as u8;
        while let Ok(stream) = self.reg_rx.try_recv() {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let id = self.next_session;
            self.next_session += 1;
            self.service.metrics().session_opened();
            self.sessions.insert(id, Session::new(stream, window));
            // Initial registration (read interest); failure tears the
            // session straight back down, keeping the open/close gauge
            // balanced.
            self.retune(id);
        }
    }

    /// Apply one protocol event to a session and interpret the resulting
    /// actions against the real world. This is the *only* path that
    /// mutates a session's decision state.
    fn advance(&mut self, id: u64, event: Event, ctx: EventCtx) {
        let service = Arc::clone(&self.service);
        let Some(s) = self.sessions.get_mut(&id) else {
            return;
        };
        let (next, actions) = protocol::step(&s.model, event);
        s.model = next;
        let mut submit: Option<(u8, QueryRequest)> = None;
        let mut close = false;
        for action in actions {
            match action {
                Action::SendHelloAck => {
                    let config = service.config();
                    s.push_clean(&Frame::HelloAck(HelloAck {
                        server: config.name.clone(),
                        num_servers: config.num_servers,
                        pipeline_depth: config.effective_pipeline_depth() as u32,
                    }));
                }
                Action::SendStats => {
                    s.push_clean(&Frame::Stats(service.stats_snapshot()));
                }
                Action::SendError(class) => {
                    if matches!(class, ErrorClass::Saturated) {
                        service.metrics().record_reject();
                    }
                    s.push_clean(&Frame::Error(error_frame(class, &event, &ctx, &service)));
                }
                Action::SendReply(_) => {
                    if let EventCtx::Reply(bytes) = &ctx {
                        s.out.extend_from_slice(bytes);
                    }
                }
                Action::TrySubmit(slot) => {
                    // The submit resolves below, outside the session
                    // borrow, and re-enters `advance` with the outcome.
                    if let EventCtx::Query(ref req) = ctx {
                        submit = Some((slot, req.clone()));
                    }
                }
                Action::Admit(slot) => {
                    if let EventCtx::Submit {
                        ref guard, seed, ..
                    } = ctx
                    {
                        s.inflight[slot as usize] = Some(InflightQuery {
                            guard: Arc::clone(guard),
                            seed,
                        });
                    }
                }
                Action::Cancel(slot) => {
                    if let Some(q) = s.inflight[slot as usize].take() {
                        q.guard.cancel();
                    }
                }
                Action::Close => close = true,
            }
        }
        s.state = s.current_state();
        let has_out = !s.out.is_empty();
        if close {
            self.finish(id);
            return;
        }
        if has_out {
            // Queue for the end-of-iteration flush; duplicates are
            // harmless (a drained session's pump is a no-op).
            self.wout.push(id);
        }
        self.retune(id);
        if let Some((slot, req)) = submit {
            self.resolve_submit(id, slot, req);
        }
    }

    /// Hand an admitted-by-the-window query to the admission queue and
    /// feed the outcome back into the machine as [`Event::Submit`].
    fn resolve_submit(&mut self, id: u64, slot: u8, req: QueryRequest) {
        let service = Arc::clone(&self.service);
        let req_id = req.id;
        let seed = req.seed;
        let deadline = req
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let guard = Arc::new(CancelToken::new(deadline));
        let degrade = if service.begin_inflight() >= service.config().effective_high_water() as u64
        {
            Some(DegradeReason::Saturated)
        } else {
            None
        };
        // The drift model ticks at admission time, on the shard thread,
        // so the verdict reflects exactly the replica state this query
        // was admitted under (inert unless catalog faults are armed).
        let catalog = service.catalog_verdict(self.index, &req);
        let job = Job {
            req,
            reply: ReplySink {
                tx: self.done_tx.clone(),
                session: id,
                serial: u64::from(slot),
                waker: self.waker.handle(),
            },
            enqueued: Instant::now(),
            guard: Arc::clone(&guard),
            degrade,
            catalog,
        };
        // The verdict itself comes from the shared arbitration layer
        // (`csqp_verify::system`), so the priority the checker explores
        // — pool-gone beats queue-full — is the one served here.
        let outcome = match self.submit.try_send(job) {
            Ok(()) => submit_outcome(false, false),
            Err(TrySendError::Full(_)) => {
                service.end_inflight();
                submit_outcome(true, false)
            }
            Err(TrySendError::Disconnected(_)) => {
                service.end_inflight();
                service.metrics().record_aborted();
                submit_outcome(false, true)
            }
        };
        self.advance(
            id,
            Event::Submit(outcome),
            EventCtx::Submit {
                guard,
                seed,
                req_id,
            },
        );
    }

    /// Drain worker completions: re-associate each by `(session, slot)`,
    /// apply the reply-fault plan, and feed the machine a clean or
    /// truncated completion event.
    fn drain_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            let slot = (done.serial % u64::from(protocol::MAX_SERIALS)) as u8;
            let Some(s) = self.sessions.get_mut(&done.session) else {
                // Session torn down while the query ran; the worker
                // already recorded the terminal bucket.
                continue;
            };
            if completion_disposition(&s.model, slot) == CompletionDisposition::DropStale {
                // The model's drop path: a closed or poisoned stream
                // swallows completions, as does a slot retired by
                // cancel or deadline (the guard was already cancelled).
                continue;
            }
            let Some(q) = s.inflight[slot as usize].take() else {
                continue;
            };
            let frame = match done.outcome {
                Ok(record) => Frame::Result(record),
                Err(err) => Frame::Error(err),
            };
            let wire = mangle_reply(self.service.config(), q.seed, &frame);
            let event = if wire.closes_session() {
                Event::CompletionTruncated(slot)
            } else {
                Event::Completion(slot)
            };
            let bytes = wire.bytes().to_vec();
            self.advance(done.session, event, EventCtx::Reply(bytes));
        }
    }

    /// Read until the socket runs dry, processing every complete frame
    /// (this is what makes pipelining work: back-to-back frames that
    /// arrived in one read are all admitted before the next poll).
    fn pump_read(&mut self, id: u64) {
        loop {
            let Some(s) = self.sessions.get_mut(&id) else {
                return;
            };
            if s.model.read_closed {
                return;
            }
            match s.reader.step(&mut s.stream) {
                Ok(ReadStep::Frame(frame)) => self.process_frame(id, frame),
                Ok(ReadStep::Pending) => {
                    if s.reader.mid_frame() {
                        self.advance(id, Event::BytesPartial, EventCtx::None);
                    } else if let Some(s) = self.sessions.get_mut(&id) {
                        s.state = s.current_state();
                    }
                    return;
                }
                Ok(ReadStep::Closed) => {
                    self.advance(id, Event::Disconnect, EventCtx::None);
                    return;
                }
                Err(e) => {
                    // Protocol garbage: best-effort typed error, then
                    // the stream can no longer be trusted.
                    self.advance(id, Event::FrameGarbage, EventCtx::Garbage(e.to_string()));
                    return;
                }
            }
        }
    }

    /// Map one decoded client frame on session `id` to its protocol
    /// event.
    fn process_frame(&mut self, id: u64, frame: Frame) {
        match frame {
            Frame::Hello(_) => self.advance(id, Event::FrameHello, EventCtx::None),
            Frame::Query(req) => {
                self.service.metrics().record_submitted();
                self.advance(id, Event::FrameQuery, EventCtx::Query(req));
            }
            Frame::StatsRequest => self.advance(id, Event::FrameStats, EventCtx::None),
            Frame::Bye => self.advance(id, Event::FrameBye, EventCtx::None),
            // Server-to-client frames arriving at the server are a
            // client bug, not stream corruption: report and continue.
            Frame::HelloAck(_) | Frame::Result(_) | Frame::Error(_) | Frame::Stats(_) => {
                self.advance(id, Event::FrameUnexpected, EventCtx::None);
            }
        }
    }

    /// Write queued bytes until the socket would block or `out` drains;
    /// a full drain is an event the machine observes (it may finish a
    /// draining or poisoned session).
    fn pump_write(&mut self, id: u64) {
        let Some(s) = self.sessions.get_mut(&id) else {
            return;
        };
        let mut wrote = 0;
        let dead = loop {
            if wrote == s.out.len() {
                break false;
            }
            match s.stream.write(&s.out[wrote..]) {
                Ok(0) => break true,
                Ok(n) => wrote += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                    ) =>
                {
                    break false
                }
                Err(_) => break true,
            }
        };
        s.out.drain(..wrote);
        let drained = s.out.is_empty() && s.model.out_pending > 0;
        s.state = s.current_state();
        if dead {
            self.advance(id, Event::Disconnect, EventCtx::None);
        } else if drained {
            self.advance(id, Event::WriteDrained, EventCtx::None);
        } else {
            // Partial drain (WouldBlock): write interest arms here, and
            // the reactor's writable event drives the continuation.
            self.retune(id);
        }
    }

    /// Interpret [`Action::Close`]: flush what the machine queued on the
    /// way out (best effort — the peer may be gone), drop the session,
    /// record the metric. Guards were cancelled by the [`Action::Cancel`]s
    /// the machine emitted before closing.
    fn finish(&mut self, id: u64) {
        if let Some(mut s) = self.sessions.remove(&id) {
            // Deregister before the stream drops (closes the fd) — the
            // reactor contract; best-effort because the descriptor may
            // already be dead.
            let _ = self.reactor.deregister(s.stream.as_raw_fd());
            if !s.out.is_empty() {
                let _ = s.stream.write(&s.out);
            }
            for q in s.inflight.iter_mut().filter_map(Option::take) {
                q.guard.cancel();
            }
            self.service.metrics().session_closed();
        }
    }

    /// Shutdown: the machine's shutdown sweep for every session — a
    /// best-effort ShuttingDown error, cancel everything outstanding,
    /// close.
    fn close_all(&mut self) {
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        for id in ids {
            self.advance(id, Event::ShutdownSweep, EventCtx::None);
        }
    }
}

/// The wire error frame for a machine-decided [`Action::SendError`]:
/// the class comes from the model, the message and retry hint from the
/// event's real-world context.
fn error_frame(
    class: ErrorClass,
    event: &Event,
    ctx: &EventCtx,
    service: &QueryService,
) -> ErrorFrame {
    match class {
        ErrorClass::Saturated => match ctx {
            // Window rejection: the QUERY never reached the queue.
            EventCtx::Query(req) => ErrorFrame {
                id: req.id,
                code: ErrorCode::Saturated,
                message: format!(
                    "pipeline window full ({} outstanding)",
                    service.config().effective_pipeline_depth()
                ),
                retry_after_ms: Some(RETRY_AFTER_MS),
            },
            // Admission-queue rejection.
            _ => ErrorFrame {
                id: match ctx {
                    EventCtx::Submit { req_id, .. } => *req_id,
                    _ => 0,
                },
                code: ErrorCode::Saturated,
                message: "admission queue full".to_string(),
                retry_after_ms: Some(RETRY_AFTER_MS),
            },
        },
        ErrorClass::BadFrame => ErrorFrame {
            id: 0,
            code: ErrorCode::BadFrame,
            message: match ctx {
                EventCtx::Garbage(text) => text.clone(),
                _ => "malformed frame".to_string(),
            },
            retry_after_ms: None,
        },
        ErrorClass::BadRequest => ErrorFrame {
            id: 0,
            code: ErrorCode::BadRequest,
            message: "unexpected server-to-client frame".to_string(),
            retry_after_ms: None,
        },
        ErrorClass::ShuttingDown => ErrorFrame {
            id: match (event, ctx) {
                (Event::Submit(_), EventCtx::Submit { req_id, .. }) => *req_id,
                _ => 0,
            },
            code: ErrorCode::ShuttingDown,
            message: "server shutting down".to_string(),
            retry_after_ms: Some(SHUTDOWN_RETRY_AFTER_MS),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn loopback_session() -> (Session, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        (Session::new(server, 8), client)
    }

    #[test]
    fn state_machine_transitions_in_priority_order() {
        let (mut s, _client) = loopback_session();
        assert_eq!(s.current_state(), SessionState::Handshake);
        s.model.handshaken = true;
        assert_eq!(s.current_state(), SessionState::Idle);
        s.out.extend_from_slice(b"reply bytes");
        assert_eq!(s.current_state(), SessionState::Writing);
        s.model.inflight = 0b1;
        // An outstanding query outranks pending output.
        assert_eq!(s.current_state(), SessionState::AwaitingResult);
        s.model.inflight = 0;
        s.out.clear();
        assert_eq!(s.current_state(), SessionState::Idle);
    }

    #[test]
    fn reading_frame_state_reflects_a_partial_frame() {
        use std::io::Write as _;
        let (mut s, mut client) = loopback_session();
        s.model.handshaken = true;
        // First 5 bytes of a real frame: mid-frame after one step.
        let bytes = Frame::Bye.encode();
        client.write_all(&bytes[..5]).expect("partial write");
        loop {
            match s.reader.step(&mut s.stream) {
                Ok(ReadStep::Pending) => {
                    if s.reader.mid_frame() {
                        break;
                    }
                }
                other => panic!("unexpected step: {other:?}"),
            }
        }
        assert_eq!(s.current_state(), SessionState::ReadingFrame);
    }

    #[test]
    fn garbage_event_poisons_and_cancels_inflight() {
        let (mut s, _client) = loopback_session();
        let guard = Arc::new(CancelToken::inert());
        s.model.handshaken = true;
        s.model.inflight = 0b1000; // slot 3
        s.inflight[3] = Some(InflightQuery {
            guard: Arc::clone(&guard),
            seed: 9,
        });
        let (next, actions) = protocol::step(&s.model, Event::FrameGarbage);
        s.model = next;
        assert!(s.model.poisoned);
        assert!(
            actions.contains(&Action::Cancel(3)),
            "poisoning cancels workers: {actions:?}"
        );
        assert!(!s.model.finished(), "error bytes still owed");
        let (next, _) = protocol::step(&s.model, Event::WriteDrained);
        assert!(next.closed, "poisoned + flushed = removable");
    }

    #[test]
    fn draining_session_waits_for_inflight_and_output() {
        let (mut s, _client) = loopback_session();
        s.model.handshaken = true;
        s.model.draining = true;
        s.model.inflight = 0b1;
        assert!(!s.model.finished(), "a pipelined reply is still owed");
        s.model.inflight = 0;
        s.model.out_pending = 1;
        assert!(!s.model.finished(), "reply not flushed yet");
        s.model.out_pending = 0;
        assert!(s.model.finished());
    }

    #[test]
    fn fd_sharding_spreads_and_never_panics() {
        assert_eq!(shard_for_fd(10, 4), 2);
        assert_eq!(shard_for_fd(11, 4), 3);
        assert_eq!(shard_for_fd(0, 1), 0);
        assert_eq!(shard_for_fd(-1, 4), 0, "defensive on invalid fds");
        assert_eq!(shard_for_fd(7, 0), 0, "zero shards clamps");
    }
}
