//! The multi-threaded TCP query service.
//!
//! Threading model (documented in DESIGN.md §8 and §10):
//!
//! - one *accept* thread owns the listener and routes sockets to shards;
//! - a fixed set of *shard* event-loop threads multiplexes every session
//!   (HELLO → QUERY* → BYE) over a [`csqp_net::poll::Reactor`]
//!   (`epoll(7)` by default on Linux, `poll(2)` portable fallback) —
//!   see the `engine` module;
//! - a fixed *worker pool* drains a bounded admission queue
//!   (`std::sync::mpsc::sync_channel`) and executes queries against the
//!   shared [`QueryService`].
//!
//! Backpressure: a QUERY that finds the admission queue full is rejected
//! immediately with an ERROR frame (`code = saturated`) carrying a
//! `retry_after_ms` hint — the connection thread never blocks on a full
//! queue, so slow workers cannot stall the protocol.
//!
//! Determinism: the hosted catalog for a query shape is derived from
//! `placement_seed ^ fnv1a(spec.canonical())`, two-step compile and
//! site-selection streams are seeded from the memo fingerprint of their
//! key (identical with the memo enabled or disabled), and the two-phase
//! optimizer/simulator stream is seeded by the request's own `seed` — so
//! identical requests produce byte-identical results regardless of thread
//! interleaving, which worker runs them, or whether the memo was warm.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use csqp_catalog::{Catalog, DriftAction, DriftEvent, SiteId, SystemConfig};
use csqp_core::cancel::{CancelToken, StopReason};
use csqp_core::{DiagCode, Policy};
use csqp_engine::ServerLoad;
use csqp_experiments::runner;
use csqp_memo::{CacheBuckets, Env as MemoEnv, MemoConfig, MemoTable};
use csqp_optimizer::{CompileTimeAssumption, OptConfig, Optimizer, TwoStepPlanner};
use csqp_simkernel::rng::SimRng;
use csqp_workload::{random_placement, WorkloadSpec};

use crate::metrics::ServerMetrics;
use crate::proto::{
    read_frame, write_frame, DegradeReason, ErrorCode, ErrorFrame, Frame, OptimizerMode,
    QueryRequest, ResultRecord, StatsSnapshot, WireError,
};

/// FNV-1a over a byte string; the deterministic mixer used for catalog
/// and compile seeds.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks a free port.
    pub addr: String,
    /// Number of data servers in the hosted topology. Queries with fewer
    /// relations than this run on a topology shrunk to their relation
    /// count (the placement invariant gives every server a relation).
    pub num_servers: u32,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission-queue depth; a QUERY arriving when the queue holds this
    /// many pending jobs is rejected with a retry-after hint.
    pub queue_depth: usize,
    /// Seed for the hosted data placement.
    pub placement_seed: u64,
    /// Optimizer search parameters used for every request.
    pub opt: OptConfig,
    /// Connection read timeout; also bounds shutdown latency.
    pub read_timeout: Duration,
    /// Server name echoed in HELLO-ACK frames.
    pub name: String,
    /// In-flight queries (queued + executing) past which new admissions
    /// are served *degraded* to query shipping instead of at the
    /// requested policy. `None` derives `3 · queue_depth / 4` (min 1).
    /// The hard reject still happens when the queue itself is full.
    pub high_water: Option<usize>,
    /// Per-session pipelining window: how many QUERY frames one session
    /// may have outstanding before reading replies. Advertised in
    /// HELLO-ACK; a QUERY past the window is rejected `saturated`.
    /// Clamped to `1..=`[`csqp_core::limits::MAX_SERIALS`] — the cap
    /// keeps the session machine finite, which is what lets
    /// `csqp-check --protocol` model-check it exhaustively.
    pub pipeline_depth: usize,
    /// Event-loop threads multiplexing all sessions (sessions are
    /// sharded across them by file descriptor). Clamped to at least 1.
    pub event_threads: usize,
    /// Readiness backend each shard drives: `epoll` by default on Linux
    /// (kernel-resident interest, O(ready) waits), `poll` as the
    /// portable fallback. Wire behavior is byte-identical either way —
    /// the parameterized equivalence suites hold both to the same
    /// golden digests.
    pub reactor: csqp_net::poll::Backend,
    /// Server-side reply-path fault injection: when set, RESULT/ERROR
    /// frames produced by query execution are deterministically
    /// truncated or corrupted per the plan, keyed by the request's own
    /// seed. Chaos testing only — never enable in real serving.
    pub reply_faults: Option<csqp_net::chaos::FaultPlan>,
    /// Whether 2-step requests consult the shared site-selection memo.
    /// Serving is byte-identical either way (hits replay the exact cold
    /// plan); disabling only trades CPU for memory.
    pub memo: bool,
    /// Byte budget for the shared memo table (plans + witnesses +
    /// bookkeeping). LRU+cost-aware eviction keeps the table under this
    /// bound; see DESIGN.md §13.
    pub memo_bytes: usize,
    /// Staleness bound for the per-shard catalog replicas: the most
    /// coordinator epochs a replica may trail while its queries still
    /// serve *fresh* at the requested policy. Beyond the bound the query
    /// takes the typed degradation path (DESIGN.md §14): downgrade to QS
    /// with `degrade_reason = stale-catalog`, or — when it is already QS
    /// — reject with a retry hint.
    pub catalog_lag: u64,
    /// Catalog-propagation fault injection: when set, every admitted
    /// query doubles as a coordinator epoch tick and the shard replica's
    /// refresh is deterministically withheld, torn, reordered, or
    /// poisoned per the plan, keyed by the request's own seed. When
    /// `None` the whole drift layer is inert (epoch stays 0, no trace) —
    /// serving is byte-identical to a pre-replication build. Chaos
    /// testing only — never enable in real serving.
    pub catalog_faults: Option<csqp_net::chaos::FaultPlan>,
    /// Client-memory budget, in pages, for the *guaranteed* worst-case
    /// footprint of the chosen plan (`csqp-verify::bounds`): the pages of
    /// both inputs of every client-sited join plus the final result. A
    /// plan over budget is re-planned as QS — whose joins run at the
    /// servers, so its footprint is the result bound alone — with
    /// `degrade_reason = mem-bound`; if even the QS plan cannot fit, the
    /// query is rejected with the retryable `mem-bound-exceeded` error.
    /// `None` disables the gate (serving is byte-identical to a
    /// pre-bounds build).
    pub mem_budget_pages: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            num_servers: 4,
            workers: 4,
            queue_depth: 64,
            placement_seed: 0xC59D,
            opt: OptConfig::fast(),
            read_timeout: Duration::from_millis(200),
            name: "csqp-serve".to_string(),
            high_water: None,
            pipeline_depth: 8,
            event_threads: 2,
            reactor: csqp_net::poll::Backend::default_for_host(),
            reply_faults: None,
            memo: true,
            memo_bytes: 64 << 20,
            catalog_lag: 3,
            catalog_faults: None,
            mem_budget_pages: None,
        }
    }
}

impl ServerConfig {
    /// The effective degradation high-water mark (see
    /// [`ServerConfig::high_water`]).
    pub fn effective_high_water(&self) -> usize {
        self.high_water.unwrap_or(3 * self.queue_depth / 4).max(1)
    }

    /// The pipelining window this configuration actually grants a
    /// session: the configured depth, clamped to the finite-machine cap
    /// (see [`ServerConfig::pipeline_depth`]).
    pub fn effective_pipeline_depth(&self) -> usize {
        self.pipeline_depth
            .clamp(1, csqp_core::limits::MAX_SERIALS as usize)
    }
}

/// The retry-after hint attached to saturation rejects and deadline
/// errors.
pub(crate) const RETRY_AFTER_MS: u64 = 50;

/// The retry-after hint attached to shutdown errors: long enough for a
/// restart supervisor to bring a replacement up.
pub(crate) const SHUTDOWN_RETRY_AFTER_MS: u64 = 1_000;

/// How the admitting shard's catalog replica stood against the
/// coordinator when a query was admitted — the typed degradation verdict
/// of the replication layer (DESIGN.md §14). Computed once per admitted
/// query by the shard thread and carried on the `Job` so the worker
/// honors exactly the state the admission decision saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogVerdict {
    /// The replica is within [`ServerConfig::catalog_lag`]: serve at the
    /// requested policy, priced against the replica's epoch.
    Fresh,
    /// The replica is past the bound (or its cached-fraction state is
    /// poisoned) but the request can still downgrade: serve QS — which
    /// never prices the client cache, so stale fractions cannot mislead
    /// it — with `degrade_reason = stale-catalog`.
    Degrade,
    /// The replica is past the bound and the request is already QS, so
    /// there is nothing sound left to downgrade to: reject with a retry
    /// hint (the replica will have refreshed by the retry).
    Reject {
        /// How many epochs the replica trailed the coordinator.
        lag: u64,
    },
}

/// Hard cap on the recorded drift trace. When a soak outgrows it, whole
/// queries stop being recorded (never partial event groups), so the
/// trace stays a consistent *prefix* of the drift history — exactly what
/// the `csqp-verify` drift pass needs for sound replay.
const DRIFT_TRACE_CAP: usize = 65_536;

/// Epoch bookkeeping for the simulated per-shard catalog replicas. All
/// zeros — and never touched — unless [`ServerConfig::catalog_faults`]
/// is armed, which is what keeps the no-fault serving path byte-
/// identical to a pre-replication build.
struct DriftState {
    /// The coordinator's published epoch.
    coordinator: AtomicU64,
    /// Each shard's replica epoch, indexed by shard (event-loop) index.
    replicas: Vec<AtomicU64>,
    /// Refresh deliveries applied by replicas (including torn ones).
    refreshes: AtomicU64,
    /// Torn deliveries: a refresh applied one delta short.
    torn: AtomicU64,
    /// Reordered (regressing) deliveries the replicas refused.
    regressions: AtomicU64,
    /// Queries downgraded to QS for staleness or poison.
    stale_degraded: AtomicU64,
    /// QS queries bounced outright for staleness.
    stale_rejected: AtomicU64,
    /// Worst replica lag observed at any admission decision.
    max_lag: AtomicU64,
    /// The event trace the `csqp-verify` drift pass audits after a soak.
    trace: Mutex<Vec<DriftEvent>>,
}

impl DriftState {
    fn new(shards: usize) -> DriftState {
        DriftState {
            coordinator: AtomicU64::new(0),
            replicas: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            refreshes: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            regressions: AtomicU64::new(0),
            stale_degraded: AtomicU64::new(0),
            stale_rejected: AtomicU64::new(0),
            max_lag: AtomicU64::new(0),
            trace: Mutex::new(Vec::new()),
        }
    }
}

/// The shared query-execution service: Table 2 system parameters, the
/// deterministic hosted placement, the shared site-selection memo, the
/// catalog drift model, and the metrics sink.
pub struct QueryService {
    config: ServerConfig,
    sys: SystemConfig,
    /// Bounded memo of compiled join orders and site-selected winners
    /// for 2-step requests, shared across every shard and session.
    /// Always constructed; [`ServerConfig::memo`] gates whether queries
    /// consult it.
    memo: MemoTable,
    metrics: Arc<ServerMetrics>,
    /// Queries admitted but not yet finished (queued + executing); the
    /// degradation high-water mark compares against this.
    inflight: AtomicU64,
    /// The per-shard catalog replica epochs and drift counters; inert
    /// unless catalog faults are armed.
    drift: DriftState,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl QueryService {
    /// A service with the default Table 2 system parameters.
    pub fn new(config: ServerConfig) -> QueryService {
        let memo = MemoTable::new(MemoConfig {
            max_bytes: config.memo_bytes,
            ..MemoConfig::default()
        });
        let drift = DriftState::new(config.event_threads);
        QueryService {
            config,
            sys: SystemConfig::default(),
            memo,
            metrics: Arc::new(ServerMetrics::new()),
            inflight: AtomicU64::new(0),
            drift,
        }
    }

    /// The shared metrics sink.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The shared site-selection memo, when memoization is enabled.
    pub fn memo(&self) -> Option<&MemoTable> {
        if self.config.memo {
            Some(&self.memo)
        } else {
            None
        }
    }

    /// The memo environment for a spec: the hosted placement seed and
    /// the effective (possibly shrunk) topology the request plans
    /// against. Part of every fingerprint, so reconfiguring either
    /// cannot serve a stale plan.
    pub fn memo_env(&self, spec: &WorkloadSpec) -> MemoEnv {
        MemoEnv {
            placement_seed: self.config.placement_seed,
            num_servers: self.topology_for(spec),
        }
    }

    /// The STATS-frame snapshot: serving metrics merged with the memo
    /// counters (zero when the memo is disabled) and the catalog drift
    /// counters (zero until catalog faults arm the drift layer).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut snap = self.metrics.snapshot();
        if let Some(memo) = self.memo() {
            let m = memo.snapshot();
            snap.memo_hits = m.hits;
            snap.memo_misses = m.misses;
            snap.memo_evictions = m.evictions;
            snap.memo_bytes = m.bytes;
        }
        snap.catalog_epoch = self.drift.coordinator.load(Ordering::Acquire);
        snap.catalog_refreshes = self.drift.refreshes.load(Ordering::Relaxed);
        snap.catalog_stale_degraded = self.drift.stale_degraded.load(Ordering::Relaxed);
        snap.catalog_stale_rejected = self.drift.stale_rejected.load(Ordering::Relaxed);
        snap.catalog_epoch_regressions = self.drift.regressions.load(Ordering::Relaxed);
        snap.catalog_max_lag = self.drift.max_lag.load(Ordering::Relaxed);
        snap
    }

    /// The coordinator's current catalog epoch (0 until catalog faults
    /// arm the drift layer).
    pub fn catalog_epoch(&self) -> u64 {
        self.drift.coordinator.load(Ordering::Acquire)
    }

    /// Torn (partial) epoch deliveries applied so far. Exposed for the
    /// chaos harness; the STATS frame folds torn refreshes into
    /// `catalog_refreshes`.
    pub fn catalog_torn(&self) -> u64 {
        self.drift.torn.load(Ordering::Relaxed)
    }

    /// The drift event trace recorded while catalog faults were armed
    /// (empty otherwise, and capped — see `DRIFT_TRACE_CAP`).
    /// `csqp-load` replays this through the `csqp-verify` drift pass
    /// after a soak to prove no plan was served beyond the bound.
    pub fn drift_trace(&self) -> Vec<DriftEvent> {
        lock(&self.drift.trace).clone()
    }

    /// Advance the drift model for one admitted query and return the
    /// serving verdict, keyed by the request's own seed so the schedule
    /// is reproducible without any session state. `None` (faults
    /// unarmed) means the drift layer is inert. Called on the admitting
    /// shard's thread; soaks that assert digest equality run queries
    /// sequentially, which makes the whole drift trajectory a pure
    /// function of the request stream.
    pub(crate) fn catalog_verdict(
        &self,
        shard: usize,
        req: &QueryRequest,
    ) -> Option<CatalogVerdict> {
        use csqp_net::chaos::CatalogFault;
        let plan = self.config.catalog_faults.as_ref()?;
        let fault = plan.catalog_fault_for(req.seed);
        let mut events: Vec<DriftEvent> = Vec::with_capacity(8);

        // Coordinator side: every admission doubles as a mutation tick.
        // A withheld refresh publishes a small burst so a single fault
        // can push the replica past the default bound.
        let publishes = match fault {
            CatalogFault::WithheldRefresh => 1 + plan.catalog_rng_for(req.seed).derive(1).below(4),
            _ => 1,
        };
        let mut coord = 0;
        for _ in 0..publishes {
            coord = self.drift.coordinator.fetch_add(1, Ordering::AcqRel) + 1;
            events.push(DriftEvent::Publish { epoch: coord });
            // Epoch publication invalidates the shared memo: entries
            // priced under the old epoch must miss and recompute.
            self.memo.bump_generation();
        }

        // Replica side: the propagation step, with the fault's say.
        let replica = &self.drift.replicas[shard % self.drift.replicas.len()];
        let site = (shard % self.drift.replicas.len()) as u32;
        let from = replica.load(Ordering::Acquire);
        let mut poisoned = false;
        match fault {
            CatalogFault::None => {
                replica.store(coord, Ordering::Release);
                self.drift.refreshes.fetch_add(1, Ordering::Relaxed);
                events.push(DriftEvent::Refresh {
                    site,
                    from,
                    to: coord,
                    applied: true,
                });
            }
            CatalogFault::WithheldRefresh => {
                // No delivery at all: the replica just falls behind.
            }
            CatalogFault::TornEpoch => {
                // Partial apply: the delivery lands one delta short.
                // `coord - 1 >= from` always holds — this query published
                // exactly one epoch, so `from <= coord - 1`.
                let to = coord - 1;
                replica.store(to, Ordering::Release);
                self.drift.refreshes.fetch_add(1, Ordering::Relaxed);
                self.drift.torn.fetch_add(1, Ordering::Relaxed);
                events.push(DriftEvent::Refresh {
                    site,
                    from,
                    to,
                    applied: true,
                });
            }
            CatalogFault::ReorderedEpoch => {
                // A stale delivery arrives after a newer one: the replica
                // refuses the regression and keeps its epoch.
                self.drift.regressions.fetch_add(1, Ordering::Relaxed);
                events.push(DriftEvent::Refresh {
                    site,
                    from,
                    to: from.saturating_sub(1),
                    applied: false,
                });
            }
            CatalogFault::PoisonedFraction => {
                // The refresh lands but its cached-fraction state is
                // garbage: the epoch is current, the pricing inputs are
                // not, so the query must not plan against the cache.
                replica.store(coord, Ordering::Release);
                self.drift.refreshes.fetch_add(1, Ordering::Relaxed);
                events.push(DriftEvent::Refresh {
                    site,
                    from,
                    to: coord,
                    applied: true,
                });
                events.push(DriftEvent::Poison { site });
                poisoned = true;
            }
        }

        // The serve decision: the degradation lattice of DESIGN.md §14.
        let priced = replica.load(Ordering::Acquire);
        let lag = coord.saturating_sub(priced);
        self.drift.max_lag.fetch_max(lag, Ordering::AcqRel);
        let verdict = if poisoned {
            self.drift.stale_degraded.fetch_add(1, Ordering::Relaxed);
            CatalogVerdict::Degrade
        } else if lag <= self.config.catalog_lag {
            CatalogVerdict::Fresh
        } else if req.policy == Policy::QueryShipping {
            self.drift.stale_rejected.fetch_add(1, Ordering::Relaxed);
            CatalogVerdict::Reject { lag }
        } else {
            self.drift.stale_degraded.fetch_add(1, Ordering::Relaxed);
            CatalogVerdict::Degrade
        };
        events.push(DriftEvent::Serve {
            site,
            priced_epoch: priced,
            coordinator_epoch: coord,
            lag,
            action: match verdict {
                CatalogVerdict::Fresh => DriftAction::Fresh,
                CatalogVerdict::Degrade => DriftAction::Degraded,
                CatalogVerdict::Reject { .. } => DriftAction::Rejected,
            },
        });

        let mut trace = lock(&self.drift.trace);
        if trace.len() + events.len() <= DRIFT_TRACE_CAP {
            trace.extend(events);
        }
        Some(verdict)
    }

    /// Queries admitted but not yet finished (queued + executing).
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Acquire)
    }

    pub(crate) fn begin_inflight(&self) -> u64 {
        self.inflight.fetch_add(1, Ordering::AcqRel)
    }

    pub(crate) fn end_inflight(&self) {
        let prev = self.inflight.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "inflight counter underflow");
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Effective topology size for a spec: every server must receive at
    /// least one relation, so small queries shrink the topology.
    pub fn topology_for(&self, spec: &WorkloadSpec) -> u32 {
        self.config.num_servers.min(spec.num_relations()).max(1)
    }

    /// The hosted placement for a query shape: deterministic in
    /// `(placement_seed, spec)`, independent of request order. Exposed so
    /// tests and tools can reconstruct the exact scenario a request ran
    /// against.
    pub fn catalog_for(&self, spec: &WorkloadSpec) -> Catalog {
        let query = spec.build();
        let seed = self.config.placement_seed ^ fnv1a(spec.canonical().as_bytes());
        let mut rng = SimRng::seed_from_u64(seed);
        random_placement(&query, self.topology_for(spec), &mut rng)
    }

    /// Execute one request end to end: materialize the scenario, plan
    /// (two-phase or cached-compile + runtime site selection), lint the
    /// plan against Table 1, simulate, and report the figure-style
    /// record. Every failure is a typed ERROR frame; this never panics on
    /// any decodable request.
    pub fn handle_query(&self, req: &QueryRequest) -> Result<ResultRecord, ErrorFrame> {
        self.handle_query_ctx(req, &CancelToken::inert(), None, None)
    }

    /// [`QueryService::handle_query`] with the serving context attached:
    /// a cancel token probed between search steps and simulated-engine
    /// phases, an admission-time degradation verdict (queue past the
    /// high-water mark), and the admitting shard's catalog drift verdict.
    /// A stopped token yields a typed `deadline-exceeded` or `aborted`
    /// ERROR; a degraded request runs under query shipping — Table 1
    /// makes QS legal for every query — and says so in the RESULT record;
    /// an over-lag QS request is bounced with a typed `stale-catalog`
    /// ERROR carrying a retry hint.
    pub fn handle_query_ctx(
        &self,
        req: &QueryRequest,
        guard: &CancelToken,
        admission_degrade: Option<DegradeReason>,
        catalog_verdict: Option<CatalogVerdict>,
    ) -> Result<ResultRecord, ErrorFrame> {
        if let Some(CatalogVerdict::Reject { lag }) = catalog_verdict {
            return Err(ErrorFrame {
                id: req.id,
                code: ErrorCode::StaleCatalog,
                message: format!(
                    "shard replica is {lag} epochs behind the coordinator (bound {}); \
                     a refresh is due",
                    self.config.catalog_lag
                ),
                retry_after_ms: Some(RETRY_AFTER_MS),
            });
        }
        let bad = |msg: String| ErrorFrame {
            id: req.id,
            code: ErrorCode::BadRequest,
            message: msg,
            retry_after_ms: None,
        };
        let stopped = |r: StopReason, at: &str| ErrorFrame {
            id: req.id,
            code: match r {
                StopReason::DeadlineExceeded => ErrorCode::DeadlineExceeded,
                StopReason::Cancelled => ErrorCode::Aborted,
            },
            message: format!("query abandoned during {at}: {r}"),
            retry_after_ms: match r {
                // A fresh attempt with a larger budget can succeed.
                StopReason::DeadlineExceeded => Some(RETRY_AFTER_MS),
                // The requester is gone; nobody reads this hint.
                StopReason::Cancelled => None,
            },
        };
        let mut query = req.spec.build();
        // The wire's key declarations override the generator-implied
        // ones. They are *claims*, not facts: `bounds::analyze` audits
        // every declared key against the query's own statistics and
        // falls back to the product rule for any it cannot justify, so a
        // hostile over-declaration can never tighten a bound unsoundly
        // (it only risks a `bound-key-unsound` diagnostic in --bounds
        // sweeps). Indices were validated at decode.
        if let Some(keys) = &req.keys {
            for (i, r) in query.relations.iter_mut().enumerate() {
                r.key = keys.binary_search(&(i as u32)).is_ok();
            }
        }
        let query = query;
        let servers = self.topology_for(&req.spec);

        // An unusable cache declaration (more entries than the query has
        // relations) cannot be bound soundly, so cache-dependent DS/HY
        // planning degrades to QS — which never reads the client cache —
        // and the declaration is ignored. A stale or poisoned catalog
        // replica forces the same downgrade for the same soundness
        // reason: QS never prices replicated state it cannot trust.
        // Admission-time saturation outranks both: the reason reported
        // is the first one that forced the downgrade.
        let cache_unusable = req.cache.len() > query.relations.len();
        let catalog_stale = matches!(catalog_verdict, Some(CatalogVerdict::Degrade));
        let degrade = admission_degrade
            .or(if catalog_stale {
                Some(DegradeReason::StaleCatalog)
            } else {
                None
            })
            .or(if cache_unusable {
                Some(DegradeReason::CacheUnusable)
            } else {
                None
            });
        let (mut policy, mut degraded_from, mut degrade_reason) = match degrade {
            Some(reason) if req.policy != Policy::QueryShipping => {
                (Policy::QueryShipping, Some(req.policy), Some(reason))
            }
            _ => (req.policy, None, None),
        };

        let mut catalog = self.catalog_for(&req.spec);
        // Every relation must hold a primary copy before planning ever
        // asks for one: `Catalog::primary_site` panics on an unplaced
        // relation, and a panic here would take the whole worker thread.
        // `random_placement` places everything, so this is defensive —
        // but the serve boundary is exactly where the defense belongs.
        for rel in &query.relations {
            if catalog.try_primary_site(rel.id).is_none() {
                return Err(bad(format!(
                    "{}: relation {} has no primary copy in the hosted placement",
                    DiagCode::CatalogUnplaced.as_str(),
                    rel.id
                )));
            }
        }
        // Page arithmetic must be defined for every relation before the
        // planner or the bounds pass divides by it: zero-width tuples or
        // a tuple wider than a page would panic `pages_for` deep in the
        // cost model. Hostile statistics die here with a typed error
        // instead.
        for rel in &query.relations {
            if csqp_catalog::try_pages_for(rel.tuples, rel.tuple_bytes, self.sys.page_size)
                .is_none()
            {
                return Err(bad(format!(
                    "{}: relation {} statistics (tuple_bytes={}, page_size={}) admit no \
                     page count",
                    DiagCode::BoundOverflow.as_str(),
                    rel.id,
                    rel.tuple_bytes,
                    self.sys.page_size
                )));
            }
        }
        if !cache_unusable {
            for (rel, &fraction) in query.relations.iter().zip(&req.cache) {
                catalog.set_cached_fraction(rel.id, fraction);
            }
        }
        let mut loads = Vec::with_capacity(req.loads.len());
        for &(site, rate) in &req.loads {
            if site == 0 || site > servers {
                return Err(bad(format!(
                    "load names server {site}, topology has servers 1..={servers}"
                )));
            }
            loads.push(ServerLoad {
                site: SiteId::server(site),
                rate_per_sec: rate,
            });
        }

        let plan_for = |policy: Policy| -> Result<csqp_core::Plan, ErrorFrame> {
            Ok(match req.optimizer {
                OptimizerMode::TwoPhase => {
                    // Mirrors runner::run_query exactly (same seed stream)
                    // with the lint inserted between planning and execution.
                    let model = runner::cost_model(&self.sys, &catalog, &query, &loads);
                    let optimizer =
                        Optimizer::new(&model, policy, req.objective, self.config.opt.clone());
                    let mut rng = SimRng::seed_from_u64(req.seed);
                    optimizer
                        .optimize_guarded(&query, &mut rng, guard)
                        .map_err(|r| stopped(r, "planning"))?
                        .plan
                }
                OptimizerMode::TwoStep => {
                    let planner = TwoStepPlanner {
                        policy,
                        objective: req.objective,
                        config: self.config.opt.clone(),
                    };
                    let env = self.memo_env(&req.spec);
                    let memo = self.memo();
                    let (compiled, _) = planner.compile_memoized(
                        &req.spec,
                        &query,
                        &self.sys,
                        CompileTimeAssumption::Centralized,
                        env,
                        memo,
                    );
                    // Site selection plans against the bucket-representative
                    // cache state — the quantization that makes memo entries
                    // shareable across near-identical declarations — while
                    // execution below keeps the exact declared fractions.
                    let buckets = if cache_unusable {
                        CacheBuckets::quantize(&[])
                    } else {
                        CacheBuckets::quantize(&req.cache)
                    };
                    let mut planning_catalog = self.catalog_for(&req.spec);
                    for (rel_index, fraction) in buckets.planning_fractions() {
                        if (rel_index as usize) < query.relations.len() {
                            planning_catalog.set_cached_fraction(
                                query.relations[rel_index as usize].id,
                                fraction,
                            );
                        }
                    }
                    planner
                        .site_select_memoized(
                            &req.spec,
                            &compiled,
                            &query,
                            &self.sys,
                            &planning_catalog,
                            &buckets,
                            env,
                            memo,
                            guard,
                        )
                        .map_err(|r| stopped(r, "site selection"))?
                        .0
                }
            })
        };
        let mut plan = plan_for(policy)?;

        // Memory-bound admission gate (DESIGN.md §16): compare the
        // *guaranteed* worst-case client footprint of the chosen plan —
        // derived by `csqp-verify::bounds` from audited key constraints,
        // never from estimates — against the configured budget. Over
        // budget, degrade to QS (whose joins run at the servers, so only
        // the result bound lands on the client); if even QS cannot fit,
        // reject with the typed retryable error. With no budget set the
        // gate is inert and serving is byte-identical to a pre-bounds
        // build.
        if let Some(budget) = self.config.mem_budget_pages {
            let footprint_of = |plan: &csqp_core::Plan| -> Result<u64, ErrorFrame> {
                let bound = csqp_core::bind::bind(
                    plan,
                    csqp_core::bind::BindContext {
                        catalog: &catalog,
                        query_site: SiteId::CLIENT,
                    },
                )
                .map_err(|e| bad(format!("plan does not bind to the hosted placement: {e}")))?;
                let bounds = csqp_verify::bounds::analyze(plan, &query, self.sys.page_size)
                    .map_err(|d| bad(d.to_string()))?;
                Ok(csqp_verify::bounds::client_footprint_pages(&bound, &bounds))
            };
            let reject = |footprint: u64| ErrorFrame {
                id: req.id,
                code: ErrorCode::MemBoundExceeded,
                message: format!(
                    "guaranteed worst-case client footprint of {footprint} pages exceeds \
                     the memory budget of {budget} pages even under query shipping"
                ),
                retry_after_ms: Some(RETRY_AFTER_MS),
            };
            let footprint = footprint_of(&plan)?;
            if footprint > budget {
                if policy == Policy::QueryShipping {
                    return Err(reject(footprint));
                }
                let qs_plan = plan_for(Policy::QueryShipping)?;
                let qs_footprint = footprint_of(&qs_plan)?;
                if qs_footprint > budget {
                    return Err(reject(qs_footprint));
                }
                plan = qs_plan;
                policy = Policy::QueryShipping;
                degraded_from = Some(req.policy);
                degrade_reason = Some(DegradeReason::MemBound);
            }
        }
        let plan = plan;

        // Table-1 conformance lint, always before execution: a plan that
        // breaks the policy contract is a server-side optimizer bug and
        // must never reach the simulator. Degraded plans are linted
        // against QS — the policy they actually ran under. The loopback
        // test asserts (in debug builds) that this counter tracks every
        // served query.
        let diags = csqp_verify::conformance::check_policy(&plan, policy);
        self.metrics.record_lint();
        if !diags.is_empty() {
            debug_assert!(
                false,
                "optimizer emitted a policy-violating plan: {:?}",
                diags[0]
            );
            return Err(ErrorFrame {
                id: req.id,
                code: ErrorCode::PolicyViolation,
                message: format!("plan violates {} rules: {}", policy.short(), diags[0]),
                retry_after_ms: None,
            });
        }

        let metrics = runner::execute_plan_guarded(
            &plan, &query, &catalog, &self.sys, &loads, req.seed, guard,
        )
        .map_err(|e| match e {
            runner::RunError::Interrupted(r) => stopped(r, "execution"),
            other => ErrorFrame {
                id: req.id,
                code: ErrorCode::ExecutionFailed,
                message: other.to_string(),
                retry_after_ms: None,
            },
        })?;

        let sites = metrics.disk.len();
        Ok(ResultRecord {
            id: req.id,
            response_secs: metrics.response_secs(),
            pages_sent: metrics.pages_sent,
            control_msgs: metrics.control_msgs,
            bytes_sent: metrics.bytes_sent,
            link_utilization: metrics.link_utilization,
            disk_utilization: (0..sites)
                .map(|i| metrics.disk_utilization(SiteId(i as u32)))
                .collect(),
            cpu_secs: metrics.cpu_busy.iter().map(|d| d.as_secs_f64()).collect(),
            result_tuples: metrics.result_tuples,
            degraded_from,
            degrade_reason,
        })
    }
}

/// Where a worker delivers a finished query's outcome: the owning
/// shard's completion queue — tagged with the session and the job serial
/// so the shard re-associates it — plus the waker that interrupts the
/// shard's poll sleep.
pub(crate) struct ReplySink {
    /// The owning shard's completion queue.
    pub(crate) tx: mpsc::Sender<crate::engine::Completion>,
    /// Session the query arrived on (shard-local id).
    pub(crate) session: u64,
    /// The session's slot for this query.
    pub(crate) serial: u64,
    /// Wakes the shard's poll loop after posting.
    pub(crate) waker: csqp_net::poll::WakeHandle,
}

impl ReplySink {
    /// Deliver the outcome. A vanished receiver (connection closed,
    /// shard shut down) is fine — the worker has already recorded the
    /// terminal metrics bucket.
    fn deliver(self, outcome: Result<ResultRecord, ErrorFrame>) {
        let _ = self.tx.send(crate::engine::Completion {
            session: self.session,
            serial: self.serial,
            outcome,
        });
        self.waker.wake();
    }
}

/// One admitted query, waiting for a worker.
pub(crate) struct Job {
    pub(crate) req: QueryRequest,
    pub(crate) reply: ReplySink,
    pub(crate) enqueued: Instant,
    /// Shared with the session layer: carries the request deadline and is
    /// cancelled when the client vanishes, so the worker abandons the
    /// query at its next probe.
    pub(crate) guard: Arc<CancelToken>,
    /// Admission-time degradation verdict (queue past high water).
    pub(crate) degrade: Option<DegradeReason>,
    /// The admitting shard's catalog drift verdict; `None` when catalog
    /// faults are unarmed.
    pub(crate) catalog: Option<CatalogVerdict>,
}

/// How a reply frame leaves the server after the reply-path fault plan
/// has had its say (see [`ServerConfig::reply_faults`]).
pub(crate) enum WireReply {
    /// The encoded frame, unmodified.
    Clean(Vec<u8>),
    /// The frame with one payload byte flipped; framing is intact, so
    /// the session continues.
    Corrupt(Vec<u8>),
    /// A strict prefix of the frame; the session must be closed right
    /// after writing it (the stream alignment is gone).
    Truncate(Vec<u8>),
}

impl WireReply {
    /// The bytes to put on the wire.
    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            WireReply::Clean(b) | WireReply::Corrupt(b) | WireReply::Truncate(b) => b,
        }
    }

    /// True when the session must close after this write.
    pub(crate) fn closes_session(&self) -> bool {
        matches!(self, WireReply::Truncate(_))
    }
}

/// Encode a completion-path reply (RESULT or ERROR for an executed
/// query) and apply the configured reply-path fault, keyed by the
/// request's own seed so the schedule is reproducible without any
/// session state. Admission rejects and session-level errors are always
/// sent clean.
pub(crate) fn mangle_reply(config: &ServerConfig, seed: u64, frame: &Frame) -> WireReply {
    use csqp_net::chaos::{corrupt_frame, truncate_frame, ReplyFault};
    let bytes = frame.encode();
    let Some(plan) = &config.reply_faults else {
        return WireReply::Clean(bytes);
    };
    // Separate derivation stream for the byte mutation, so it does not
    // replay the draws `reply_fault_for` already consumed.
    let mut mutate = plan.reply_rng_for(seed).derive(1);
    match plan.reply_fault_for(seed) {
        ReplyFault::None => WireReply::Clean(bytes),
        ReplyFault::CorruptReply => {
            WireReply::Corrupt(corrupt_frame(&bytes, crate::proto::HEADER_LEN, &mut mutate))
        }
        ReplyFault::TruncateReply => WireReply::Truncate(truncate_frame(&bytes, &mut mutate)),
    }
}

/// A bound server, ready to run.
pub struct Server {
    listener: TcpListener,
    service: Arc<QueryService>,
}

impl Server {
    /// Bind the listen socket (without accepting yet).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            service: Arc::new(QueryService::new(config)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared query service.
    pub fn service(&self) -> Arc<QueryService> {
        Arc::clone(&self.service)
    }

    /// Start the session layer (the event-driven shard engine) plus the
    /// worker pool on background threads, and return a handle for
    /// shutdown.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let service = Arc::clone(&self.service);
        let cfg = service.config().clone();
        let shutdown = Arc::new(AtomicBool::new(false));

        let (submit, jobs) = mpsc::sync_channel::<Job>(cfg.queue_depth);
        let jobs = Arc::new(Mutex::new(jobs));
        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers.max(1) {
            let jobs = Arc::clone(&jobs);
            let service = Arc::clone(&service);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("csqp-worker-{i}"))
                    .spawn(move || worker_loop(&jobs, &service))?,
            );
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let mut shards = Vec::new();
        let mut registrars = Vec::with_capacity(cfg.event_threads.max(1));
        for i in 0..cfg.event_threads.max(1) {
            let shard = crate::engine::Shard::spawn(
                i,
                Arc::clone(&service),
                submit.clone(),
                Arc::clone(&shutdown),
            )?;
            registrars.push(shard.registrar());
            shards.push(shard);
        }
        let accept = std::thread::Builder::new()
            .name("csqp-accept".to_string())
            .spawn(move || {
                crate::engine::accept_into_shards(&self.listener, &registrars, &accept_shutdown)
            })?;

        Ok(ServerHandle {
            addr,
            service,
            shutdown,
            submit: Some(submit),
            accept: Some(accept),
            workers,
            shards,
        })
    }
}

/// Handle to a running server: address, metrics, and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<QueryService>,
    shutdown: Arc<AtomicBool>,
    submit: Option<SyncSender<Job>>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shards: Vec<crate::engine::ShardHandle>,
}

impl ServerHandle {
    /// The address the server accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared query service (metrics, configuration, catalogs).
    pub fn service(&self) -> Arc<QueryService> {
        Arc::clone(&self.service)
    }

    /// The shared metrics sink.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        self.service.metrics()
    }

    /// Graceful shutdown: stop accepting, let connection threads observe
    /// the flag within one read timeout, drain queued jobs, and join the
    /// pool.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Wake the event shards so they observe the flag, flush a
        // best-effort shutdown error to their sessions, and exit
        // (dropping their submit clones).
        for shard in self.shards.drain(..) {
            shard.join();
        }
        // Drop the master sender; workers exit once every connection
        // thread (each holding a clone) has drained and disconnected.
        self.submit = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(jobs: &Mutex<Receiver<Job>>, service: &QueryService) {
    loop {
        // Hold the lock only while waiting; processing happens unlocked
        // so the pool executes queries concurrently.
        let job = match lock(jobs).recv() {
            Ok(j) => j,
            Err(_) => return,
        };
        let outcome = service.handle_query_ctx(&job.req, &job.guard, job.degrade, job.catalog);
        let latency_us = job.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        // Exactly one terminal bucket per job — the conservation
        // invariant the chaos harness asserts.
        match &outcome {
            Ok(record) => {
                // Count the policy the plan actually ran under.
                let executed = if record.degraded_from.is_some() {
                    service.metrics().record_degraded();
                    if record.degrade_reason == Some(crate::proto::DegradeReason::MemBound) {
                        service.metrics().record_mem_bound_degraded();
                    }
                    Policy::QueryShipping
                } else {
                    job.req.policy
                };
                service
                    .metrics()
                    .record_served(executed, latency_us, record.wire());
            }
            Err(e) => match e.code {
                ErrorCode::DeadlineExceeded => service.metrics().record_timed_out(),
                ErrorCode::Aborted => service.metrics().record_aborted(),
                // A stale-replica bounce is an admission-control outcome,
                // not a failure: it counts with the saturation rejects so
                // the conservation partition stays intact.
                ErrorCode::StaleCatalog => service.metrics().record_reject(),
                // So is a memory-bound bounce: the budget gate refused
                // the work before execution, with a retry hint.
                ErrorCode::MemBoundExceeded => {
                    service.metrics().record_mem_bound_rejected();
                    service.metrics().record_reject();
                }
                _ => service.metrics().record_error(),
            },
        }
        service.end_inflight();
        // A vanished requester (connection closed mid-flight) is fine.
        job.reply.deliver(outcome);
    }
}

/// Blocking client helper: send one frame and read the next reply frame.
/// Used by `csqp-load` and tests; lives here so the request/reply pairing
/// logic exists once.
pub fn roundtrip(stream: &mut TcpStream, frame: &Frame) -> Result<Frame, WireError> {
    write_frame(stream, frame)?;
    loop {
        match read_frame(stream) {
            // A read timeout between frames just means the server is
            // still computing; keep the blocking semantics and wait.
            Err(WireError::TimedOut) => continue,
            Ok(Some(f)) => return Ok(f),
            Ok(None) => {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )))
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_core::Policy;
    use csqp_cost::Objective;

    fn request(spec: WorkloadSpec, policy: Policy, optimizer: OptimizerMode) -> QueryRequest {
        QueryRequest {
            id: 7,
            spec,
            cache: vec![],
            policy,
            objective: Objective::Communication,
            optimizer,
            seed: 42,
            loads: vec![],
            deadline_ms: None,
            keys: None,
        }
    }

    #[test]
    fn handle_query_is_deterministic() {
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Chain {
            n: 4,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let a = service.handle_query(&request(
            spec.clone(),
            Policy::HybridShipping,
            OptimizerMode::TwoPhase,
        ));
        let b = service.handle_query(&request(
            spec,
            Policy::HybridShipping,
            OptimizerMode::TwoPhase,
        ));
        let (a, b) = (a.expect("runs"), b.expect("runs"));
        assert_eq!(a, b, "same request, same record");
        assert!(a.response_secs > 0.0);
        assert!(a.result_tuples > 0);
        assert_eq!(service.metrics().lint_checks(), 2);
    }

    #[test]
    fn two_phase_matches_the_figure_pipeline() {
        // The service must measure exactly what the harness measures:
        // same catalog, same seeds, same metrics.
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Star {
            n: 3,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let req = request(spec.clone(), Policy::QueryShipping, OptimizerMode::TwoPhase);
        let record = service.handle_query(&req).expect("runs");
        let query = spec.build();
        let catalog = service.catalog_for(&spec);
        let direct = csqp_experiments::run_query(
            &query,
            &catalog,
            &SystemConfig::default(),
            &[],
            Policy::QueryShipping,
            Objective::Communication,
            &OptConfig::fast(),
            req.seed,
        )
        .expect("runs");
        assert_eq!(record.pages_sent, direct.metrics.pages_sent);
        assert_eq!(record.bytes_sent, direct.metrics.bytes_sent);
        assert_eq!(record.result_tuples, direct.metrics.result_tuples);
        assert_eq!(record.response_secs, direct.metrics.response_secs());
    }

    #[test]
    fn two_step_uses_the_plan_cache() {
        // Historic name; the plan cache is now the shared memo table.
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Chain {
            n: 3,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let a = service
            .handle_query(&request(
                spec.clone(),
                Policy::HybridShipping,
                OptimizerMode::TwoStep,
            ))
            .expect("runs");
        let snap = service.memo().expect("memo on by default").snapshot();
        assert_eq!(snap.installs, 2, "compiled join order + selected winner");
        assert_eq!(snap.hits, 0);
        let b = service
            .handle_query(&request(
                spec,
                Policy::HybridShipping,
                OptimizerMode::TwoStep,
            ))
            .expect("runs");
        // Memo hit and memo miss must be indistinguishable.
        assert_eq!(a, b);
        let snap = service.memo().expect("memo on by default").snapshot();
        assert_eq!(snap.hits, 2, "both layers hit on the repeat");
        assert_eq!(snap.installs, 2, "nothing re-installed");
        let stats = service.stats_snapshot();
        assert_eq!(stats.memo_hits, 2);
        assert!(stats.memo_bytes > 0);
    }

    #[test]
    fn memo_off_serves_identical_records() {
        let on = QueryService::new(ServerConfig::default());
        let off = QueryService::new(ServerConfig {
            memo: false,
            ..ServerConfig::default()
        });
        assert!(off.memo().is_none());
        let spec = WorkloadSpec::Star {
            n: 4,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let mut req = request(spec, Policy::DataShipping, OptimizerMode::TwoStep);
        req.cache = vec![0.25, 0.0, 0.5, 0.25];
        let _warmup = on.handle_query(&req).expect("runs");
        let warm = on.handle_query(&req).expect("runs");
        let cold = off.handle_query(&req).expect("runs");
        assert_eq!(warm, cold, "warm memo hit must match the memo-off plan");
        assert_eq!(off.stats_snapshot().memo_hits, 0);
        assert!(on.stats_snapshot().memo_hits > 0);
    }

    #[test]
    fn bad_requests_get_typed_errors() {
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Chain {
            n: 2,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let mut req = request(spec, Policy::DataShipping, OptimizerMode::TwoPhase);
        req.loads = vec![(9, 50.0)]; // server 9 does not exist (topology 2)
        let err = service.handle_query(&req).expect_err("rejected");
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert_eq!(err.id, 7);
    }

    #[test]
    fn unusable_cache_degrades_to_query_shipping() {
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Chain {
            n: 2,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let mut req = request(spec.clone(), Policy::DataShipping, OptimizerMode::TwoPhase);
        req.cache = vec![0.5; 10]; // more cache entries than relations
        let record = service.handle_query(&req).expect("served degraded");
        assert_eq!(record.degraded_from, Some(Policy::DataShipping));
        assert_eq!(record.degrade_reason, Some(DegradeReason::CacheUnusable));

        // The degraded run is byte-identical to an honest QS request
        // with no cache declaration (the unusable one is ignored).
        let mut qs = request(spec.clone(), Policy::QueryShipping, OptimizerMode::TwoPhase);
        qs.cache = vec![];
        let honest = service.handle_query(&qs).expect("runs");
        assert_eq!(record.pages_sent, honest.pages_sent);
        assert_eq!(record.response_secs, honest.response_secs);

        // A QS request with an unusable cache needs no downgrade: the
        // declaration is dropped but the policy is already minimal.
        let mut req = request(spec, Policy::QueryShipping, OptimizerMode::TwoPhase);
        req.cache = vec![0.5; 10];
        let record = service.handle_query(&req).expect("runs");
        assert_eq!(record.degraded_from, None);
        assert_eq!(record.degrade_reason, None);
    }

    #[test]
    fn mem_budget_degrades_to_qs_and_matches_honest_qs() {
        let service = QueryService::new(ServerConfig {
            // Enough for the QS result bound (250 pages for the keyed
            // benchmark chain) but not for client-sited join inputs.
            mem_budget_pages: Some(300),
            ..ServerConfig::default()
        });
        let spec = WorkloadSpec::Chain {
            n: 3,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let req = request(spec.clone(), Policy::DataShipping, OptimizerMode::TwoPhase);
        let record = service.handle_query(&req).expect("served degraded");
        assert_eq!(record.degraded_from, Some(Policy::DataShipping));
        assert_eq!(record.degrade_reason, Some(DegradeReason::MemBound));

        // The degraded run is byte-identical to an honest QS request on
        // an unbudgeted server: the gate changes *which* plan runs,
        // never how a plan executes.
        let honest = QueryService::new(ServerConfig::default())
            .handle_query(&request(
                spec,
                Policy::QueryShipping,
                OptimizerMode::TwoPhase,
            ))
            .expect("runs");
        assert_eq!(record.pages_sent, honest.pages_sent);
        assert_eq!(record.response_secs, honest.response_secs);
        assert_eq!(record.result_tuples, honest.result_tuples);
    }

    #[test]
    fn mem_budget_rejects_when_even_qs_cannot_fit() {
        let service = QueryService::new(ServerConfig {
            mem_budget_pages: Some(10),
            ..ServerConfig::default()
        });
        let spec = WorkloadSpec::Chain {
            n: 3,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        for (policy, optimizer) in [
            (Policy::QueryShipping, OptimizerMode::TwoPhase),
            (Policy::DataShipping, OptimizerMode::TwoStep),
        ] {
            let err = service
                .handle_query(&request(spec.clone(), policy, optimizer))
                .expect_err("no plan fits 10 pages");
            assert_eq!(err.code, ErrorCode::MemBoundExceeded);
            assert_eq!(err.retry_after_ms, Some(RETRY_AFTER_MS));
        }
    }

    #[test]
    fn generous_mem_budget_is_inert() {
        let spec = WorkloadSpec::Chain {
            n: 3,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let req = request(spec, Policy::HybridShipping, OptimizerMode::TwoPhase);
        let gated = QueryService::new(ServerConfig {
            mem_budget_pages: Some(u64::MAX),
            ..ServerConfig::default()
        })
        .handle_query(&req)
        .expect("runs");
        let ungated = QueryService::new(ServerConfig::default())
            .handle_query(&req)
            .expect("runs");
        assert_eq!(gated, ungated);
    }

    #[test]
    fn wire_keys_override_the_implied_declarations() {
        let service = QueryService::new(ServerConfig {
            mem_budget_pages: Some(300),
            ..ServerConfig::default()
        });
        let spec = WorkloadSpec::Chain {
            n: 2,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        // With the generator-implied keys the QS result bound is one
        // relation (250 pages): admitted.
        let mut req = request(spec, Policy::QueryShipping, OptimizerMode::TwoPhase);
        let ok = service.handle_query(&req).expect("fits under implied keys");
        assert_eq!(ok.degraded_from, None);
        // A client stripping the declarations drops the bound to the
        // product rule (10^8 tuples), which no 300-page budget admits.
        req.keys = Some(vec![]);
        let err = service.handle_query(&req).expect_err("product bound");
        assert_eq!(err.code, ErrorCode::MemBoundExceeded);
    }

    #[test]
    fn admission_degrade_runs_qs_and_lints_clean() {
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Chain {
            n: 3,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let req = request(spec, Policy::HybridShipping, OptimizerMode::TwoPhase);
        let record = service
            .handle_query_ctx(
                &req,
                &CancelToken::inert(),
                Some(DegradeReason::Saturated),
                None,
            )
            .expect("served degraded");
        assert_eq!(record.degraded_from, Some(Policy::HybridShipping));
        assert_eq!(record.degrade_reason, Some(DegradeReason::Saturated));
    }

    #[test]
    fn stale_catalog_verdict_degrades_non_qs_requests() {
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Chain {
            n: 3,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let req = request(
            spec.clone(),
            Policy::HybridShipping,
            OptimizerMode::TwoPhase,
        );
        let record = service
            .handle_query_ctx(
                &req,
                &CancelToken::inert(),
                None,
                Some(CatalogVerdict::Degrade),
            )
            .expect("served degraded");
        assert_eq!(record.degraded_from, Some(Policy::HybridShipping));
        assert_eq!(record.degrade_reason, Some(DegradeReason::StaleCatalog));

        // Saturation outranks staleness in the reported reason.
        let record = service
            .handle_query_ctx(
                &req,
                &CancelToken::inert(),
                Some(DegradeReason::Saturated),
                Some(CatalogVerdict::Degrade),
            )
            .expect("served degraded");
        assert_eq!(record.degrade_reason, Some(DegradeReason::Saturated));

        // A Fresh verdict changes nothing.
        let record = service
            .handle_query_ctx(
                &req,
                &CancelToken::inert(),
                None,
                Some(CatalogVerdict::Fresh),
            )
            .expect("served fresh");
        assert_eq!(record.degraded_from, None);
        assert_eq!(record.degrade_reason, None);
    }

    #[test]
    fn stale_catalog_verdict_rejects_qs_with_retry_hint() {
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Chain {
            n: 2,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let req = request(spec, Policy::QueryShipping, OptimizerMode::TwoPhase);
        let err = service
            .handle_query_ctx(
                &req,
                &CancelToken::inert(),
                None,
                Some(CatalogVerdict::Reject { lag: 5 }),
            )
            .expect_err("bounced");
        assert_eq!(err.code, ErrorCode::StaleCatalog);
        assert_eq!(err.retry_after_ms, Some(RETRY_AFTER_MS));
        assert!(err.message.contains("5 epochs behind"));
    }

    #[test]
    fn drift_model_is_inert_without_faults_and_deterministic_with() {
        use csqp_net::chaos::FaultPlan;
        let spec = WorkloadSpec::Chain {
            n: 3,
            selectivity: csqp_workload::MODERATE_SEL,
        };

        // Unarmed: no epochs, no trace, no verdict — the layer is inert.
        let quiet = QueryService::new(ServerConfig::default());
        let req = request(
            spec.clone(),
            Policy::HybridShipping,
            OptimizerMode::TwoPhase,
        );
        assert_eq!(quiet.catalog_verdict(0, &req), None);
        assert_eq!(quiet.catalog_epoch(), 0);
        assert!(quiet.drift_trace().is_empty());

        // Armed: the same seeded request stream produces the same
        // verdicts, trace, and counters on two independent services.
        let armed = || {
            QueryService::new(ServerConfig {
                catalog_faults: Some(FaultPlan::new(0xD81F7, 0.8)),
                catalog_lag: 1,
                ..ServerConfig::default()
            })
        };
        let (a, b) = (armed(), armed());
        let verdicts = |svc: &QueryService| {
            (0..64u64)
                .map(|i| {
                    let mut r = request(
                        spec.clone(),
                        Policy::HybridShipping,
                        OptimizerMode::TwoPhase,
                    );
                    r.seed = 1000 + i;
                    svc.catalog_verdict(0, &r)
                })
                .collect::<Vec<_>>()
        };
        let (va, vb) = (verdicts(&a), verdicts(&b));
        assert_eq!(va, vb, "same seeds, same drift trajectory");
        assert_eq!(a.drift_trace(), b.drift_trace());
        assert!(a.catalog_epoch() >= 64, "every query publishes");
        assert!(va.iter().all(|v| v.is_some()));
        // The mix must exercise both sides of the lattice.
        assert!(va.contains(&Some(CatalogVerdict::Fresh)));
        assert!(va.contains(&Some(CatalogVerdict::Degrade)));
        let stats = a.stats_snapshot();
        assert_eq!(stats.catalog_epoch, a.catalog_epoch());
        assert!(stats.catalog_refreshes > 0);
        assert!(stats.catalog_max_lag > 1, "withheld bursts push past lag 1");
    }

    #[test]
    fn epoch_publication_bumps_the_memo_generation() {
        use csqp_net::chaos::FaultPlan;
        let service = QueryService::new(ServerConfig {
            catalog_faults: Some(FaultPlan::new(7, 1.0)),
            ..ServerConfig::default()
        });
        let memo = service.memo().expect("memo on by default");
        let before = memo.generation();
        let req = request(
            WorkloadSpec::Chain {
                n: 2,
                selectivity: csqp_workload::MODERATE_SEL,
            },
            Policy::QueryShipping,
            OptimizerMode::TwoStep,
        );
        let _ = service.catalog_verdict(0, &req);
        assert!(
            memo.generation() > before,
            "publishing an epoch must invalidate the memo"
        );
    }

    #[test]
    fn expired_deadline_yields_typed_error() {
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Chain {
            n: 4,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let req = request(spec, Policy::HybridShipping, OptimizerMode::TwoPhase);
        let guard = CancelToken::with_deadline(Instant::now());
        let err = service
            .handle_query_ctx(&req, &guard, None, None)
            .expect_err("deadline already gone");
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert_eq!(err.retry_after_ms, Some(RETRY_AFTER_MS));
    }

    #[test]
    fn cancelled_guard_yields_aborted() {
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Chain {
            n: 4,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let req = request(spec, Policy::HybridShipping, OptimizerMode::TwoStep);
        let guard = CancelToken::inert();
        guard.cancel();
        let err = service
            .handle_query_ctx(&req, &guard, None, None)
            .expect_err("requester is gone");
        assert_eq!(err.code, ErrorCode::Aborted);
        assert_eq!(err.retry_after_ms, None);
    }

    #[test]
    fn high_water_defaults_scale_with_queue_depth() {
        let cfg = ServerConfig {
            queue_depth: 64,
            ..ServerConfig::default()
        };
        assert_eq!(cfg.effective_high_water(), 48);
        let tiny = ServerConfig {
            queue_depth: 1,
            ..ServerConfig::default()
        };
        assert_eq!(tiny.effective_high_water(), 1);
        let explicit = ServerConfig {
            queue_depth: 64,
            high_water: Some(2),
            ..ServerConfig::default()
        };
        assert_eq!(explicit.effective_high_water(), 2);
    }

    #[test]
    fn topology_shrinks_to_small_queries() {
        let service = QueryService::new(ServerConfig {
            num_servers: 4,
            ..ServerConfig::default()
        });
        let small = WorkloadSpec::Chain {
            n: 2,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        assert_eq!(service.topology_for(&small), 2);
        let big = WorkloadSpec::Chain {
            n: 10,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        assert_eq!(service.topology_for(&big), 4);
        assert_eq!(service.catalog_for(&small).num_servers(), 2);
    }
}
