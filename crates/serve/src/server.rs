//! The multi-threaded TCP query service.
//!
//! Threading model (documented in DESIGN.md §8):
//!
//! - one *accept* thread owns the listener;
//! - one *connection* thread per accepted socket runs the session state
//!   machine (HELLO → QUERY* → BYE) with a short read timeout so it can
//!   observe shutdown;
//! - a fixed *worker pool* drains a bounded admission queue
//!   (`std::sync::mpsc::sync_channel`) and executes queries against the
//!   shared [`QueryService`].
//!
//! Backpressure: a QUERY that finds the admission queue full is rejected
//! immediately with an ERROR frame (`code = saturated`) carrying a
//! `retry_after_ms` hint — the connection thread never blocks on a full
//! queue, so slow workers cannot stall the protocol.
//!
//! Determinism: the hosted catalog for a query shape is derived from
//! `placement_seed ^ fnv1a(spec.canonical())`, compiled join orders use a
//! fixed per-shape compile seed, and the optimizer/simulator stream is
//! seeded by the request's own `seed` — so identical requests produce
//! byte-identical results regardless of thread interleaving or which
//! worker runs them.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use csqp_catalog::{Catalog, SiteId, SystemConfig};
use csqp_core::Plan;
use csqp_engine::ServerLoad;
use csqp_experiments::runner;
use csqp_optimizer::{CompileTimeAssumption, OptConfig, Optimizer, TwoStepPlanner};
use csqp_simkernel::rng::SimRng;
use csqp_workload::{random_placement, WorkloadSpec};

use crate::metrics::ServerMetrics;
use crate::proto::{
    read_frame, write_frame, ErrorCode, ErrorFrame, Frame, FrameReader, HelloAck, OptimizerMode,
    QueryRequest, ReadStep, ResultRecord, WireError,
};

/// FNV-1a over a byte string; the deterministic mixer used for catalog
/// and compile seeds.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Seed stream for compile-time (join-order) optimization, mixed with the
/// query-shape hash so different shapes compile independently.
const COMPILE_SEED: u64 = 0x2_57EB;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks a free port.
    pub addr: String,
    /// Number of data servers in the hosted topology. Queries with fewer
    /// relations than this run on a topology shrunk to their relation
    /// count (the placement invariant gives every server a relation).
    pub num_servers: u32,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission-queue depth; a QUERY arriving when the queue holds this
    /// many pending jobs is rejected with a retry-after hint.
    pub queue_depth: usize,
    /// Seed for the hosted data placement.
    pub placement_seed: u64,
    /// Optimizer search parameters used for every request.
    pub opt: OptConfig,
    /// Connection read timeout; also bounds shutdown latency.
    pub read_timeout: Duration,
    /// Server name echoed in HELLO-ACK frames.
    pub name: String,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            num_servers: 4,
            workers: 4,
            queue_depth: 64,
            placement_seed: 0xC59D,
            opt: OptConfig::fast(),
            read_timeout: Duration::from_millis(200),
            name: "csqp-serve".to_string(),
        }
    }
}

/// The retry-after hint attached to saturation rejects.
const RETRY_AFTER_MS: u64 = 50;

/// The shared query-execution service: Table 2 system parameters, the
/// deterministic hosted placement, the compiled-plan cache, and the
/// metrics sink.
pub struct QueryService {
    config: ServerConfig,
    sys: SystemConfig,
    /// Compiled join orders for 2-step requests, keyed by
    /// `canonical-spec | policy | objective`.
    plan_cache: Mutex<HashMap<String, Plan>>,
    metrics: Arc<ServerMetrics>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl QueryService {
    /// A service with the default Table 2 system parameters.
    pub fn new(config: ServerConfig) -> QueryService {
        QueryService {
            config,
            sys: SystemConfig::default(),
            plan_cache: Mutex::new(HashMap::new()),
            metrics: Arc::new(ServerMetrics::new()),
        }
    }

    /// The shared metrics sink.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Effective topology size for a spec: every server must receive at
    /// least one relation, so small queries shrink the topology.
    pub fn topology_for(&self, spec: &WorkloadSpec) -> u32 {
        self.config.num_servers.min(spec.num_relations()).max(1)
    }

    /// The hosted placement for a query shape: deterministic in
    /// `(placement_seed, spec)`, independent of request order. Exposed so
    /// tests and tools can reconstruct the exact scenario a request ran
    /// against.
    pub fn catalog_for(&self, spec: &WorkloadSpec) -> Catalog {
        let query = spec.build();
        let seed = self.config.placement_seed ^ fnv1a(spec.canonical().as_bytes());
        let mut rng = SimRng::seed_from_u64(seed);
        random_placement(&query, self.topology_for(spec), &mut rng)
    }

    /// Execute one request end to end: materialize the scenario, plan
    /// (two-phase or cached-compile + runtime site selection), lint the
    /// plan against Table 1, simulate, and report the figure-style
    /// record. Every failure is a typed ERROR frame; this never panics on
    /// any decodable request.
    pub fn handle_query(&self, req: &QueryRequest) -> Result<ResultRecord, ErrorFrame> {
        let bad = |msg: String| ErrorFrame {
            id: req.id,
            code: ErrorCode::BadRequest,
            message: msg,
            retry_after_ms: None,
        };
        let query = req.spec.build();
        let servers = self.topology_for(&req.spec);
        if req.cache.len() > query.relations.len() {
            return Err(bad(format!(
                "cache declares {} relations but the query has {}",
                req.cache.len(),
                query.relations.len()
            )));
        }
        let mut catalog = self.catalog_for(&req.spec);
        for (rel, &fraction) in query.relations.iter().zip(&req.cache) {
            catalog.set_cached_fraction(rel.id, fraction);
        }
        let mut loads = Vec::with_capacity(req.loads.len());
        for &(site, rate) in &req.loads {
            if site == 0 || site > servers {
                return Err(bad(format!(
                    "load names server {site}, topology has servers 1..={servers}"
                )));
            }
            loads.push(ServerLoad {
                site: SiteId::server(site),
                rate_per_sec: rate,
            });
        }

        let plan = match req.optimizer {
            OptimizerMode::TwoPhase => {
                // Mirrors runner::run_query exactly (same seed stream)
                // with the lint inserted between planning and execution.
                let model = runner::cost_model(&self.sys, &catalog, &query, &loads);
                let optimizer =
                    Optimizer::new(&model, req.policy, req.objective, self.config.opt.clone());
                let mut rng = SimRng::seed_from_u64(req.seed);
                optimizer.optimize(&query, &mut rng).plan
            }
            OptimizerMode::TwoStep => {
                let planner = TwoStepPlanner {
                    policy: req.policy,
                    objective: req.objective,
                    config: self.config.opt.clone(),
                };
                let key = format!(
                    "{}|{}|{:?}",
                    req.spec.canonical(),
                    req.policy.short(),
                    req.objective
                );
                let compiled = {
                    let cached = lock(&self.plan_cache).get(&key).cloned();
                    match cached {
                        Some(p) => p,
                        None => {
                            // Compile outside the lock (it is expensive);
                            // a racing duplicate compile is harmless
                            // because the seed makes it identical.
                            let mut rng =
                                SimRng::seed_from_u64(COMPILE_SEED ^ fnv1a(key.as_bytes()));
                            let p = planner.compile(
                                &query,
                                &self.sys,
                                CompileTimeAssumption::Centralized,
                                &mut rng,
                            );
                            lock(&self.plan_cache).insert(key, p.clone());
                            p
                        }
                    }
                };
                let mut rng = SimRng::seed_from_u64(req.seed);
                planner.site_select(&compiled, &query, &self.sys, &catalog, &mut rng)
            }
        };

        // Table-1 conformance lint, always before execution: a plan that
        // breaks the policy contract is a server-side optimizer bug and
        // must never reach the simulator. The loopback test asserts (in
        // debug builds) that this counter tracks every served query.
        let diags = csqp_verify::conformance::check_policy(&plan, req.policy);
        self.metrics.record_lint();
        if !diags.is_empty() {
            debug_assert!(
                false,
                "optimizer emitted a policy-violating plan: {:?}",
                diags[0]
            );
            return Err(ErrorFrame {
                id: req.id,
                code: ErrorCode::PolicyViolation,
                message: format!("plan violates {} rules: {}", req.policy.short(), diags[0]),
                retry_after_ms: None,
            });
        }

        let metrics = runner::execute_plan(&plan, &query, &catalog, &self.sys, &loads, req.seed)
            .map_err(|e| ErrorFrame {
                id: req.id,
                code: ErrorCode::ExecutionFailed,
                message: e.to_string(),
                retry_after_ms: None,
            })?;

        let sites = metrics.disk.len();
        Ok(ResultRecord {
            id: req.id,
            response_secs: metrics.response_secs(),
            pages_sent: metrics.pages_sent,
            control_msgs: metrics.control_msgs,
            bytes_sent: metrics.bytes_sent,
            link_utilization: metrics.link_utilization,
            disk_utilization: (0..sites)
                .map(|i| metrics.disk_utilization(SiteId(i as u32)))
                .collect(),
            cpu_secs: metrics.cpu_busy.iter().map(|d| d.as_secs_f64()).collect(),
            result_tuples: metrics.result_tuples,
        })
    }
}

/// One admitted query, waiting for a worker.
struct Job {
    req: QueryRequest,
    reply: mpsc::Sender<Result<ResultRecord, ErrorFrame>>,
    enqueued: Instant,
}

/// A bound server, ready to run.
pub struct Server {
    listener: TcpListener,
    service: Arc<QueryService>,
}

impl Server {
    /// Bind the listen socket (without accepting yet).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            service: Arc::new(QueryService::new(config)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared query service.
    pub fn service(&self) -> Arc<QueryService> {
        Arc::clone(&self.service)
    }

    /// Start the accept loop and worker pool on background threads and
    /// return a handle for shutdown.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let service = Arc::clone(&self.service);
        let cfg = service.config().clone();
        let shutdown = Arc::new(AtomicBool::new(false));

        let (submit, jobs) = mpsc::sync_channel::<Job>(cfg.queue_depth);
        let jobs = Arc::new(Mutex::new(jobs));
        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers.max(1) {
            let jobs = Arc::clone(&jobs);
            let service = Arc::clone(&service);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("csqp-worker-{i}"))
                    .spawn(move || worker_loop(&jobs, &service))?,
            );
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_submit = submit.clone();
        let accept_service = Arc::clone(&service);
        let accept = std::thread::Builder::new()
            .name("csqp-accept".to_string())
            .spawn(move || {
                accept_loop(
                    &self.listener,
                    &accept_service,
                    &accept_submit,
                    &accept_shutdown,
                )
            })?;

        Ok(ServerHandle {
            addr,
            service,
            shutdown,
            submit: Some(submit),
            accept: Some(accept),
            workers,
        })
    }
}

/// Handle to a running server: address, metrics, and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<QueryService>,
    shutdown: Arc<AtomicBool>,
    submit: Option<SyncSender<Job>>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared query service (metrics, configuration, catalogs).
    pub fn service(&self) -> Arc<QueryService> {
        Arc::clone(&self.service)
    }

    /// The shared metrics sink.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        self.service.metrics()
    }

    /// Graceful shutdown: stop accepting, let connection threads observe
    /// the flag within one read timeout, drain queued jobs, and join the
    /// pool.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Drop the master sender; workers exit once every connection
        // thread (each holding a clone) has drained and disconnected.
        self.submit = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(jobs: &Mutex<Receiver<Job>>, service: &QueryService) {
    loop {
        // Hold the lock only while waiting; processing happens unlocked
        // so the pool executes queries concurrently.
        let job = match lock(jobs).recv() {
            Ok(j) => j,
            Err(_) => return,
        };
        let outcome = service.handle_query(&job.req);
        let latency_us = job.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        match &outcome {
            Ok(record) => {
                service
                    .metrics()
                    .record_served(job.req.policy, latency_us, record.wire());
            }
            Err(_) => service.metrics().record_error(),
        }
        // A vanished requester (connection closed mid-flight) is fine.
        let _ = job.reply.send(outcome);
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<QueryService>,
    submit: &SyncSender<Job>,
    shutdown: &Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let service = Arc::clone(service);
        let submit = submit.clone();
        let shutdown = Arc::clone(shutdown);
        // Connection threads are detached: they observe the shutdown flag
        // within one read timeout and exit, dropping their queue sender.
        let _ = std::thread::Builder::new()
            .name("csqp-conn".to_string())
            .spawn(move || {
                let _ = serve_connection(stream, &service, &submit, &shutdown);
            });
    }
}

/// The per-connection session loop. Returns on BYE, peer close, shutdown,
/// or a session-fatal protocol error (after a best-effort ERROR frame).
fn serve_connection(
    mut stream: TcpStream,
    service: &QueryService,
    submit: &SyncSender<Job>,
    shutdown: &AtomicBool,
) -> Result<(), WireError> {
    stream.set_read_timeout(Some(service.config().read_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = FrameReader::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            let _ = write_frame(
                &mut stream,
                &Frame::Error(ErrorFrame {
                    id: 0,
                    code: ErrorCode::ShuttingDown,
                    message: "server shutting down".to_string(),
                    retry_after_ms: None,
                }),
            );
            return Ok(());
        }
        let frame = match reader.step(&mut stream) {
            Ok(ReadStep::Pending) => continue,
            Ok(ReadStep::Closed) => return Ok(()),
            Ok(ReadStep::Frame(f)) => f,
            Err(e) => {
                // Protocol garbage: answer with a typed error, then hang
                // up — the byte stream can no longer be trusted.
                let _ = write_frame(
                    &mut stream,
                    &Frame::Error(ErrorFrame {
                        id: 0,
                        code: ErrorCode::BadFrame,
                        message: e.to_string(),
                        retry_after_ms: None,
                    }),
                );
                return Err(e);
            }
        };
        match frame {
            Frame::Hello(_) => {
                write_frame(
                    &mut stream,
                    &Frame::HelloAck(HelloAck {
                        server: service.config().name.clone(),
                        num_servers: service.config().num_servers,
                    }),
                )?;
            }
            Frame::Query(req) => {
                let id = req.id;
                let (reply, result) = mpsc::channel();
                let job = Job {
                    req,
                    reply,
                    enqueued: Instant::now(),
                };
                match submit.try_send(job) {
                    Ok(()) => {
                        let outcome = result.recv().map_err(|_| {
                            WireError::Io(std::io::Error::other("worker pool hung up"))
                        })?;
                        let frame = match outcome {
                            Ok(record) => Frame::Result(record),
                            Err(err) => Frame::Error(err),
                        };
                        write_frame(&mut stream, &frame)?;
                    }
                    Err(TrySendError::Full(_)) => {
                        service.metrics().record_reject();
                        write_frame(
                            &mut stream,
                            &Frame::Error(ErrorFrame {
                                id,
                                code: ErrorCode::Saturated,
                                message: "admission queue full".to_string(),
                                retry_after_ms: Some(RETRY_AFTER_MS),
                            }),
                        )?;
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        write_frame(
                            &mut stream,
                            &Frame::Error(ErrorFrame {
                                id,
                                code: ErrorCode::ShuttingDown,
                                message: "server shutting down".to_string(),
                                retry_after_ms: None,
                            }),
                        )?;
                        return Ok(());
                    }
                }
            }
            Frame::StatsRequest => {
                write_frame(&mut stream, &Frame::Stats(service.metrics().snapshot()))?;
            }
            Frame::Bye => {
                stream.flush()?;
                return Ok(());
            }
            // Server-to-client frames arriving at the server are a
            // client bug, not a stream corruption: report and continue.
            Frame::HelloAck(_) | Frame::Result(_) | Frame::Error(_) | Frame::Stats(_) => {
                write_frame(
                    &mut stream,
                    &Frame::Error(ErrorFrame {
                        id: 0,
                        code: ErrorCode::BadRequest,
                        message: "unexpected server-to-client frame".to_string(),
                        retry_after_ms: None,
                    }),
                )?;
            }
        }
    }
}

/// Blocking client helper: send one frame and read the next reply frame.
/// Used by `csqp-load` and tests; lives here so the request/reply pairing
/// logic exists once.
pub fn roundtrip(stream: &mut TcpStream, frame: &Frame) -> Result<Frame, WireError> {
    write_frame(stream, frame)?;
    match read_frame(stream)? {
        Some(f) => Ok(f),
        None => Err(WireError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_core::Policy;
    use csqp_cost::Objective;

    fn request(spec: WorkloadSpec, policy: Policy, optimizer: OptimizerMode) -> QueryRequest {
        QueryRequest {
            id: 7,
            spec,
            cache: vec![],
            policy,
            objective: Objective::Communication,
            optimizer,
            seed: 42,
            loads: vec![],
        }
    }

    #[test]
    fn handle_query_is_deterministic() {
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Chain {
            n: 4,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let a = service.handle_query(&request(
            spec.clone(),
            Policy::HybridShipping,
            OptimizerMode::TwoPhase,
        ));
        let b = service.handle_query(&request(
            spec,
            Policy::HybridShipping,
            OptimizerMode::TwoPhase,
        ));
        let (a, b) = (a.expect("runs"), b.expect("runs"));
        assert_eq!(a, b, "same request, same record");
        assert!(a.response_secs > 0.0);
        assert!(a.result_tuples > 0);
        assert_eq!(service.metrics().lint_checks(), 2);
    }

    #[test]
    fn two_phase_matches_the_figure_pipeline() {
        // The service must measure exactly what the harness measures:
        // same catalog, same seeds, same metrics.
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Star {
            n: 3,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let req = request(spec.clone(), Policy::QueryShipping, OptimizerMode::TwoPhase);
        let record = service.handle_query(&req).expect("runs");
        let query = spec.build();
        let catalog = service.catalog_for(&spec);
        let direct = csqp_experiments::run_query(
            &query,
            &catalog,
            &SystemConfig::default(),
            &[],
            Policy::QueryShipping,
            Objective::Communication,
            &OptConfig::fast(),
            req.seed,
        )
        .expect("runs");
        assert_eq!(record.pages_sent, direct.metrics.pages_sent);
        assert_eq!(record.bytes_sent, direct.metrics.bytes_sent);
        assert_eq!(record.result_tuples, direct.metrics.result_tuples);
        assert_eq!(record.response_secs, direct.metrics.response_secs());
    }

    #[test]
    fn two_step_uses_the_plan_cache() {
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Chain {
            n: 3,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let a = service
            .handle_query(&request(
                spec.clone(),
                Policy::HybridShipping,
                OptimizerMode::TwoStep,
            ))
            .expect("runs");
        assert_eq!(lock(&service.plan_cache).len(), 1);
        let b = service
            .handle_query(&request(
                spec,
                Policy::HybridShipping,
                OptimizerMode::TwoStep,
            ))
            .expect("runs");
        // Cache hit and cache miss must be indistinguishable.
        assert_eq!(a, b);
        assert_eq!(lock(&service.plan_cache).len(), 1);
    }

    #[test]
    fn bad_requests_get_typed_errors() {
        let service = QueryService::new(ServerConfig::default());
        let spec = WorkloadSpec::Chain {
            n: 2,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        let mut req = request(spec.clone(), Policy::DataShipping, OptimizerMode::TwoPhase);
        req.cache = vec![0.5; 10]; // more cache entries than relations
        let err = service.handle_query(&req).expect_err("rejected");
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert_eq!(err.id, 7);

        let mut req = request(spec, Policy::DataShipping, OptimizerMode::TwoPhase);
        req.loads = vec![(9, 50.0)]; // server 9 does not exist (topology 2)
        let err = service.handle_query(&req).expect_err("rejected");
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn topology_shrinks_to_small_queries() {
        let service = QueryService::new(ServerConfig {
            num_servers: 4,
            ..ServerConfig::default()
        });
        let small = WorkloadSpec::Chain {
            n: 2,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        assert_eq!(service.topology_for(&small), 2);
        let big = WorkloadSpec::Chain {
            n: 10,
            selectivity: csqp_workload::MODERATE_SEL,
        };
        assert_eq!(service.topology_for(&big), 4);
        assert_eq!(service.catalog_for(&small).num_servers(), 2);
    }
}
