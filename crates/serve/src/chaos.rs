//! Chaos soak harness: drive a live server through seeded fault
//! injection and check the robustness invariants afterwards.
//!
//! The harness replays the same seeded workload mix as [`crate::load`],
//! but routes every exchange through a [`FaultPlan`]: some queries are
//! sent clean, others are truncated, corrupted, dribbled out in short
//! writes, paced, or abandoned mid-frame. Schedules run **sequentially**
//! with one outstanding query, so every server reply is a pure function
//! of `(seed, schedule, index)` — which is what makes the
//! same-seed-same-digest assertion possible even under fault injection.
//!
//! After the soak the harness polls STATS until the accounting settles,
//! asserts the conservation invariant
//! `submitted == served + rejected + errors + aborted + timed_out`, and
//! issues clean probe queries to prove no worker slot or queue permit
//! leaked.
//!
//! Determinism caveat: the reply digest is reproducible when
//! `deadline_ms` is `None` (no deadline) or `Some(0)` (every query
//! expires at admission). Intermediate deadlines race the actual
//! planning time and make replies timing-dependent.
//!
//! Reply-path faults: when the server under test is configured with
//! [`crate::ServerConfig::reply_faults`] =
//! `FaultPlan::new(cfg.seed, cfg.intensity)` and the soak sets
//! [`ChaosConfig::reply_faults`], the harness expects some replies to
//! arrive truncated or corrupted. A reply that no longer decodes counts
//! as *mangled* — folded into the digest as a deterministic marker (the
//! typed decode error is itself pure in the seed) — and the harness
//! reconnects. The accounting invariant widens to
//! `replies + dropped + mangled == sent`.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use csqp_net::chaos::{
    corrupt_frame, truncate_frame, FaultPlan, FaultyStream, QueryFault, ReplyFault, WritePacing,
};
use csqp_simkernel::rng::SimRng;

use crate::load::{nth_request, LoadConfig};
use crate::proto::{
    read_frame, write_frame, ErrorCode, Frame, Hello, StatsSnapshot, WireError, HEADER_LEN,
};
use crate::server::fnv1a;

/// Client-side read timeout during the soak; `read_frame` rides these as
/// typed [`WireError::TimedOut`] and the harness retries up to
/// [`REPLY_BUDGET`].
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Longest the harness waits for any single reply before declaring the
/// exchange dead and reconnecting.
const REPLY_BUDGET: Duration = Duration::from_secs(10);

/// Chunk size for the short-write fault: small enough to split every
/// frame (headers alone are 12 bytes) without making the soak crawl.
const SHORT_WRITE_CHUNK: usize = 3;

/// Pause length for the pacing faults, in milliseconds.
const PAUSE_MS: u64 = 2;

/// What the chaos soak should do.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Master seed: fixes the workload mix *and* the fault schedule.
    pub seed: u64,
    /// Sequential fault schedules (logical clients) to run.
    pub schedules: u64,
    /// Queries per schedule.
    pub queries_per_schedule: u64,
    /// Probability in `[0, 1]` that an exchange draws a fault.
    pub intensity: f64,
    /// Per-query deadline forwarded to the server; see the module-level
    /// determinism caveat.
    pub deadline_ms: Option<u64>,
    /// How long to wait for the server's accounting to settle after the
    /// soak before declaring a leak.
    pub settle_timeout: Duration,
    /// The server under test injects reply-path faults from
    /// `FaultPlan::new(seed, intensity)` — the *same* plan this soak
    /// derives — so undecodable replies are expected, counted as
    /// mangled, and predicted for the post-soak probes.
    pub reply_faults: bool,
    /// The server under test injects catalog-propagation faults from
    /// `FaultPlan::new(seed, intensity)` (see
    /// [`crate::ServerConfig::catalog_faults`]): withheld refreshes,
    /// torn and reordered epoch deliveries, poisoned cached-fraction
    /// snapshots. Stale-catalog rejects and QS downgrades are then
    /// expected, and the caller should audit the recorded drift trace
    /// with `csqp_verify::catalog::check_drift` after the soak.
    pub catalog_faults: bool,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            addr: "127.0.0.1:7878".to_string(),
            seed: 0xFA17,
            schedules: 4,
            queries_per_schedule: 24,
            intensity: 0.4,
            deadline_ms: None,
            settle_timeout: Duration::from_secs(10),
            reply_faults: false,
            catalog_faults: false,
        }
    }
}

/// What a chaos soak observed.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Exchanges attempted (`schedules * queries_per_schedule`).
    pub queries_sent: u64,
    /// Exchanges that produced a typed reply frame.
    pub replies: u64,
    /// Exchanges dropped on purpose or closed by the server mid-exchange.
    pub dropped: u64,
    /// Exchanges that drew a non-`None` fault.
    pub faults: u64,
    /// Client-side I/O failures during fault application (the soak
    /// continues past them; a healthy server keeps this at zero).
    pub client_errors: u64,
    /// Replies the server mangled on purpose (reply-path fault plan):
    /// the frame arrived truncated or undecodable. Zero unless
    /// [`ChaosConfig::reply_faults`] is set.
    pub mangled: u64,
    /// Order-independent checksum over `(schedule, index, reply frame)`.
    pub digest: u64,
    /// Server STATS after the settle loop.
    pub stats: StatsSnapshot,
    /// Whether `submitted == served + rejected + errors + aborted +
    /// timed_out` held within the settle timeout.
    pub conservation: bool,
    /// Whether every clean post-soak probe query was served — the
    /// no-leaked-worker check.
    pub probes_ok: bool,
}

impl ChaosReport {
    /// True when every robustness invariant held.
    pub fn healthy(&self) -> bool {
        self.conservation && self.probes_ok && self.client_errors == 0
    }

    /// Render the human report printed by `csqp-load --chaos`.
    pub fn render(&self) -> String {
        format!(
            "exchanges {}\nreplies   {}\ndropped   {}\nmangled   {}\nfaults    {}\nclient-io-errors {}\nserver    submitted {}  served {}  rejected {}  errors {}  aborted {}  timed-out {}  degraded {}\nconservation {}\nprobes    {}\ndigest    {:016x}",
            self.queries_sent,
            self.replies,
            self.dropped,
            self.mangled,
            self.faults,
            self.client_errors,
            self.stats.submitted,
            self.stats.queries_served,
            self.stats.rejected,
            self.stats.errors,
            self.stats.aborted,
            self.stats.timed_out,
            self.stats.degraded,
            if self.conservation { "ok" } else { "VIOLATED" },
            if self.probes_ok { "ok" } else { "FAILED" },
            self.digest
        )
    }
}

/// Open a soak connection: connect, set timeouts, shake hands.
fn open(addr: &str) -> Result<TcpStream, WireError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    write_frame(
        &mut stream,
        &Frame::Hello(Hello {
            client: "csqp-chaos".to_string(),
        }),
    )?;
    match read_reply(&mut stream)? {
        Some(Frame::HelloAck(_)) => Ok(stream),
        other => Err(WireError::Io(std::io::Error::other(format!(
            "expected HELLO-ACK, got {other:?}"
        )))),
    }
}

/// Read one reply, riding between-frame read timeouts up to
/// [`REPLY_BUDGET`]. `Ok(None)` means the server closed the connection.
fn read_reply(stream: &mut TcpStream) -> Result<Option<Frame>, WireError> {
    let give_up = Instant::now() + REPLY_BUDGET;
    loop {
        match read_frame(stream) {
            Err(WireError::TimedOut) if Instant::now() < give_up => continue,
            other => return other,
        }
    }
}

/// Send one query under `fault` and collect the reply, if the fault
/// leaves the exchange alive. `Ok(None)` means no reply is coming —
/// either because the fault dropped the connection on purpose or because
/// the server hung up.
fn apply_fault(
    stream: &mut TcpStream,
    fault: QueryFault,
    frame: &[u8],
    rng: &mut SimRng,
) -> Result<Option<Frame>, WireError> {
    match fault {
        QueryFault::None => {
            stream.write_all(frame)?;
            read_reply(stream)
        }
        QueryFault::DropBeforeSend => Ok(None),
        QueryFault::DropMidFrame => {
            // Leave the header intact so the server is mid-payload when
            // the connection dies.
            let keep = HEADER_LEN + (frame.len() - HEADER_LEN) / 2;
            stream.write_all(&frame[..keep.max(1)])?;
            stream.flush()?;
            Ok(None)
        }
        QueryFault::TruncateFrame => {
            stream.write_all(&truncate_frame(frame, rng))?;
            stream.flush()?;
            Ok(None)
        }
        QueryFault::CorruptFrame => {
            stream.write_all(&corrupt_frame(frame, HEADER_LEN, rng))?;
            read_reply(stream)
        }
        QueryFault::ShortWrites => {
            let mut paced = FaultyStream::new(
                &*stream,
                WritePacing::Chunked {
                    max_chunk: SHORT_WRITE_CHUNK,
                    pause_ms: PAUSE_MS,
                },
            );
            paced.write_all(frame)?;
            paced.flush()?;
            read_reply(stream)
        }
        QueryFault::PauseBeforeSend => {
            std::thread::sleep(Duration::from_millis(PAUSE_MS));
            stream.write_all(frame)?;
            read_reply(stream)
        }
        QueryFault::SlowConsume => {
            stream.write_all(frame)?;
            std::thread::sleep(Duration::from_millis(PAUSE_MS));
            read_reply(stream)
        }
        QueryFault::DisconnectAfterSubmit => {
            // The whole frame lands, so the server admits and runs the
            // query — then the requester vanishes without reading the
            // reply, exercising abort accounting on the completion path.
            stream.write_all(frame)?;
            stream.flush()?;
            Ok(None)
        }
    }
}

/// Fold one reply into the order-independent soak digest.
fn fold_reply(digest: u64, schedule: u64, index: u64, reply: &Frame) -> u64 {
    let payload = reply.encode();
    let mut keyed = Vec::with_capacity(16 + payload.len());
    keyed.extend_from_slice(&schedule.to_be_bytes());
    keyed.extend_from_slice(&index.to_be_bytes());
    keyed.extend_from_slice(&payload);
    digest.wrapping_add(fnv1a(&keyed))
}

/// Fold a mangled reply into the digest: the typed decode error is pure
/// in the seed (same truncation point, same flipped byte), so its
/// display string is a reproducible stand-in for the frame bytes.
fn fold_marker(digest: u64, schedule: u64, index: u64, label: &str) -> u64 {
    let mut keyed = Vec::with_capacity(16 + label.len());
    keyed.extend_from_slice(&schedule.to_be_bytes());
    keyed.extend_from_slice(&index.to_be_bytes());
    keyed.extend_from_slice(label.as_bytes());
    digest.wrapping_add(fnv1a(&keyed))
}

/// True when a read failure looks like a server-mangled reply (framing
/// or payload decode error) rather than a transport failure. Only
/// consulted when [`ChaosConfig::reply_faults`] is set.
fn is_mangled(e: &WireError) -> bool {
    matches!(
        e,
        WireError::BadMagic(_)
            | WireError::BadVersion(_)
            | WireError::UnknownKind(_)
            | WireError::Oversized(_)
            | WireError::Truncated { .. }
            | WireError::Payload(_)
    )
}

/// Poll STATS until the conservation invariant settles (pipeline fully
/// drained) or the timeout passes. Returns the last snapshot and whether
/// it settled.
fn settle(stream: &mut TcpStream, timeout: Duration) -> Result<(StatsSnapshot, bool), WireError> {
    let give_up = Instant::now() + timeout;
    loop {
        write_frame(stream, &Frame::StatsRequest)?;
        let stats = match read_reply(stream)? {
            Some(Frame::Stats(s)) => s,
            other => {
                return Err(WireError::Io(std::io::Error::other(format!(
                    "expected STATS, got {other:?}"
                ))));
            }
        };
        let settled = stats.submitted
            == stats.queries_served
                + stats.rejected
                + stats.errors
                + stats.aborted
                + stats.timed_out;
        if settled || Instant::now() >= give_up {
            return Ok((stats, settled));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Run the soak: apply the seeded fault schedule, then settle and probe.
///
/// Connection-level failures of the *harness itself* (the settle/probe
/// connection dying, a missing server) surface as `Err`; everything the
/// fault schedule provokes is counted in the report.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, WireError> {
    let plan = FaultPlan::new(cfg.seed, cfg.intensity);
    let mix = LoadConfig {
        addr: cfg.addr.clone(),
        seed: cfg.seed,
        deadline_ms: cfg.deadline_ms,
        ..LoadConfig::default()
    };
    let mut replies = 0u64;
    let mut dropped = 0u64;
    let mut faults = 0u64;
    let mut client_errors = 0u64;
    let mut mangled = 0u64;
    let mut digest = 0u64;
    for schedule in 0..cfg.schedules {
        let mut conn: Option<TcpStream> = None;
        for index in 0..cfg.queries_per_schedule {
            let fault = plan.fault_for(schedule, index);
            if fault != QueryFault::None {
                faults += 1;
            }
            // Separate derivation stream for the byte mutations, so they
            // do not replay the draws `fault_for` already consumed.
            let mut mutate = plan.rng_for(schedule, index).derive(1);
            let frame = Frame::Query(nth_request(&mix, schedule, index)).encode();
            let stream = match conn.as_mut() {
                Some(s) => s,
                None => conn.insert(open(&cfg.addr)?),
            };
            match apply_fault(stream, fault, &frame, &mut mutate) {
                Ok(Some(reply)) => {
                    replies += 1;
                    digest = fold_reply(digest, schedule, index, &reply);
                    // A BadFrame reply means the server no longer trusts
                    // this byte stream and has hung up.
                    let hung_up = matches!(
                        &reply,
                        Frame::Error(e) if e.code == ErrorCode::BadFrame
                    );
                    if hung_up || fault.drops_connection() {
                        conn = None;
                    }
                }
                Ok(None) => {
                    dropped += 1;
                    conn = None;
                }
                Err(e) if cfg.reply_faults && is_mangled(&e) => {
                    // The server mangled this reply on purpose. The
                    // stream may be mid-frame (truncation), so start
                    // fresh; the typed error is seeded-deterministic
                    // and stands in for the frame in the digest.
                    mangled += 1;
                    digest = fold_marker(digest, schedule, index, &e.to_string());
                    conn = None;
                }
                Err(_) => {
                    client_errors += 1;
                    conn = None;
                }
            }
        }
        if let Some(mut s) = conn.take() {
            let _ = write_frame(&mut s, &Frame::Bye);
        }
    }
    // Settle, then prove the pool still serves clean traffic.
    let mut stream = open(&cfg.addr)?;
    let (stats, conservation) = settle(&mut stream, cfg.settle_timeout)?;
    let probe_mix = LoadConfig {
        seed: cfg.seed,
        deadline_ms: None,
        ..LoadConfig::default()
    };
    let mut probes_ok = true;
    for i in 0..4 {
        let req = nth_request(&probe_mix, cfg.schedules, i);
        let expect_clean = !cfg.reply_faults || plan.reply_fault_for(req.seed) == ReplyFault::None;
        write_frame(&mut stream, &Frame::Query(req))?;
        if expect_clean {
            match read_reply(&mut stream)? {
                Some(Frame::Result(_)) => {}
                // With catalog faults armed, a probe whose seed draws a
                // withheld refresh on a QS request is *correctly*
                // rejected with a retry hint — that typed outcome is the
                // degradation lattice working, not a leaked worker.
                Some(Frame::Error(e))
                    if cfg.catalog_faults && e.code == ErrorCode::StaleCatalog => {}
                _ => probes_ok = false,
            }
        } else {
            // The reply plan predicts a mangled reply for this probe's
            // seed: any decode failure — or a corrupt frame that still
            // happens to decode — is the correct outcome. The stream
            // may be mid-frame afterwards, so probe on a fresh one.
            let _ = read_reply(&mut stream);
            stream = open(&cfg.addr)?;
        }
    }
    let _ = write_frame(&mut stream, &Frame::Bye);
    Ok(ChaosReport {
        queries_sent: cfg.schedules * cfg.queries_per_schedule,
        replies,
        dropped,
        faults,
        client_errors,
        mangled,
        digest,
        stats,
        conservation,
        probes_ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};

    fn spawn_server() -> crate::server::ServerHandle {
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 8,
            ..ServerConfig::default()
        };
        Server::bind(config)
            .expect("bind loopback")
            .spawn()
            .expect("spawn server")
    }

    #[test]
    fn short_soak_holds_all_invariants() {
        let server = spawn_server();
        let cfg = ChaosConfig {
            addr: server.addr().to_string(),
            schedules: 2,
            queries_per_schedule: 8,
            intensity: 0.6,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg).expect("soak completes");
        assert_eq!(report.queries_sent, 16);
        assert!(
            report.conservation,
            "accounting must settle:\n{}",
            report.render()
        );
        assert!(
            report.probes_ok,
            "workers must survive:\n{}",
            report.render()
        );
        assert_eq!(report.client_errors, 0);
        assert!(
            report.faults > 0,
            "intensity 0.6 over 16 draws injects something"
        );
        server.shutdown();
    }

    #[test]
    fn reply_fault_soak_accounts_every_exchange() {
        let seed = 0xFEED_FACE;
        let intensity = 0.7;
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 8,
            reply_faults: Some(FaultPlan::new(seed, intensity)),
            ..ServerConfig::default()
        };
        let server = Server::bind(config)
            .expect("bind loopback")
            .spawn()
            .expect("spawn server");
        let cfg = ChaosConfig {
            addr: server.addr().to_string(),
            seed,
            intensity,
            schedules: 2,
            queries_per_schedule: 10,
            reply_faults: true,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg).expect("soak completes");
        assert!(
            report.mangled > 0,
            "intensity 0.7 mangles something in 20 replies:\n{}",
            report.render()
        );
        assert_eq!(
            report.replies + report.dropped + report.mangled,
            report.queries_sent,
            "every exchange lands in exactly one bucket:\n{}",
            report.render()
        );
        assert!(
            report.healthy(),
            "server stays healthy:\n{}",
            report.render()
        );
        // Mangled replies are deterministic too: same seed, same digest.
        let again = run_chaos(&cfg).expect("second soak");
        assert_eq!(report.digest, again.digest);
        assert_eq!(report.mangled, again.mangled);
        server.shutdown();
    }

    #[test]
    fn same_seed_same_digest() {
        let server = spawn_server();
        let cfg = ChaosConfig {
            addr: server.addr().to_string(),
            schedules: 2,
            queries_per_schedule: 6,
            intensity: 0.5,
            ..ChaosConfig::default()
        };
        let a = run_chaos(&cfg).expect("first soak");
        let b = run_chaos(&cfg).expect("second soak");
        assert_eq!(a.digest, b.digest, "replies are pure in the seed");
        assert_eq!(a.replies, b.replies);
        assert_eq!(a.dropped, b.dropped);
        server.shutdown();
    }
}
