//! The length-prefixed binary wire protocol.
//!
//! Every frame is a fixed 12-byte header followed by a compact-JSON
//! payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"CSQP"
//! 4       2     protocol version, big-endian (currently 1)
//! 6       1     frame kind (see [`FrameKind`])
//! 7       1     reserved, must be 0
//! 8       4     payload length in bytes, big-endian (≤ 1 MiB)
//! ```
//!
//! | kind | frame      | direction | payload                                  |
//! |------|------------|-----------|------------------------------------------|
//! | 1    | HELLO      | c → s     | client name                              |
//! | 2    | HELLO-ACK  | s → c     | server name, topology size               |
//! | 3    | QUERY      | c → s     | workload spec + cache state + policy …   |
//! | 4    | RESULT     | s → c     | figure-style result record               |
//! | 5    | ERROR      | s → c     | typed code, message, optional retry-after|
//! | 6    | STATS-REQ  | c → s     | (empty object)                           |
//! | 7    | STATS      | s → c     | [`StatsSnapshot`]                        |
//! | 8    | BYE        | c → s     | (empty object)                           |
//!
//! Decoding is total: every malformed input — truncated buffer, wrong
//! magic, unsupported version, oversized length, unknown kind, garbage
//! payload — maps to a typed [`WireError`], never a panic.

use std::fmt;
use std::io::{Read, Write};

use csqp_core::Policy;
use csqp_cost::Objective;
use csqp_engine::LinkStats;
use csqp_json::{obj, Json, JsonError};
use csqp_workload::WorkloadSpec;

/// Protocol magic, first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"CSQP";

/// Current protocol version.
pub const PROTOCOL_VERSION: u16 = 1;

/// Frame header size in bytes.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a payload; larger lengths are rejected before any
/// allocation happens.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Integers on the wire are JSON numbers (IEEE-754 doubles), so `id` and
/// `seed` fields are constrained to values a double represents exactly.
/// Decoding rejects anything at or above this bound rather than silently
/// rounding it.
pub const MAX_SAFE_INT: u64 = 1 << 53;

/// Frame discriminator (byte 6 of the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Session opener, client → server.
    Hello = 1,
    /// Session acknowledgement, server → client.
    HelloAck = 2,
    /// One query request.
    Query = 3,
    /// The result record of one query.
    Result = 4,
    /// A typed error (request- or session-scoped).
    Error = 5,
    /// Request for a metrics snapshot.
    StatsRequest = 6,
    /// A [`StatsSnapshot`].
    Stats = 7,
    /// Orderly session close, client → server.
    Bye = 8,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::Hello,
            2 => FrameKind::HelloAck,
            3 => FrameKind::Query,
            4 => FrameKind::Result,
            5 => FrameKind::Error,
            6 => FrameKind::StatsRequest,
            7 => FrameKind::Stats,
            8 => FrameKind::Bye,
            _ => return None,
        })
    }
}

/// Everything that can go wrong reading a frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The header names a protocol version this build does not speak.
    BadVersion(u16),
    /// The header names an unknown frame kind.
    UnknownKind(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The buffer ended before the declared frame did.
    Truncated {
        /// Bytes the frame needed.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The payload is not the JSON document the frame kind requires.
    Payload(JsonError),
    /// The stream's read timeout fired and no frame is in progress (or a
    /// partial frame stayed stalled past the resume budget). Unlike
    /// [`WireError::Io`], this is not fatal: the caller may simply try
    /// again.
    TimedOut,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (want {PROTOCOL_VERSION})"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversized(n) => {
                write!(f, "payload length {n} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: need {expected} bytes, have {got}")
            }
            WireError::Payload(e) => write!(f, "bad payload: {e}"),
            WireError::TimedOut => write!(f, "read timed out with no complete frame"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> WireError {
        WireError::Payload(e)
    }
}

/// How the server chooses a plan for a request (§3.1.1 vs §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerMode {
    /// Full two-phase (II + SA) optimization per request.
    TwoPhase,
    /// §5's 2-step strategy: the join order is compiled once per query
    /// shape (and cached); each request only runs runtime site selection
    /// against the current catalog + the client's declared cache state.
    TwoStep,
}

impl OptimizerMode {
    fn as_str(self) -> &'static str {
        match self {
            OptimizerMode::TwoPhase => "two-phase",
            OptimizerMode::TwoStep => "two-step",
        }
    }

    fn parse(s: &str) -> Result<OptimizerMode, JsonError> {
        match s {
            "two-phase" => Ok(OptimizerMode::TwoPhase),
            "two-step" => Ok(OptimizerMode::TwoStep),
            _ => Err(JsonError::decode(
                "optimizer",
                "expected \"two-phase\" or \"two-step\"",
            )),
        }
    }
}

fn policy_to_str(p: Policy) -> &'static str {
    p.short()
}

fn policy_parse(s: &str) -> Result<Policy, JsonError> {
    match s {
        "DS" => Ok(Policy::DataShipping),
        "QS" => Ok(Policy::QueryShipping),
        "HY" => Ok(Policy::HybridShipping),
        _ => Err(JsonError::decode(
            "policy",
            "expected \"DS\", \"QS\" or \"HY\"",
        )),
    }
}

fn objective_to_str(o: Objective) -> &'static str {
    match o {
        Objective::Communication => "communication",
        Objective::ResponseTime => "response-time",
        Objective::TotalCost => "total-cost",
    }
}

fn objective_parse(s: &str) -> Result<Objective, JsonError> {
    match s {
        "communication" => Ok(Objective::Communication),
        "response-time" => Ok(Objective::ResponseTime),
        "total-cost" => Ok(Objective::TotalCost),
        _ => Err(JsonError::decode(
            "objective",
            "expected \"communication\", \"response-time\" or \"total-cost\"",
        )),
    }
}

fn u64_of(doc: &Json, k: &str) -> Result<u64, JsonError> {
    doc.field(k)?
        .as_u64()
        .ok_or_else(|| JsonError::decode(k, "expected a non-negative integer"))
}

/// A u64 counter that older peers may omit entirely (defaults to 0).
fn u64_opt_of(doc: &Json, k: &str) -> Result<u64, JsonError> {
    match doc.get(k) {
        None => Ok(0),
        Some(_) => u64_of(doc, k),
    }
}

/// A u64 that must survive the f64 wire representation exactly.
fn safe_u64_of(doc: &Json, k: &str) -> Result<u64, JsonError> {
    let v = u64_of(doc, k)?;
    if v >= MAX_SAFE_INT {
        return Err(JsonError::decode(
            k,
            "must be below 2^53 (the JSON-exact integer range)",
        ));
    }
    Ok(v)
}

fn f64_of(doc: &Json, k: &str) -> Result<f64, JsonError> {
    doc.field(k)?
        .as_f64()
        .ok_or_else(|| JsonError::decode(k, "expected a number"))
}

fn str_of<'a>(doc: &'a Json, k: &str) -> Result<&'a str, JsonError> {
    doc.field(k)?
        .as_str()
        .ok_or_else(|| JsonError::decode(k, "expected a string"))
}

fn f64_arr_of(doc: &Json, k: &str) -> Result<Vec<f64>, JsonError> {
    doc.field(k)?
        .as_arr()
        .ok_or_else(|| JsonError::decode(k, "expected an array"))?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| JsonError::decode(k, "expected numbers"))
        })
        .collect()
}

/// Session opener.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// Free-form client identifier (shows up in server logs).
    pub client: String,
}

/// Session acknowledgement.
#[derive(Debug, Clone, PartialEq)]
pub struct HelloAck {
    /// Free-form server identifier.
    pub server: String,
    /// Number of data servers in the hosted topology.
    pub num_servers: u32,
    /// Largest number of QUERY frames the client may have outstanding on
    /// this session before reading replies (the server's configured
    /// window, capped so the session machine stays finite — see
    /// `csqp_verify::protocol::MAX_SERIALS`). A QUERY past the window is
    /// rejected with a `saturated` ERROR. Absent on the wire means 1, so
    /// pre-pipelining peers interoperate.
    pub pipeline_depth: u32,
}

/// One query request: the workload spec, the client's declared cache
/// state, and the optimization directives.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Client-chosen request id, echoed in the RESULT / ERROR frame.
    /// Must be below [`MAX_SAFE_INT`].
    pub id: u64,
    /// The query shape to run.
    pub spec: WorkloadSpec,
    /// Declared client cache state: fraction of each relation cached at
    /// the client, indexed by relation id. May be shorter than the
    /// relation count (missing entries mean uncached).
    pub cache: Vec<f64>,
    /// Execution policy for site selection (Table 1).
    pub policy: Policy,
    /// Metric the optimizer minimizes.
    pub objective: Objective,
    /// Per-request or precompiled planning.
    pub optimizer: OptimizerMode,
    /// Seed for the optimizer's randomized search and the simulation.
    /// Must be below [`MAX_SAFE_INT`].
    pub seed: u64,
    /// External random-read loads: `(server index ≥ 1, requests/sec)`.
    pub loads: Vec<(u32, f64)>,
    /// Wall-clock budget for the whole request (queue wait + planning +
    /// simulation), in milliseconds. `None` means no deadline. Omitted
    /// from the wire when absent, so un-deadlined requests encode exactly
    /// as in protocol version 1's first release.
    pub deadline_ms: Option<u64>,
    /// Relations (by index into the spec's relation list) whose join
    /// attribute the client declares a unary key — the input of the
    /// bounds analyzer. Strictly ascending, each index below the spec's
    /// relation count (validated at decode). `None` means "derive the
    /// keys the spec's own selectivities imply" and is omitted from the
    /// wire, so keyless requests encode exactly as before and old peers
    /// decoding a keyed request simply ignore the field — both sides
    /// stay sound, because the server re-audits every declaration
    /// against the statistics before believing it.
    pub keys: Option<Vec<u32>>,
}

/// Why the server degraded a request's policy to query shipping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The admission queue was past its high-water mark; QS plans ship
    /// the least state and free the worker fastest.
    Saturated,
    /// The declared client cache was unusable (e.g. longer than the
    /// query's relation list), so cache-dependent DS/HY plans had
    /// nothing sound to bind against.
    CacheUnusable,
    /// The shard's catalog replica was beyond the configured
    /// `max_epoch_lag` staleness bound (or its cached-fraction state was
    /// poisoned) and could not refresh in time; QS plans never price the
    /// client cache, so they stay sound under stale fractions.
    StaleCatalog,
    /// The chosen plan's guaranteed worst-case client-memory footprint
    /// exceeded the server's `--mem-budget`; QS plans join at the
    /// servers, so their footprint is the result bound alone.
    MemBound,
}

impl DegradeReason {
    fn as_str(self) -> &'static str {
        match self {
            DegradeReason::Saturated => "saturated",
            DegradeReason::CacheUnusable => "cache-unusable",
            DegradeReason::StaleCatalog => "stale-catalog",
            DegradeReason::MemBound => "mem-bound",
        }
    }

    fn parse(s: &str) -> Result<DegradeReason, JsonError> {
        Ok(match s {
            "saturated" => DegradeReason::Saturated,
            "cache-unusable" => DegradeReason::CacheUnusable,
            "stale-catalog" => DegradeReason::StaleCatalog,
            "mem-bound" => DegradeReason::MemBound,
            _ => return Err(JsonError::decode("degrade_reason", "unknown reason")),
        })
    }
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The figure-style record of one executed query: response time,
/// per-resource utilization, and wire traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRecord {
    /// Echo of the request id.
    pub id: u64,
    /// Elapsed simulated time until the last tuple displayed (§3.1.2).
    pub response_secs: f64,
    /// Data pages shipped (§4.1's communication metric).
    pub pages_sent: u64,
    /// Control messages shipped.
    pub control_msgs: u64,
    /// Total bytes on the wire.
    pub bytes_sent: u64,
    /// Wire utilization over the run.
    pub link_utilization: f64,
    /// Per-site disk utilization, index 0 = client.
    pub disk_utilization: Vec<f64>,
    /// Per-site CPU busy seconds, index 0 = client.
    pub cpu_secs: Vec<f64>,
    /// Tuples displayed at the client.
    pub result_tuples: u64,
    /// When the server degraded the requested policy to query shipping
    /// (Table 1 makes QS legal for every query), the policy originally
    /// requested. Omitted from the wire when the request ran as asked.
    pub degraded_from: Option<Policy>,
    /// Why the policy was degraded; present exactly when
    /// `degraded_from` is.
    pub degrade_reason: Option<DegradeReason>,
}

impl ResultRecord {
    /// Wire counters as the typed [`LinkStats`] record.
    pub fn wire(&self) -> LinkStats {
        LinkStats {
            data_pages_sent: self.pages_sent,
            control_msgs_sent: self.control_msgs,
            bytes_sent: self.bytes_sent,
        }
    }
}

/// Typed error codes carried by ERROR frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame could not be decoded (the session is then closed).
    BadFrame,
    /// The request decoded but referenced impossible parameters.
    BadRequest,
    /// The admission queue is full; retry after the hinted delay.
    Saturated,
    /// The planner produced a plan that violates Table 1 — a server-side
    /// optimizer bug caught by the conformance lint, never executed.
    PolicyViolation,
    /// The plan could not be bound or executed.
    ExecutionFailed,
    /// The server is shutting down.
    ShuttingDown,
    /// The request's `deadline_ms` budget expired before the result was
    /// ready; the work was abandoned at the next cancellation probe.
    DeadlineExceeded,
    /// The request was abandoned for a non-deadline reason (the client
    /// vanished, the server shut down mid-flight).
    Aborted,
    /// The shard's catalog replica was beyond the staleness bound, a
    /// refresh was unavailable, and the query was already QS (no
    /// degradation left to take); retry after the hinted delay, by which
    /// time a refresh should have landed.
    StaleCatalog,
    /// Even the query-shipping fallback's guaranteed worst-case result
    /// footprint exceeds the server's memory budget, so no sound plan
    /// fits; retry after the hinted delay (the budget is contended, not
    /// constant).
    MemBoundExceeded,
}

impl ErrorCode {
    fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Saturated => "saturated",
            ErrorCode::PolicyViolation => "policy-violation",
            ErrorCode::ExecutionFailed => "execution-failed",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Aborted => "aborted",
            ErrorCode::StaleCatalog => "stale-catalog",
            ErrorCode::MemBoundExceeded => "mem-bound-exceeded",
        }
    }

    fn parse(s: &str) -> Result<ErrorCode, JsonError> {
        Ok(match s {
            "bad-frame" => ErrorCode::BadFrame,
            "bad-request" => ErrorCode::BadRequest,
            "saturated" => ErrorCode::Saturated,
            "policy-violation" => ErrorCode::PolicyViolation,
            "execution-failed" => ErrorCode::ExecutionFailed,
            "shutting-down" => ErrorCode::ShuttingDown,
            "deadline-exceeded" => ErrorCode::DeadlineExceeded,
            "aborted" => ErrorCode::Aborted,
            "stale-catalog" => ErrorCode::StaleCatalog,
            "mem-bound-exceeded" => ErrorCode::MemBoundExceeded,
            _ => return Err(JsonError::decode("code", "unknown error code")),
        })
    }
}

/// A typed error reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFrame {
    /// The request id this error answers (0 for session-level errors).
    pub id: u64,
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Backpressure hint: retry after this many milliseconds.
    pub retry_after_ms: Option<u64>,
}

/// A point-in-time server metrics snapshot (the STATS frame).
///
/// The accounting invariant the chaos harness asserts after every soak:
/// `submitted == queries_served + rejected + errors + aborted +
/// timed_out` — every admitted query ends in exactly one bucket.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// QUERY frames decoded and handed to admission control.
    pub submitted: u64,
    /// Queries executed to completion.
    pub queries_served: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests that failed with a non-reject error.
    pub errors: u64,
    /// Requests abandoned mid-flight (client vanished, server shut down).
    pub aborted: u64,
    /// Requests whose `deadline_ms` expired before completion.
    pub timed_out: u64,
    /// Requests served after a policy downgrade to query shipping.
    pub degraded: u64,
    /// Served queries per policy, in `[DS, QS, HY]` order.
    pub per_policy: [u64; 3],
    /// Median service latency (queue wait + planning + simulation), ms.
    pub p50_ms: f64,
    /// 95th-percentile service latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile service latency, ms.
    pub p99_ms: f64,
    /// Wire traffic simulated on behalf of clients, summed over queries.
    pub wire: LinkStats,
    /// Site-selection memo hits (two-step requests served from the memo).
    pub memo_hits: u64,
    /// Site-selection memo misses (optimized cold and installed).
    pub memo_misses: u64,
    /// Memo entries evicted under the byte budget.
    pub memo_evictions: u64,
    /// Estimated resident bytes in the memo table.
    pub memo_bytes: u64,
    /// Newest catalog epoch the coordinator has published (0 when
    /// catalog drift is not being injected).
    pub catalog_epoch: u64,
    /// Catalog-replica refreshes that applied cleanly.
    pub catalog_refreshes: u64,
    /// Queries downgraded to QS with the `stale-catalog` reason.
    pub catalog_stale_degraded: u64,
    /// Queries rejected with the typed `stale-catalog` error.
    pub catalog_stale_rejected: u64,
    /// Reordered (older) epoch deliveries the replicas' regression
    /// guards rejected.
    pub catalog_epoch_regressions: u64,
    /// The largest replica epoch lag observed at any serve decision.
    pub catalog_max_lag: u64,
    /// Queries served after a `mem-bound` downgrade to QS: the chosen
    /// plan's worst-case footprint exceeded the memory budget but the
    /// QS fallback fit.
    pub mem_bound_degraded: u64,
    /// Queries rejected with the typed `mem-bound-exceeded` error: even
    /// the QS fallback's guaranteed footprint exceeded the budget.
    pub mem_bound_rejected: u64,
    /// Reactor wait syscalls (`poll`/`epoll_wait`) across all shards.
    pub reactor_wait_calls: u64,
    /// Reactor interest-mutation syscalls (`epoll_ctl`) across all
    /// shards; always zero under the `poll` backend.
    pub reactor_ctl_calls: u64,
    /// Readiness events dispatched to shard event loops.
    pub reactor_events_dispatched: u64,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Session opener.
    Hello(Hello),
    /// Session acknowledgement.
    HelloAck(HelloAck),
    /// A query request.
    Query(QueryRequest),
    /// A query result.
    Result(ResultRecord),
    /// A typed error.
    Error(ErrorFrame),
    /// Metrics snapshot request.
    StatsRequest,
    /// Metrics snapshot reply.
    Stats(StatsSnapshot),
    /// Orderly close.
    Bye,
}

impl Frame {
    /// The header discriminator for this frame.
    pub fn kind(&self) -> FrameKind {
        match self {
            Frame::Hello(_) => FrameKind::Hello,
            Frame::HelloAck(_) => FrameKind::HelloAck,
            Frame::Query(_) => FrameKind::Query,
            Frame::Result(_) => FrameKind::Result,
            Frame::Error(_) => FrameKind::Error,
            Frame::StatsRequest => FrameKind::StatsRequest,
            Frame::Stats(_) => FrameKind::Stats,
            Frame::Bye => FrameKind::Bye,
        }
    }

    /// The JSON payload of this frame.
    pub fn payload(&self) -> Json {
        match self {
            Frame::Hello(h) => obj(vec![("client", Json::from(h.client.clone()))]),
            Frame::HelloAck(a) => obj(vec![
                ("server", Json::from(a.server.clone())),
                ("num_servers", Json::from(a.num_servers)),
                ("pipeline_depth", Json::from(a.pipeline_depth)),
            ]),
            Frame::Query(q) => {
                let mut fields = vec![
                    ("id", Json::from(q.id)),
                    ("spec", q.spec.to_json()),
                    (
                        "cache",
                        Json::Arr(q.cache.iter().map(|&f| Json::from(f)).collect()),
                    ),
                    ("policy", Json::from(policy_to_str(q.policy))),
                    ("objective", Json::from(objective_to_str(q.objective))),
                    ("optimizer", Json::from(q.optimizer.as_str())),
                    ("seed", Json::from(q.seed)),
                    (
                        "loads",
                        Json::Arr(
                            q.loads
                                .iter()
                                .map(|&(site, rate)| {
                                    obj(vec![
                                        ("server", Json::from(site)),
                                        ("rate_per_sec", Json::from(rate)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ];
                if let Some(ms) = q.deadline_ms {
                    fields.push(("deadline_ms", Json::from(ms)));
                }
                if let Some(keys) = &q.keys {
                    fields.push((
                        "keys",
                        Json::Arr(keys.iter().map(|&k| Json::from(k)).collect()),
                    ));
                }
                obj(fields)
            }
            Frame::Result(r) => {
                let mut fields = vec![
                    ("id", Json::from(r.id)),
                    ("response_secs", Json::from(r.response_secs)),
                    ("pages_sent", Json::from(r.pages_sent)),
                    ("control_msgs", Json::from(r.control_msgs)),
                    ("bytes_sent", Json::from(r.bytes_sent)),
                    ("link_utilization", Json::from(r.link_utilization)),
                    (
                        "disk_utilization",
                        Json::Arr(r.disk_utilization.iter().map(|&v| Json::from(v)).collect()),
                    ),
                    (
                        "cpu_secs",
                        Json::Arr(r.cpu_secs.iter().map(|&v| Json::from(v)).collect()),
                    ),
                    ("result_tuples", Json::from(r.result_tuples)),
                ];
                if let Some(p) = r.degraded_from {
                    fields.push(("degraded_from", Json::from(policy_to_str(p))));
                }
                if let Some(reason) = r.degrade_reason {
                    fields.push(("degrade_reason", Json::from(reason.as_str())));
                }
                obj(fields)
            }
            Frame::Error(e) => {
                let mut fields = vec![
                    ("id", Json::from(e.id)),
                    ("code", Json::from(e.code.as_str())),
                    ("message", Json::from(e.message.clone())),
                ];
                if let Some(ms) = e.retry_after_ms {
                    fields.push(("retry_after_ms", Json::from(ms)));
                }
                obj(fields)
            }
            Frame::StatsRequest | Frame::Bye => obj(vec![]),
            Frame::Stats(s) => obj(vec![
                ("submitted", Json::from(s.submitted)),
                ("queries_served", Json::from(s.queries_served)),
                ("rejected", Json::from(s.rejected)),
                ("errors", Json::from(s.errors)),
                ("aborted", Json::from(s.aborted)),
                ("timed_out", Json::from(s.timed_out)),
                ("degraded", Json::from(s.degraded)),
                (
                    "per_policy",
                    Json::Arr(s.per_policy.iter().map(|&v| Json::from(v)).collect()),
                ),
                ("p50_ms", Json::from(s.p50_ms)),
                ("p95_ms", Json::from(s.p95_ms)),
                ("p99_ms", Json::from(s.p99_ms)),
                ("pages_sent", Json::from(s.wire.data_pages_sent)),
                ("control_msgs", Json::from(s.wire.control_msgs_sent)),
                ("bytes_sent", Json::from(s.wire.bytes_sent)),
                ("memo_hits", Json::from(s.memo_hits)),
                ("memo_misses", Json::from(s.memo_misses)),
                ("memo_evictions", Json::from(s.memo_evictions)),
                ("memo_bytes", Json::from(s.memo_bytes)),
                ("catalog_epoch", Json::from(s.catalog_epoch)),
                ("catalog_refreshes", Json::from(s.catalog_refreshes)),
                (
                    "catalog_stale_degraded",
                    Json::from(s.catalog_stale_degraded),
                ),
                (
                    "catalog_stale_rejected",
                    Json::from(s.catalog_stale_rejected),
                ),
                (
                    "catalog_epoch_regressions",
                    Json::from(s.catalog_epoch_regressions),
                ),
                ("catalog_max_lag", Json::from(s.catalog_max_lag)),
                ("mem_bound_degraded", Json::from(s.mem_bound_degraded)),
                ("mem_bound_rejected", Json::from(s.mem_bound_rejected)),
                ("reactor_wait_calls", Json::from(s.reactor_wait_calls)),
                ("reactor_ctl_calls", Json::from(s.reactor_ctl_calls)),
                (
                    "reactor_events_dispatched",
                    Json::from(s.reactor_events_dispatched),
                ),
            ]),
        }
    }

    /// Rebuild a frame from its kind and parsed payload.
    pub fn from_payload(kind: FrameKind, doc: &Json) -> Result<Frame, JsonError> {
        Ok(match kind {
            FrameKind::Hello => Frame::Hello(Hello {
                client: str_of(doc, "client")?.to_string(),
            }),
            FrameKind::HelloAck => Frame::HelloAck(HelloAck {
                server: str_of(doc, "server")?.to_string(),
                num_servers: u64_of(doc, "num_servers")?
                    .try_into()
                    .map_err(|_| JsonError::decode("num_servers", "out of u32 range"))?,
                pipeline_depth: match doc.get("pipeline_depth") {
                    // Pre-pipelining servers omit the field: one query at
                    // a time, the stop-and-wait semantics of protocol
                    // version 1's first release.
                    None => 1,
                    Some(_) => u64_of(doc, "pipeline_depth")?
                        .try_into()
                        .map_err(|_| JsonError::decode("pipeline_depth", "out of u32 range"))?,
                },
            }),
            FrameKind::Query => {
                let loads = doc
                    .field("loads")?
                    .as_arr()
                    .ok_or_else(|| JsonError::decode("loads", "expected an array"))?
                    .iter()
                    .map(|l| {
                        let site = u64_of(l, "server")?
                            .try_into()
                            .map_err(|_| JsonError::decode("loads.server", "out of range"))?;
                        let rate = f64_of(l, "rate_per_sec")?;
                        if !(rate.is_finite() && rate >= 0.0) {
                            return Err(JsonError::decode(
                                "loads.rate_per_sec",
                                "expected a finite non-negative rate",
                            ));
                        }
                        Ok((site, rate))
                    })
                    .collect::<Result<Vec<(u32, f64)>, JsonError>>()?;
                let cache = f64_arr_of(doc, "cache")?;
                if cache.iter().any(|f| !(0.0..=1.0).contains(f)) {
                    return Err(JsonError::decode(
                        "cache",
                        "cached fractions must be in [0, 1]",
                    ));
                }
                let spec = WorkloadSpec::from_json(doc.field("spec")?)?;
                let keys = match doc.get("keys") {
                    // Old peers omit the field: derive the implied keys.
                    None => None,
                    Some(v) => {
                        let arr = v
                            .as_arr()
                            .ok_or_else(|| JsonError::decode("keys", "expected an array"))?;
                        let num_rels = spec.num_relations() as u64;
                        let mut keys = Vec::with_capacity(arr.len());
                        for k in arr {
                            let idx = k.as_u64().ok_or_else(|| {
                                JsonError::decode("keys", "expected non-negative integers")
                            })?;
                            if idx >= num_rels {
                                return Err(JsonError::decode(
                                    "keys",
                                    "key index beyond the spec's relation count",
                                ));
                            }
                            if keys.last().is_some_and(|&last| idx <= u64::from(last)) {
                                return Err(JsonError::decode(
                                    "keys",
                                    "key indices must be strictly ascending",
                                ));
                            }
                            // Bounded by num_relations, which fits u32.
                            keys.push(idx as u32);
                        }
                        Some(keys)
                    }
                };
                Frame::Query(QueryRequest {
                    id: safe_u64_of(doc, "id")?,
                    spec,
                    cache,
                    policy: policy_parse(str_of(doc, "policy")?)?,
                    objective: objective_parse(str_of(doc, "objective")?)?,
                    optimizer: OptimizerMode::parse(str_of(doc, "optimizer")?)?,
                    seed: safe_u64_of(doc, "seed")?,
                    loads,
                    deadline_ms: match doc.get("deadline_ms") {
                        None => None,
                        Some(_) => Some(safe_u64_of(doc, "deadline_ms")?),
                    },
                    keys,
                })
            }
            FrameKind::Result => Frame::Result(ResultRecord {
                id: safe_u64_of(doc, "id")?,
                response_secs: f64_of(doc, "response_secs")?,
                pages_sent: u64_of(doc, "pages_sent")?,
                control_msgs: u64_of(doc, "control_msgs")?,
                bytes_sent: u64_of(doc, "bytes_sent")?,
                link_utilization: f64_of(doc, "link_utilization")?,
                disk_utilization: f64_arr_of(doc, "disk_utilization")?,
                cpu_secs: f64_arr_of(doc, "cpu_secs")?,
                result_tuples: u64_of(doc, "result_tuples")?,
                degraded_from: match doc.get("degraded_from") {
                    None => None,
                    Some(_) => Some(policy_parse(str_of(doc, "degraded_from")?)?),
                },
                degrade_reason: match doc.get("degrade_reason") {
                    None => None,
                    Some(_) => Some(DegradeReason::parse(str_of(doc, "degrade_reason")?)?),
                },
            }),
            FrameKind::Error => Frame::Error(ErrorFrame {
                id: safe_u64_of(doc, "id")?,
                code: ErrorCode::parse(str_of(doc, "code")?)?,
                message: str_of(doc, "message")?.to_string(),
                retry_after_ms: match doc.get("retry_after_ms") {
                    None => None,
                    Some(v) => Some(v.as_u64().ok_or_else(|| {
                        JsonError::decode("retry_after_ms", "expected a non-negative integer")
                    })?),
                },
            }),
            FrameKind::StatsRequest => Frame::StatsRequest,
            FrameKind::Stats => Frame::Stats(StatsSnapshot {
                submitted: u64_of(doc, "submitted")?,
                queries_served: u64_of(doc, "queries_served")?,
                rejected: u64_of(doc, "rejected")?,
                errors: u64_of(doc, "errors")?,
                aborted: u64_of(doc, "aborted")?,
                timed_out: u64_of(doc, "timed_out")?,
                degraded: u64_of(doc, "degraded")?,
                per_policy: {
                    let arr = doc
                        .field("per_policy")?
                        .as_arr()
                        .ok_or_else(|| JsonError::decode("per_policy", "expected an array"))?;
                    if arr.len() != 3 {
                        return Err(JsonError::decode("per_policy", "expected 3 counters"));
                    }
                    let mut out = [0u64; 3];
                    for (slot, v) in out.iter_mut().zip(arr) {
                        *slot = v.as_u64().ok_or_else(|| {
                            JsonError::decode("per_policy", "expected non-negative integers")
                        })?;
                    }
                    out
                },
                p50_ms: f64_of(doc, "p50_ms")?,
                p95_ms: f64_of(doc, "p95_ms")?,
                p99_ms: f64_of(doc, "p99_ms")?,
                wire: LinkStats {
                    data_pages_sent: u64_of(doc, "pages_sent")?,
                    control_msgs_sent: u64_of(doc, "control_msgs")?,
                    bytes_sent: u64_of(doc, "bytes_sent")?,
                },
                // Pre-memo servers omit the memo counters.
                memo_hits: u64_opt_of(doc, "memo_hits")?,
                memo_misses: u64_opt_of(doc, "memo_misses")?,
                memo_evictions: u64_opt_of(doc, "memo_evictions")?,
                memo_bytes: u64_opt_of(doc, "memo_bytes")?,
                // Pre-replication servers omit the catalog counters.
                catalog_epoch: u64_opt_of(doc, "catalog_epoch")?,
                catalog_refreshes: u64_opt_of(doc, "catalog_refreshes")?,
                catalog_stale_degraded: u64_opt_of(doc, "catalog_stale_degraded")?,
                catalog_stale_rejected: u64_opt_of(doc, "catalog_stale_rejected")?,
                catalog_epoch_regressions: u64_opt_of(doc, "catalog_epoch_regressions")?,
                catalog_max_lag: u64_opt_of(doc, "catalog_max_lag")?,
                // Pre-bounds servers omit the admission counters.
                mem_bound_degraded: u64_opt_of(doc, "mem_bound_degraded")?,
                mem_bound_rejected: u64_opt_of(doc, "mem_bound_rejected")?,
                // Pre-reactor servers omit the reactor counters.
                reactor_wait_calls: u64_opt_of(doc, "reactor_wait_calls")?,
                reactor_ctl_calls: u64_opt_of(doc, "reactor_ctl_calls")?,
                reactor_events_dispatched: u64_opt_of(doc, "reactor_events_dispatched")?,
            }),
            FrameKind::Bye => Frame::Bye,
        })
    }

    /// Serialize to header + payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload().render().into_bytes();
        debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
        out.push(self.kind() as u8);
        out.push(0);
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode one frame from a buffer that must contain it exactly (the
    /// streaming reader hands over complete frames; tests feed corrupt
    /// buffers directly).
    pub fn decode(buf: &[u8]) -> Result<Frame, WireError> {
        let (kind, payload_len) = decode_header(buf)?;
        let total = HEADER_LEN + payload_len;
        if buf.len() < total {
            return Err(WireError::Truncated {
                expected: total,
                got: buf.len(),
            });
        }
        let payload = &buf[HEADER_LEN..total];
        let text = std::str::from_utf8(payload).map_err(|_| {
            WireError::Payload(JsonError::decode("payload", "payload is not UTF-8"))
        })?;
        let doc = Json::parse(text)?;
        Ok(Frame::from_payload(kind, &doc)?)
    }
}

/// Parse and validate a header prefix; returns the frame kind and
/// payload length.
pub fn decode_header(buf: &[u8]) -> Result<(FrameKind, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            expected: HEADER_LEN,
            got: buf.len(),
        });
    }
    if buf[0..4] != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&buf[0..4]);
        return Err(WireError::BadMagic(m));
    }
    let version = u16::from_be_bytes([buf[4], buf[5]]);
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = FrameKind::from_u8(buf[6]).ok_or(WireError::UnknownKind(buf[6]))?;
    let len = u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    Ok((kind, len as usize))
}

/// Write one frame to a blocking stream.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Consecutive mid-frame read timeouts [`read_frame`] rides out before
/// giving up on a stalled peer. With the serving stack's 200 ms read
/// timeout this bounds a wedged partial frame to about a minute instead
/// of hanging the caller forever.
pub const MID_FRAME_TIMEOUT_BUDGET: u32 = 300;

/// True for the transient read errors a blocking-stream reader should
/// ride out rather than treat as a dead connection: a fired read
/// timeout (`WouldBlock` on Unix, `TimedOut` on Windows) or a signal
/// interruption.
fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::Interrupted
    )
}

/// Read one complete frame from a blocking stream. An EOF before the
/// first header byte returns `Ok(None)`; an EOF mid-frame is
/// [`WireError::Truncated`].
///
/// Transient read errors do not tear the stream down: `Interrupted` is
/// always retried; a read timeout *between* frames surfaces as the
/// non-fatal [`WireError::TimedOut`] (try again later); a timeout in the
/// middle of a frame resumes the partial read — the bytes already
/// buffered stay buffered — for up to [`MID_FRAME_TIMEOUT_BUDGET`]
/// consecutive timeouts before reporting `TimedOut`.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, WireError> {
    let mut timeouts = 0u32;
    let mut fill = |r: &mut R, buf: &mut [u8], mut at: usize| -> Result<usize, WireError> {
        while at < buf.len() {
            match r.read(&mut buf[at..]) {
                Ok(0) => return Ok(at),
                Ok(n) => {
                    at += n;
                    timeouts = 0;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if is_transient(&e) => {
                    // A timeout before the first byte means "no frame in
                    // progress"; mid-frame it means "resume, the rest is
                    // still coming" — up to the stall budget.
                    if at == 0 {
                        return Err(WireError::TimedOut);
                    }
                    timeouts += 1;
                    if timeouts >= MID_FRAME_TIMEOUT_BUDGET {
                        return Err(WireError::TimedOut);
                    }
                }
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        Ok(at)
    };
    let mut header = [0u8; HEADER_LEN];
    let filled = fill(r, &mut header, 0)?;
    if filled == 0 {
        return Ok(None);
    }
    if filled < HEADER_LEN {
        return Err(WireError::Truncated {
            expected: HEADER_LEN,
            got: filled,
        });
    }
    let (_, payload_len) = decode_header(&header)?;
    let mut buf = Vec::with_capacity(HEADER_LEN + payload_len);
    buf.extend_from_slice(&header);
    buf.resize(HEADER_LEN + payload_len, 0);
    let at = fill(r, &mut buf, HEADER_LEN)?;
    if at < buf.len() {
        return Err(WireError::Truncated {
            expected: HEADER_LEN + payload_len,
            got: at,
        });
    }
    Frame::decode(&buf).map(Some)
}

/// An incremental frame reader for streams with read timeouts: partial
/// reads accumulate across calls, so a timeout never loses bytes.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

/// One step of the incremental reader.
///
/// The `Frame` variant dwarfs the unit variants, but a `ReadStep` lives
/// only on the stack between `poll_frame` and its caller's `match` — it
/// is never stored or collected — so boxing would buy nothing.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum ReadStep {
    /// A complete frame arrived.
    Frame(Frame),
    /// No complete frame yet (the read timed out or more bytes are due).
    Pending,
    /// The peer closed the stream between frames.
    Closed,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Pull bytes from `r` once and return at most one frame. Transient
    /// read errors — a fired read timeout (`WouldBlock` / `TimedOut`) or
    /// a signal interruption (`Interrupted`) — surface as
    /// [`ReadStep::Pending`]: the bytes already buffered stay buffered
    /// and the next step resumes the partial frame.
    pub fn step<R: Read>(&mut self, r: &mut R) -> Result<ReadStep, WireError> {
        if let Some(frame) = self.try_take()? {
            return Ok(ReadStep::Frame(frame));
        }
        let mut chunk = [0u8; 4096];
        match r.read(&mut chunk) {
            Ok(0) => {
                if self.buf.is_empty() {
                    Ok(ReadStep::Closed)
                } else {
                    Err(WireError::Truncated {
                        expected: HEADER_LEN.max(self.buf.len() + 1),
                        got: self.buf.len(),
                    })
                }
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                match self.try_take()? {
                    Some(frame) => Ok(ReadStep::Frame(frame)),
                    None => Ok(ReadStep::Pending),
                }
            }
            Err(e) if is_transient(&e) => Ok(ReadStep::Pending),
            Err(e) => Err(WireError::Io(e)),
        }
    }

    /// True when a frame is partially buffered (the stream is mid-frame).
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Extract a complete frame already sitting in the buffer — without
    /// touching the stream. The event-driven session engine uses this to
    /// drain back-to-back pipelined frames that arrived in one read
    /// before issuing another syscall.
    pub fn take_buffered(&mut self) -> Result<Option<Frame>, WireError> {
        self.try_take()
    }

    /// Extract a complete frame from the front of the buffer, if one is
    /// already there.
    fn try_take(&mut self) -> Result<Option<Frame>, WireError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let (_, payload_len) = decode_header(&self.buf)?;
        let total = HEADER_LEN + payload_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = Frame::decode(&self.buf[..total])?;
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips() {
        let f = Frame::Hello(Hello {
            client: "csqp-load".into(),
        });
        let bytes = f.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn reader_handles_split_frames() {
        let f = Frame::Bye;
        let bytes = f.encode();
        let mut reader = FrameReader::new();
        let (a, b) = bytes.split_at(5);
        let mut src: &[u8] = a;
        assert!(matches!(reader.step(&mut src).unwrap(), ReadStep::Pending));
        let mut src: &[u8] = b;
        assert!(matches!(
            reader.step(&mut src).unwrap(),
            ReadStep::Frame(Frame::Bye)
        ));
    }

    #[test]
    fn take_buffered_drains_pipelined_frames_without_reading() {
        // Two frames land in one read; take_buffered hands them over one
        // at a time with no further stream access.
        let mut bytes = Frame::StatsRequest.encode();
        bytes.extend_from_slice(&Frame::Bye.encode());
        let mut reader = FrameReader::new();
        let mut src: &[u8] = &bytes;
        assert!(matches!(
            reader.step(&mut src).unwrap(),
            ReadStep::Frame(Frame::StatsRequest)
        ));
        assert!(matches!(reader.take_buffered().unwrap(), Some(Frame::Bye)));
        assert!(reader.take_buffered().unwrap().is_none());
        assert!(!reader.mid_frame());
    }

    #[test]
    fn hello_ack_defaults_pipeline_depth_for_old_peers() {
        // An ack encoded without the field (a pre-pipelining server)
        // decodes to the stop-and-wait window of 1.
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
        frame.push(FrameKind::HelloAck as u8);
        frame.push(0);
        let payload = br#"{"server":"old","num_servers":4}"#;
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(payload);
        match Frame::decode(&frame).unwrap() {
            Frame::HelloAck(a) => {
                assert_eq!(a.pipeline_depth, 1);
                assert_eq!(a.num_servers, 4);
            }
            other => panic!("expected HELLO-ACK, got {:?}", other.kind()),
        }
    }

    #[test]
    fn header_errors_are_typed() {
        let good = Frame::Bye.encode();
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Frame::decode(&bad_magic),
            Err(WireError::BadMagic(_))
        ));
        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            Frame::decode(&bad_version),
            Err(WireError::BadVersion(_))
        ));
        let mut bad_kind = good.clone();
        bad_kind[6] = 99;
        assert!(matches!(
            Frame::decode(&bad_kind),
            Err(WireError::UnknownKind(99))
        ));
        let mut oversized = good;
        oversized[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        assert!(matches!(
            Frame::decode(&oversized),
            Err(WireError::Oversized(_))
        ));
        assert!(matches!(
            Frame::decode(&[0u8; 3]),
            Err(WireError::Truncated { .. })
        ));
    }
}
