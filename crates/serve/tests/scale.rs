//! Idle-session scale: thousands of concurrent connections multiplexed
//! on a fixed set of event-loop threads. The point of the event-driven
//! engine is that sessions are cheap — OS thread count must not grow
//! with session count, memory stays bounded, and a query on the last
//! session answers promptly while every other session sits idle.
//!
//! Two rungs:
//!
//! * `two_thousand_idle_sessions_stay_cheap_and_responsive` pins the
//!   portable `poll` backend at 2,000 sessions — the scale where an
//!   O(sessions) sweep per wakeup is still honest.
//! * `idle_session_wall_on_epoll_scales_to_the_descriptor_budget`
//!   targets 100,000 sessions on the `epoll` backend, clamping to what
//!   `RLIMIT_NOFILE` actually grants (each in-process loopback session
//!   costs two descriptors — the client socket and the accepted one).
//!   On a developer container with a 20k hard cap that lands near 9,700
//!   sessions; on a real host with `ulimit -Hn` ≥ 200k+64 it runs the
//!   full 100k. Destinations round-robin across 127.0.0.1–127.0.0.8 so
//!   the ephemeral-port tuple space (~28k ports per destination) never
//!   binds the session count.
//!
//! Both are `#[ignore]`d by default (they open thousands of
//! descriptors); CI runs them explicitly as a smoke job:
//! `cargo test -p csqp-serve --test scale -- --ignored`.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::TcpStream;
use std::time::{Duration, Instant};

use csqp_net::poll::{raise_nofile_limit, Backend};
use csqp_serve::load::nth_request;
use csqp_serve::proto::{read_frame, write_frame, Frame, Hello, WireError};
use csqp_serve::{LoadConfig, Server, ServerConfig};

const SESSIONS: usize = 2_000;

/// The big rung's target. The test scales down gracefully when
/// `RLIMIT_NOFILE` can't cover it, so the assertion is "thread count and
/// memory stay flat up to the descriptor budget", not a literal 100k on
/// every machine.
const EPOLL_TARGET_SESSIONS: usize = 100_000;

/// Descriptors reserved for everything that is not an idle session:
/// listener, waker pipes, stdio, test scaffolding.
const FD_SLACK: u64 = 256;

/// A field from `/proc/self/status`, e.g. `Threads` or `VmRSS` (value in
/// the field's own unit — thread count, or kB).
fn proc_status(field: &str) -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            return digits.parse().expect("numeric /proc field");
        }
    }
    panic!("{field} not in /proc/self/status");
}

fn next_frame(stream: &mut TcpStream) -> Frame {
    loop {
        match read_frame(stream) {
            Err(WireError::TimedOut) => continue,
            Ok(Some(f)) => return f,
            other => panic!("stream died: {other:?}"),
        }
    }
}

/// Connect with a short retry loop: at tens of thousands of connects the
/// listen backlog can momentarily overflow, which surfaces as a refused
/// or reset connect that succeeds on the next attempt.
fn connect_session(addr: &str) -> TcpStream {
    let mut last_err = None;
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    panic!("connect to {addr} kept failing: {last_err:?}");
}

/// The shared idle-session scale body: open `count` idle sessions
/// against a server on `reactor`, then assert the engine's core claims —
/// no thread growth, bounded RSS growth, an in-deadline answer on the
/// last session, and a clean drain.
///
/// `spread_destinations` round-robins connects over 127.0.0.1–.8 (the
/// server listens on 0.0.0.0) so client-side ephemeral ports never cap
/// the session count.
fn idle_session_scale(reactor: Backend, count: usize, spread_destinations: bool) {
    let server = Server::bind(ServerConfig {
        addr: if spread_destinations {
            "0.0.0.0:0".to_string()
        } else {
            "127.0.0.1:0".to_string()
        },
        event_threads: 2,
        workers: 2,
        reactor,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
    .spawn()
    .expect("spawn server");
    let port = server.addr().port();
    let metrics = server.metrics();

    // Baselines once the fixed thread set (accept + shards + workers)
    // is up but before any session exists.
    let threads_before = proc_status("Threads");
    let rss_before_kb = proc_status("VmRSS");

    let mut sessions: Vec<TcpStream> = Vec::with_capacity(count);
    for i in 0..count {
        let dst = if spread_destinations {
            format!("127.0.0.{}:{port}", 1 + i % 8)
        } else {
            format!("127.0.0.1:{port}")
        };
        sessions.push(connect_session(&dst));
    }
    // Wait until every socket is registered with a shard. Budget scales
    // with the session count: 30 s minimum, 1 ms per session beyond.
    let settle = Duration::from_secs(30).max(Duration::from_millis(count as u64));
    let give_up = Instant::now() + settle;
    while metrics.sessions_open() < count as u64 {
        assert!(
            Instant::now() < give_up,
            "only {}/{count} sessions registered in {settle:?}",
            metrics.sessions_open()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(metrics.sessions_open(), count as u64);

    // The engine's core claim: session count does not create threads.
    let threads_with_sessions = proc_status("Threads");
    assert_eq!(
        threads_with_sessions, threads_before,
        "{reactor}: thread count must be independent of session count"
    );

    // Memory bound: per-session cost is a socket, a frame buffer, and a
    // map entry — far under 32 KiB each even with allocator slack.
    let rss_after_kb = proc_status("VmRSS");
    let growth_kb = rss_after_kb.saturating_sub(rss_before_kb);
    assert!(
        growth_kb < (count as u64) * 32,
        "{reactor}: RSS grew {growth_kb} kB for {count} idle sessions"
    );

    // A query on the last session answers within its deadline while
    // every other session sits idle in the same readiness set.
    let last = sessions.last_mut().expect("sessions exist");
    last.set_nodelay(true).expect("nodelay");
    write_frame(
        last,
        &Frame::Hello(Hello {
            client: "scale-test".to_string(),
        }),
    )
    .expect("hello");
    assert!(matches!(next_frame(last), Frame::HelloAck(_)));
    let mix = LoadConfig {
        seed: 0x5CA1E,
        deadline_ms: Some(30_000),
        ..LoadConfig::default()
    };
    let req = nth_request(&mix, count as u64 - 1, 0);
    let asked = Instant::now();
    write_frame(last, &Frame::Query(req)).expect("query");
    match next_frame(last) {
        Frame::Result(record) => assert_eq!(record.id, 1),
        other => panic!("{reactor}: the busy session must be served, got {other:?}"),
    }
    assert!(
        asked.elapsed() < Duration::from_secs(30),
        "{reactor}: deadline honored on a full shard"
    );

    // Sessions close cleanly; the gauge drains back to zero.
    drop(sessions);
    let give_up = Instant::now() + settle;
    while metrics.sessions_open() > 0 {
        assert!(
            Instant::now() < give_up,
            "{}: {} sessions leaked after close",
            reactor,
            metrics.sessions_open()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(metrics.conservation_holds());
    server.shutdown();
}

#[test]
#[ignore = "opens ~4000 descriptors; run explicitly (CI smoke job)"]
fn two_thousand_idle_sessions_stay_cheap_and_responsive() {
    let fd_budget = raise_nofile_limit().expect("raise RLIMIT_NOFILE");
    assert!(
        fd_budget >= 2 * SESSIONS as u64 + 64,
        "descriptor budget {fd_budget} too small for {SESSIONS} loopback sessions"
    );
    // Pinned to the portable poll backend: 2,000 sessions is the scale
    // this backend is expected to stay honest at.
    idle_session_scale(Backend::Poll, SESSIONS, false);
}

#[test]
#[ignore = "opens up to ~200k descriptors; run explicitly (CI smoke job)"]
#[cfg(target_os = "linux")]
fn idle_session_wall_on_epoll_scales_to_the_descriptor_budget() {
    let fd_budget = raise_nofile_limit().expect("raise RLIMIT_NOFILE");
    // Each in-process loopback session costs two descriptors. Clamp the
    // 100k target to what the hard limit actually grants, and insist on
    // at least the poll rung so the test can't silently degenerate.
    let affordable = (fd_budget.saturating_sub(FD_SLACK) / 2) as usize;
    let count = EPOLL_TARGET_SESSIONS.min(affordable);
    assert!(
        count >= SESSIONS,
        "descriptor budget {fd_budget} affords only {affordable} sessions; \
         the epoll wall needs at least {SESSIONS}"
    );
    idle_session_scale(Backend::Epoll, count, true);
}
