//! Idle-session scale: thousands of concurrent connections multiplexed
//! on a fixed set of event-loop threads. The point of the event-driven
//! engine is that sessions are cheap — OS thread count must not grow
//! with session count, memory stays bounded, and a query on the last
//! session answers promptly while the other 1,999 sit idle.
//!
//! `#[ignore]`d by default (it opens ~4,000 descriptors); CI runs it
//! explicitly as a smoke job:
//! `cargo test -p csqp-serve --test scale -- --ignored`.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::TcpStream;
use std::time::{Duration, Instant};

use csqp_net::poll::raise_nofile_limit;
use csqp_serve::load::nth_request;
use csqp_serve::proto::{read_frame, write_frame, Frame, Hello, WireError};
use csqp_serve::{LoadConfig, Server, ServerConfig};

const SESSIONS: usize = 2_000;

/// A field from `/proc/self/status`, e.g. `Threads` or `VmRSS` (value in
/// the field's own unit — thread count, or kB).
fn proc_status(field: &str) -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            return digits.parse().expect("numeric /proc field");
        }
    }
    panic!("{field} not in /proc/self/status");
}

fn next_frame(stream: &mut TcpStream) -> Frame {
    loop {
        match read_frame(stream) {
            Err(WireError::TimedOut) => continue,
            Ok(Some(f)) => return f,
            other => panic!("stream died: {other:?}"),
        }
    }
}

#[test]
#[ignore = "opens ~4000 descriptors; run explicitly (CI smoke job)"]
fn two_thousand_idle_sessions_stay_cheap_and_responsive() {
    let fd_budget = raise_nofile_limit().expect("raise RLIMIT_NOFILE");
    assert!(
        fd_budget >= 2 * SESSIONS as u64 + 64,
        "descriptor budget {fd_budget} too small for {SESSIONS} loopback sessions"
    );

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        event_threads: 2,
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
    .spawn()
    .expect("spawn server");
    let addr = server.addr();
    let metrics = server.metrics();

    // Baselines once the fixed thread set (accept + shards + workers)
    // is up but before any session exists.
    let threads_before = proc_status("Threads");
    let rss_before_kb = proc_status("VmRSS");

    let mut sessions: Vec<TcpStream> = Vec::with_capacity(SESSIONS);
    for _ in 0..SESSIONS {
        sessions.push(TcpStream::connect(addr).expect("connect idle session"));
    }
    // Wait until every socket is registered with a shard.
    let give_up = Instant::now() + Duration::from_secs(30);
    while metrics.sessions_open() < SESSIONS as u64 {
        assert!(
            Instant::now() < give_up,
            "only {}/{SESSIONS} sessions registered in 30 s",
            metrics.sessions_open()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(metrics.sessions_open(), SESSIONS as u64);

    // The engine's core claim: session count does not create threads.
    let threads_with_sessions = proc_status("Threads");
    assert_eq!(
        threads_with_sessions, threads_before,
        "thread count must be independent of session count"
    );

    // Memory bound: per-session cost is a socket, a frame buffer, and a
    // map entry — far under 32 KiB each even with allocator slack.
    let rss_after_kb = proc_status("VmRSS");
    let growth_kb = rss_after_kb.saturating_sub(rss_before_kb);
    assert!(
        growth_kb < (SESSIONS as u64) * 32,
        "RSS grew {growth_kb} kB for {SESSIONS} idle sessions"
    );

    // A query on the last session answers within its deadline while the
    // other 1,999 sit idle in the same poll sets.
    let last = sessions.last_mut().expect("sessions exist");
    last.set_nodelay(true).expect("nodelay");
    write_frame(
        last,
        &Frame::Hello(Hello {
            client: "scale-test".to_string(),
        }),
    )
    .expect("hello");
    assert!(matches!(next_frame(last), Frame::HelloAck(_)));
    let mix = LoadConfig {
        seed: 0x5CA1E,
        deadline_ms: Some(30_000),
        ..LoadConfig::default()
    };
    let req = nth_request(&mix, SESSIONS as u64 - 1, 0);
    let asked = Instant::now();
    write_frame(last, &Frame::Query(req)).expect("query");
    match next_frame(last) {
        Frame::Result(record) => assert_eq!(record.id, 1),
        other => panic!("the busy session must be served, got {other:?}"),
    }
    assert!(
        asked.elapsed() < Duration::from_secs(30),
        "deadline honored on a full shard"
    );

    // Sessions close cleanly; the gauge drains back to zero.
    drop(sessions);
    let give_up = Instant::now() + Duration::from_secs(30);
    while metrics.sessions_open() > 0 {
        assert!(
            Instant::now() < give_up,
            "{} sessions leaked after close",
            metrics.sessions_open()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(metrics.conservation_holds());
    server.shutdown();
}
