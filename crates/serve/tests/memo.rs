//! Memo-table serving tests over real loopback TCP: the shared
//! site-selection memo must be invisible in results (byte-identical
//! digests with the memo on, off, hammered from many threads, or served
//! by a single worker) and visible only in the STATS counters.
//!
//! Every test runs once per reactor backend the host supports
//! (`csqp_net::poll::test_backends`, `CSQP_REACTOR` override).

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::TcpStream;

use csqp_core::Policy;
use csqp_cost::Objective;
use csqp_net::poll::{test_backends, Backend};
use csqp_serve::proto::{Frame, OptimizerMode};
use csqp_serve::server::roundtrip;
use csqp_serve::{run_load, LoadConfig, Server, ServerConfig, ServerHandle};

fn start(reactor: Backend, config: ServerConfig) -> ServerHandle {
    Server::bind(ServerConfig { reactor, ..config })
        .expect("bind on 127.0.0.1:0")
        .spawn()
        .expect("spawn server threads")
}

/// A fixed two-step mix: every policy in rotation, enough repetition per
/// (shape, policy, objective, cache) cell that a memo must hit.
fn two_step_load(addr: &str, clients: usize, per_client: u64) -> LoadConfig {
    LoadConfig {
        addr: addr.to_string(),
        clients,
        queries_per_client: Some(per_client),
        seed: 0x3E_A10,
        optimizer: OptimizerMode::TwoStep,
        objective: Objective::ResponseTime,
        ..LoadConfig::default()
    }
}

#[test]
fn memo_on_off_serve_identical_digests_over_loopback() {
    // The ISSUE's acceptance smoke: the same seeded mix against a
    // memo-enabled and a memo-disabled server produces byte-identical
    // result digests; only the STATS counters differ.
    for reactor in test_backends() {
        let on = start(reactor, ServerConfig::default());
        let off = start(
            reactor,
            ServerConfig {
                memo: false,
                ..ServerConfig::default()
            },
        );

        let report_on =
            run_load(&two_step_load(&on.addr().to_string(), 4, 6)).expect("memo-on load");
        let report_off =
            run_load(&two_step_load(&off.addr().to_string(), 4, 6)).expect("memo-off load");
        assert_eq!(report_on.queries, 24);
        assert_eq!(report_off.queries, 24);
        assert_eq!(report_on.errors + report_off.errors, 0);
        assert_eq!(
            report_on.digest, report_off.digest,
            "{reactor}: memo hits must replay the exact plan the cold path would build"
        );

        let snap_on = on.service().stats_snapshot();
        let snap_off = off.service().stats_snapshot();
        assert!(
            snap_on.memo_hits > 0,
            "{reactor}: a 24-query repeated mix must hit the memo: {snap_on:?}"
        );
        assert!(snap_on.memo_bytes > 0, "installed entries occupy bytes");
        assert_eq!(snap_off.memo_hits, 0, "disabled memo is never consulted");
        assert_eq!(snap_off.memo_bytes, 0);

        on.shutdown();
        off.shutdown();
    }
}

#[test]
fn concurrent_hammer_matches_single_threaded_serving() {
    // 8 client threads race the sharded memo on a 4-worker server; a
    // 1-worker server serves the identical mix strictly sequentially.
    // Which probes hit depends on interleaving — the digests must not.
    for reactor in test_backends() {
        let parallel = start(reactor, ServerConfig::default());
        let serial = start(
            reactor,
            ServerConfig {
                workers: 1,
                event_threads: 1,
                ..ServerConfig::default()
            },
        );

        let hammer = run_load(&two_step_load(&parallel.addr().to_string(), 8, 4)).expect("hammer");
        let sequential =
            run_load(&two_step_load(&serial.addr().to_string(), 8, 4)).expect("serial");
        assert_eq!(hammer.queries, 32);
        assert_eq!(sequential.queries, 32);
        assert_eq!(hammer.errors + sequential.errors, 0);
        assert_eq!(
            hammer.digest, sequential.digest,
            "{reactor}: memo interleaving must never change served results"
        );

        // Both servers saw real memo traffic, and conservation held: every
        // two-step query either probed-and-missed or probed-and-hit.
        for handle in [&parallel, &serial] {
            let snap = handle.service().stats_snapshot();
            assert!(
                snap.memo_hits > 0,
                "{reactor}: repeated mix must hit: {snap:?}"
            );
            assert_eq!(
                snap.memo_hits + snap.memo_misses,
                2 * 32,
                "compile + select probes"
            );
        }

        parallel.shutdown();
        serial.shutdown();
    }
}

#[test]
fn stats_frame_reports_memo_counters_over_the_wire() {
    for reactor in test_backends() {
        let server = start(reactor, ServerConfig::default());
        let report = run_load(&LoadConfig {
            addr: server.addr().to_string(),
            clients: 2,
            queries_per_client: Some(4),
            seed: 21,
            optimizer: OptimizerMode::TwoStep,
            policy: Some(Policy::HybridShipping),
            ..LoadConfig::default()
        })
        .expect("load");
        assert_eq!(report.queries, 8);

        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let reply = roundtrip(&mut stream, &Frame::StatsRequest).expect("stats");
        match reply {
            Frame::Stats(s) => {
                let local = server.service().stats_snapshot();
                assert_eq!(s.memo_hits, local.memo_hits, "wire matches in-process");
                assert_eq!(s.memo_misses, local.memo_misses);
                assert_eq!(s.memo_evictions, local.memo_evictions);
                assert_eq!(s.memo_bytes, local.memo_bytes);
                assert!(s.memo_misses > 0, "cold probes were counted: {s:?}");
                assert!(s.memo_bytes > 0, "the table holds entries: {s:?}");
                // The reactor counters travel the same wire. They keep
                // advancing while the server idles (each shard's wait
                // loop ticks), so the local snapshot taken *after* the
                // wire reply can only be at or past it — monotone, not
                // equal. A served load implies waits and dispatched
                // events on any backend, and ctl traffic on epoll.
                assert!(
                    s.reactor_wait_calls <= local.reactor_wait_calls,
                    "wire snapshot precedes local: {s:?} vs {local:?}"
                );
                assert!(s.reactor_ctl_calls <= local.reactor_ctl_calls);
                assert!(s.reactor_events_dispatched <= local.reactor_events_dispatched);
                assert!(s.reactor_wait_calls > 0, "served load implies waits: {s:?}");
                assert!(
                    s.reactor_events_dispatched > 0,
                    "served load implies events: {s:?}"
                );
                if reactor == Backend::Epoll {
                    assert!(s.reactor_ctl_calls > 0, "epoll registers via ctl: {s:?}");
                }
            }
            other => panic!("{reactor}: expected STATS, got {:?}", other.kind()),
        }
        server.shutdown();
    }
}

#[test]
fn tiny_byte_budget_evicts_but_still_serves_identically() {
    // A starved memo (a few KB) must evict constantly yet never corrupt
    // results: digests still match a memo-off server on the same mix.
    for reactor in test_backends() {
        let starved = start(
            reactor,
            ServerConfig {
                memo_bytes: 4 << 10,
                ..ServerConfig::default()
            },
        );
        let off = start(
            reactor,
            ServerConfig {
                memo: false,
                ..ServerConfig::default()
            },
        );

        let lhs = run_load(&two_step_load(&starved.addr().to_string(), 4, 6)).expect("starved");
        let rhs = run_load(&two_step_load(&off.addr().to_string(), 4, 6)).expect("off");
        assert_eq!(lhs.queries, 24);
        assert_eq!(lhs.errors + rhs.errors, 0);
        assert_eq!(
            lhs.digest, rhs.digest,
            "{reactor}: eviction pressure never changes results"
        );

        let snap = starved.service().stats_snapshot();
        assert!(
            snap.memo_bytes <= 4 << 10,
            "the byte budget is a hard bound: {snap:?}"
        );
        starved.shutdown();
        off.shutdown();
    }
}
