//! The checked/served window-cap agreement (satellite of the system
//! model checker PR): the pipeline window the engine advertises in
//! HELLO-ACK and the serial mask the model checker explores must come
//! from the *same* constant, `csqp_core::limits::MAX_SERIALS` — so the
//! model can never under-approximate the machine.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::TcpStream;
use std::time::Duration;

use csqp_serve::proto::{Frame, Hello};
use csqp_serve::server::roundtrip;
use csqp_serve::{Server, ServerConfig};

/// The model's serial mask and the engine's clamp are literally the
/// same constant. A divergence here means the exhaustiveness claim of
/// `csqp-check --protocol` / `--system` is silently void.
#[test]
fn model_serial_cap_is_the_shared_limit() {
    assert_eq!(
        csqp_verify::protocol::MAX_SERIALS,
        csqp_core::limits::MAX_SERIALS,
        "the model must mask exactly the window the engine can grant"
    );
}

/// The config clamp can never grant a window wider than the model
/// masks, and never a zero window.
#[test]
fn effective_depth_clamps_into_the_model_window() {
    let cap = csqp_core::limits::MAX_SERIALS as usize;
    let mut cfg = ServerConfig::default();

    cfg.pipeline_depth = 1000;
    assert_eq!(cfg.effective_pipeline_depth(), cap);

    cfg.pipeline_depth = 0;
    assert_eq!(cfg.effective_pipeline_depth(), 1);

    cfg.pipeline_depth = cap;
    assert_eq!(cfg.effective_pipeline_depth(), cap);
}

/// End to end: a live server configured with an absurd window
/// advertises exactly the shared cap on the wire.
#[test]
fn hello_ack_advertises_the_clamped_window() {
    let cfg = ServerConfig {
        pipeline_depth: 100_000,
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg)
        .expect("bind on 127.0.0.1:0")
        .spawn()
        .expect("spawn server threads");

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .expect("read timeout");
    let ack = roundtrip(
        &mut stream,
        &Frame::Hello(Hello {
            client: "window-cap-test".to_string(),
        }),
    )
    .expect("HELLO round-trip");
    match ack {
        Frame::HelloAck(a) => assert_eq!(
            a.pipeline_depth,
            u32::from(csqp_core::limits::MAX_SERIALS),
            "advertised window must be the shared cap, not the raw config"
        ),
        other => panic!("expected HELLO-ACK, got {other:?}"),
    }

    server.shutdown();
}
