//! Property tests for the wire protocol: every frame type round-trips
//! through encode/decode, and every corruption — truncation, oversizing,
//! bad magic/version/kind, garbage payloads — produces a typed
//! [`WireError`], never a panic.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp_core::Policy;
use csqp_cost::Objective;
use csqp_engine::LinkStats;
use csqp_serve::proto::{
    decode_header, DegradeReason, ErrorCode, ErrorFrame, Frame, Hello, HelloAck, OptimizerMode,
    QueryRequest, ResultRecord, StatsSnapshot, WireError, HEADER_LEN, MAX_PAYLOAD,
};
use csqp_workload::WorkloadSpec;
use proptest::prelude::*;

/// Build a workload spec from drawn integers (kind, n, parameter knobs),
/// guaranteed valid.
fn spec_from(kind: u64, n: u32, sel_step: u64, k: u32) -> WorkloadSpec {
    let sel = [1e-4, 2e-5, 0.5, 1.0][(sel_step % 4) as usize];
    match kind % 3 {
        0 => WorkloadSpec::Chain {
            n: n.max(1),
            selectivity: sel,
        },
        1 => WorkloadSpec::Star {
            n: n.max(2),
            selectivity: sel,
        },
        _ => WorkloadSpec::Spj {
            n: n.max(1),
            join_sel: sel,
            selection: 0.25,
            every_k: k.max(1),
        },
    }
}

fn policy_from(i: u64) -> Policy {
    [
        Policy::DataShipping,
        Policy::QueryShipping,
        Policy::HybridShipping,
    ][(i % 3) as usize]
}

fn objective_from(i: u64) -> Objective {
    [
        Objective::Communication,
        Objective::ResponseTime,
        Objective::TotalCost,
    ][(i % 3) as usize]
}

fn error_code_from(i: u64) -> ErrorCode {
    [
        ErrorCode::BadFrame,
        ErrorCode::BadRequest,
        ErrorCode::Saturated,
        ErrorCode::PolicyViolation,
        ErrorCode::ExecutionFailed,
        ErrorCode::ShuttingDown,
        ErrorCode::DeadlineExceeded,
        ErrorCode::Aborted,
    ][(i % 8) as usize]
}

proptest! {
    #[test]
    fn hello_frames_round_trip(name in proptest::collection::vec(32u8..127, 0..40)) {
        let f = Frame::Hello(Hello {
            client: String::from_utf8(name).unwrap(),
        });
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn hello_ack_frames_round_trip(server_sel in 0u64..3, n in 1u32..64, depth in 1u32..256) {
        let f = Frame::HelloAck(HelloAck {
            server: format!("srv-{server_sel}"),
            num_servers: n,
            pipeline_depth: depth,
        });
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn query_frames_round_trip(
        // ids and seeds live in the JSON-exact integer range (< 2^53).
        ids in (0u64..(1u64 << 53), 0u64..(1u64 << 53)),
        shape in (0u64..3, 0u64..4),
        n in 2u32..16,
        k in 1u32..4,
        cache_steps in proptest::collection::vec(0u64..5, 0..8),
        knobs in (0u64..3, 0u64..3, 0u64..2),
        loads in proptest::collection::vec((1u32..8, 0.0f64..100.0), 0..4),
        deadline in (proptest::bool::ANY, 0u64..(1u64 << 53)),
    ) {
        let deadline = deadline.0.then_some(deadline.1);
        let (id, seed) = ids;
        let (kind, sel_step) = shape;
        let (pol, objv, opt) = knobs;
        let spec = spec_from(kind, n, sel_step, k);
        let cache: Vec<f64> = cache_steps
            .iter()
            .take(spec.num_relations() as usize)
            .map(|&s| s as f64 * 0.25)
            .collect();
        let f = Frame::Query(QueryRequest {
            id,
            spec,
            cache,
            policy: policy_from(pol),
            objective: objective_from(objv),
            optimizer: if opt == 0 { OptimizerMode::TwoPhase } else { OptimizerMode::TwoStep },
            seed,
            loads,
            deadline_ms: deadline,
            keys: None,
        });
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn result_frames_round_trip(
        counters in (0u64..1000, 0u64..100_000, 0u64..100_000, 0u64..1_000_000_000),
        timing in (0.0f64..5_000.0, 0.0f64..1.0),
        disk in proptest::collection::vec(0.0f64..1.0, 1..6),
        cpu in proptest::collection::vec(0.0f64..100.0, 1..6),
        tuples in 0u64..10_000_000,
        degrade in (proptest::bool::ANY, 0u64..3, proptest::bool::ANY),
    ) {
        let degrade = degrade.0.then_some((degrade.1, degrade.2));
        let (id, pages, msgs, bytes) = counters;
        let (response, link) = timing;
        let f = Frame::Result(ResultRecord {
            id,
            response_secs: response,
            pages_sent: pages,
            control_msgs: msgs,
            bytes_sent: bytes,
            link_utilization: link,
            disk_utilization: disk,
            cpu_secs: cpu,
            result_tuples: tuples,
            degraded_from: degrade.map(|(p, _)| policy_from(p)),
            degrade_reason: degrade.map(|(_, sat)| if sat {
                DegradeReason::Saturated
            } else {
                DegradeReason::CacheUnusable
            }),
        });
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn error_frames_round_trip(
        id_code in (0u64..1000, 0u64..6),
        retry in 0u64..10_000,
        with_retry in proptest::bool::ANY,
        msg_bytes in proptest::collection::vec(32u8..127, 0..60),
    ) {
        let (id, code) = id_code;
        let f = Frame::Error(ErrorFrame {
            id,
            code: error_code_from(code),
            message: String::from_utf8(msg_bytes).unwrap(),
            retry_after_ms: with_retry.then_some(retry),
        });
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn stats_frames_round_trip(
        outcomes in (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        extra in (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        per_policy in proptest::collection::vec(0u64..1_000_000, 3..4),
        pcts in (0.0f64..10_000.0, 0.0f64..10_000.0, 0.0f64..10_000.0),
        wire in (0u64..u32::MAX as u64, 0u64..u32::MAX as u64, 0u64..(1u64 << 53)),
        memo in (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..(1u64 << 40)),
        catalog in (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        catalog_extra in (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        reactor in (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        mem_bound in (0u64..1_000_000, 0u64..1_000_000),
    ) {
        let (served, rejected, errors) = outcomes;
        let (submitted, aborted, timed_out, degraded) = extra;
        let (p50, p95, p99) = pcts;
        let (pages, msgs, bytes) = wire;
        let (memo_hits, memo_misses, memo_evictions, memo_bytes) = memo;
        let (catalog_epoch, catalog_refreshes, catalog_stale_degraded) = catalog;
        let (catalog_stale_rejected, catalog_epoch_regressions, catalog_max_lag) = catalog_extra;
        let (reactor_wait_calls, reactor_ctl_calls, reactor_events_dispatched) = reactor;
        let (mem_bound_degraded, mem_bound_rejected) = mem_bound;
        let f = Frame::Stats(StatsSnapshot {
            submitted,
            queries_served: served,
            rejected,
            errors,
            aborted,
            timed_out,
            degraded,
            per_policy: [per_policy[0], per_policy[1], per_policy[2]],
            p50_ms: p50,
            p95_ms: p95,
            p99_ms: p99,
            wire: LinkStats {
                data_pages_sent: pages,
                control_msgs_sent: msgs,
                bytes_sent: bytes,
            },
            memo_hits,
            memo_misses,
            memo_evictions,
            memo_bytes,
            catalog_epoch,
            catalog_refreshes,
            catalog_stale_degraded,
            catalog_stale_rejected,
            catalog_epoch_regressions,
            catalog_max_lag,
            mem_bound_degraded,
            mem_bound_rejected,
            reactor_wait_calls,
            reactor_ctl_calls,
            reactor_events_dispatched,
        });
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    /// Key declarations round-trip through the wire exactly: a strictly
    /// ascending in-range list (drawn as a bitmask over the relations)
    /// decodes back to the same list, and `None` stays `None` (the field
    /// is omitted, so old peers never see it).
    #[test]
    fn query_key_declarations_round_trip_exactly(
        n in 2u32..16,
        key_mask in (proptest::bool::ANY, 0u64..(1u64 << 16)),
    ) {
        let key_mask = key_mask.0.then_some(key_mask.1);
        let spec = WorkloadSpec::Chain { n, selectivity: 1e-4 };
        let keys = key_mask.map(|mask| {
            (0..spec.num_relations())
                .filter(|&i| mask & (1 << i) != 0)
                .collect::<Vec<u32>>()
        });
        let f = Frame::Query(QueryRequest {
            id: 1,
            spec,
            cache: vec![],
            policy: Policy::HybridShipping,
            objective: Objective::Communication,
            optimizer: OptimizerMode::TwoPhase,
            seed: 9,
            loads: vec![],
            deadline_ms: None,
            keys: keys.clone(),
        });
        let bytes = f.encode();
        if keys.is_none() {
            prop_assert!(
                !String::from_utf8_lossy(&bytes[HEADER_LEN..]).contains("\"keys\""),
                "None keys must be omitted from the wire"
            );
        }
        prop_assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    /// Hostile key lists — arbitrary JSON fragments spliced into the
    /// `keys` field — either decode to a typed payload error or to a
    /// strictly ascending, in-range list. Never a panic, never an
    /// out-of-contract value.
    #[test]
    fn hostile_key_lists_decode_typed_or_in_contract(
        n in 2u32..8,
        fragment_sel in 0usize..8,
        a in 0u64..(1u64 << 60),
        b in 0u64..(1u64 << 60),
    ) {
        let spec = WorkloadSpec::Chain { n, selectivity: 1e-4 };
        let base = Frame::Query(QueryRequest {
            id: 1,
            spec: spec.clone(),
            cache: vec![],
            policy: Policy::QueryShipping,
            objective: Objective::Communication,
            optimizer: OptimizerMode::TwoPhase,
            seed: 9,
            loads: vec![],
            deadline_ms: None,
            keys: None,
        })
        .encode();
        let fragment = match fragment_sel {
            0 => format!("[{a}]"),
            1 => format!("[{a},{b}]"),
            2 => format!("[{b},{a}]"),
            3 => "[0,0]".to_string(),
            4 => "[-1]".to_string(),
            5 => "[1.5]".to_string(),
            6 => "\"zero\"".to_string(),
            _ => "[null]".to_string(),
        };
        // Splice a keys field into the otherwise valid payload.
        let payload = String::from_utf8(base[HEADER_LEN..].to_vec()).unwrap();
        let hostile = format!(
            "{},\"keys\":{}}}",
            &payload[..payload.len() - 1],
            fragment
        );
        let mut frame = base[..HEADER_LEN].to_vec();
        frame[8..12].copy_from_slice(&(hostile.len() as u32).to_be_bytes());
        frame.extend_from_slice(hostile.as_bytes());
        match Frame::decode(&frame) {
            Ok(Frame::Query(q)) => {
                let keys = q.keys.expect("spliced field must be present");
                prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(keys.iter().all(|&k| k < spec.num_relations()));
            }
            Err(WireError::Payload(_)) => {}
            other => prop_assert!(false, "expected Query or typed payload error: {other:?}"),
        }
    }

    /// STATS frames from a pre-bounds server — no admission counters on
    /// the wire — decode with both counters zero and everything else
    /// intact, so mixed-version fleets keep aggregating.
    #[test]
    fn stats_admission_counters_decode_as_zero_on_old_frames(
        served in 0u64..1_000_000,
        degraded in 1u64..1_000_000,
        rejected in 1u64..1_000_000,
    ) {
        let mut snap = StatsSnapshot::default();
        snap.queries_served = served;
        snap.mem_bound_degraded = degraded;
        snap.mem_bound_rejected = rejected;
        let new_frame = Frame::Stats(snap).encode();
        let payload = String::from_utf8(new_frame[HEADER_LEN..].to_vec()).unwrap();
        // An old server simply never writes the fields.
        let old_payload = payload
            .replace(&format!("\"mem_bound_degraded\":{degraded},"), "")
            .replace(&format!("\"mem_bound_rejected\":{rejected},"), "");
        prop_assert!(old_payload != payload, "surgery must remove the counters");
        let mut frame = new_frame[..HEADER_LEN].to_vec();
        frame[8..12].copy_from_slice(&(old_payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(old_payload.as_bytes());
        match Frame::decode(&frame).unwrap() {
            Frame::Stats(s) => {
                prop_assert_eq!(s.mem_bound_degraded, 0);
                prop_assert_eq!(s.mem_bound_rejected, 0);
                prop_assert_eq!(s.queries_served, served);
            }
            other => prop_assert!(false, "expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn control_frames_round_trip(which in proptest::bool::ANY) {
        let f = if which { Frame::StatsRequest } else { Frame::Bye };
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    /// Any truncation of a valid frame decodes to a typed error (or, for
    /// header-only prefixes, reports Truncated) — never panics, never
    /// succeeds.
    #[test]
    fn truncations_never_panic_or_succeed(
        keep_fraction in 0.0f64..1.0,
        name in proptest::collection::vec(32u8..127, 0..30),
    ) {
        let full = Frame::Hello(Hello {
            client: String::from_utf8(name).unwrap(),
        })
        .encode();
        let keep = ((full.len() as f64) * keep_fraction) as usize;
        if keep < full.len() {
            match Frame::decode(&full[..keep]) {
                Err(WireError::Truncated { expected, got }) => {
                    prop_assert_eq!(got, keep.max(HEADER_LEN.min(keep)));
                    prop_assert!(expected > got);
                }
                Err(WireError::Payload(_)) => {
                    // A truncated JSON document is also an acceptable
                    // typed failure if the header happened to survive.
                    prop_assert!(keep >= HEADER_LEN);
                }
                other => prop_assert!(false, "truncated decode must fail typed: {other:?}"),
            }
        }
    }

    /// Single-byte corruptions of a valid frame either still decode (the
    /// byte landed in a string) or produce a typed error — never a panic.
    #[test]
    fn single_byte_corruption_is_total(
        pos_seed in 0u64..u64::MAX,
        xor in 1u8..=255,
    ) {
        let full = Frame::Error(ErrorFrame {
            id: 3,
            code: ErrorCode::Saturated,
            message: "queue full".to_string(),
            retry_after_ms: Some(50),
        })
        .encode();
        let mut corrupt = full.clone();
        let pos = (pos_seed % full.len() as u64) as usize;
        corrupt[pos] ^= xor;
        let _ = Frame::decode(&corrupt); // must not panic
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        let _ = Frame::decode(&bytes);
        let _ = decode_header(&bytes);
    }

    /// Oversized declared lengths are rejected from the header alone —
    /// no allocation of attacker-controlled size happens.
    #[test]
    fn oversized_lengths_are_rejected(extra in 1u32..u32::MAX - MAX_PAYLOAD) {
        let mut frame = Frame::Bye.encode();
        frame[8..12].copy_from_slice(&(MAX_PAYLOAD + extra).to_be_bytes());
        prop_assert!(matches!(
            Frame::decode(&frame),
            Err(WireError::Oversized(n)) if n == MAX_PAYLOAD + extra
        ));
    }

    /// Unknown versions and kinds report the offending value.
    #[test]
    fn bad_version_and_kind_are_typed(version in 2u16..u16::MAX, kind in 9u8..=255) {
        let mut bad_version = Frame::Bye.encode();
        bad_version[4..6].copy_from_slice(&version.to_be_bytes());
        prop_assert!(matches!(
            Frame::decode(&bad_version),
            Err(WireError::BadVersion(v)) if v == version
        ));
        let mut bad_kind = Frame::Bye.encode();
        bad_kind[6] = kind;
        prop_assert!(matches!(
            Frame::decode(&bad_kind),
            Err(WireError::UnknownKind(k)) if k == kind
        ));
    }

    /// Valid header + garbage JSON payload is a typed payload error.
    #[test]
    fn garbage_payloads_are_typed(payload in proptest::collection::vec(0u8..=255, 1..50)) {
        let mut frame = Vec::new();
        frame.extend_from_slice(b"CSQP");
        frame.extend_from_slice(&1u16.to_be_bytes());
        frame.push(8); // Bye expects an object payload
        frame.push(0);
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&payload);
        // Either it parsed into some JSON document (Bye ignores the
        // payload) or it is a typed payload error.
        match Frame::decode(&frame) {
            Ok(Frame::Bye) => {}
            Err(WireError::Payload(_)) => {}
            other => prop_assert!(false, "expected Bye or Payload error, got {other:?}"),
        }
    }
}
