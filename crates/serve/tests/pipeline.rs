//! Multi-query pipelining over one connection against the event-driven
//! session engine: window advertisement, id re-association (including a
//! shuffled-completion proptest), per-query deadline isolation, the
//! over-window reject, and pipelined-vs-sequential digest equality.
//!
//! Every server-backed test runs once per reactor backend the host
//! supports (`csqp_net::poll::test_backends`, `CSQP_REACTOR` override).

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::TcpStream;
use std::time::Instant;

use csqp_net::poll::{test_backends, Backend};
use csqp_serve::load::nth_request;
use csqp_serve::proto::{read_frame, write_frame, ErrorCode, Frame, Hello, WireError};
use csqp_serve::{run_load, IssuedQuery, LoadConfig, PipelineWindow, Server, ServerConfig};
use csqp_simkernel::rng::SimRng;
use proptest::prelude::*;

fn spawn(reactor: Backend, config: ServerConfig) -> csqp_serve::ServerHandle {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        reactor,
        ..config
    })
    .expect("bind loopback")
    .spawn()
    .expect("spawn server")
}

/// Open a session: connect, HELLO, return the stream plus the window the
/// server advertised.
fn open(addr: &str) -> (TcpStream, u32) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    write_frame(
        &mut stream,
        &Frame::Hello(Hello {
            client: "pipeline-test".to_string(),
        }),
    )
    .expect("hello");
    match next_frame(&mut stream) {
        Frame::HelloAck(ack) => (stream, ack.pipeline_depth),
        other => panic!("expected HELLO-ACK, got {other:?}"),
    }
}

/// Read the next frame off a blocking stream.
fn next_frame(stream: &mut TcpStream) -> Frame {
    loop {
        match read_frame(stream) {
            Err(WireError::TimedOut) => continue,
            Ok(Some(f)) => return f,
            other => panic!("stream died mid-test: {other:?}"),
        }
    }
}

#[test]
fn hello_ack_advertises_the_configured_window() {
    for reactor in test_backends() {
        let server = spawn(
            reactor,
            ServerConfig {
                pipeline_depth: 5,
                ..ServerConfig::default()
            },
        );
        let (_stream, depth) = open(&server.addr().to_string());
        assert_eq!(depth, 5, "{reactor}: the engine advertises its window");
        server.shutdown();

        // An absurd configured depth is clamped to the finite-machine cap
        // the model checker explores (csqp_verify::protocol::MAX_SERIALS).
        let capped = spawn(
            reactor,
            ServerConfig {
                pipeline_depth: 1_000,
                ..ServerConfig::default()
            },
        );
        let (_stream, depth) = open(&capped.addr().to_string());
        assert_eq!(
            depth, 16,
            "{reactor}: window is capped so the machine stays finite"
        );
        capped.shutdown();
    }
}

#[test]
fn a_full_window_of_queries_on_one_connection_answers_every_id() {
    for reactor in test_backends() {
        let depth = 6usize;
        let server = spawn(
            reactor,
            ServerConfig {
                pipeline_depth: depth,
                ..ServerConfig::default()
            },
        );
        let (mut stream, advertised) = open(&server.addr().to_string());
        assert_eq!(advertised as usize, depth);

        let mix = LoadConfig {
            seed: 0x9e3779b9,
            ..LoadConfig::default()
        };
        // The whole window goes out before any reply is read.
        let mut expected_ids = Vec::new();
        for index in 0..depth as u64 {
            let req = nth_request(&mix, 0, index);
            expected_ids.push(req.id);
            write_frame(&mut stream, &Frame::Query(req)).expect("write query");
        }
        let mut answered = Vec::new();
        for _ in 0..depth {
            match next_frame(&mut stream) {
                Frame::Result(record) => answered.push(record.id),
                other => panic!("{reactor}: every query in the window serves: {other:?}"),
            }
        }
        answered.sort_unstable();
        expected_ids.sort_unstable();
        assert_eq!(
            answered, expected_ids,
            "{reactor}: each reply matches an issued id"
        );

        let metrics = server.metrics();
        assert_eq!(metrics.submitted(), depth as u64);
        assert_eq!(metrics.queries_served(), depth as u64);
        assert!(metrics.conservation_holds());
        server.shutdown();
    }
}

#[test]
fn mid_pipeline_deadline_expiry_fails_only_its_own_query() {
    for reactor in test_backends() {
        let server = spawn(
            reactor,
            ServerConfig {
                pipeline_depth: 4,
                ..ServerConfig::default()
            },
        );
        let (mut stream, _) = open(&server.addr().to_string());
        let mix = LoadConfig {
            seed: 0xDEAD,
            ..LoadConfig::default()
        };
        // Three pipelined queries; the middle one is already expired.
        for index in 0..3u64 {
            let mut req = nth_request(&mix, 0, index);
            if index == 1 {
                req.deadline_ms = Some(0);
            }
            write_frame(&mut stream, &Frame::Query(req)).expect("write query");
        }
        let mut served = Vec::new();
        let mut expired = Vec::new();
        for _ in 0..3 {
            match next_frame(&mut stream) {
                Frame::Result(record) => served.push(record.id),
                Frame::Error(e) => {
                    assert_eq!(e.code, ErrorCode::DeadlineExceeded, "typed expiry: {e:?}");
                    expired.push(e.id);
                }
                other => panic!("{reactor}: unexpected reply {other:?}"),
            }
        }
        served.sort_unstable();
        assert_eq!(
            expired,
            vec![2],
            "{reactor}: only the expired query fails (id 2)"
        );
        assert_eq!(
            served,
            vec![1, 3],
            "{reactor}: its neighbors are unaffected"
        );

        let metrics = server.metrics();
        assert_eq!(metrics.timed_out(), 1);
        assert_eq!(metrics.queries_served(), 2);
        assert!(metrics.conservation_holds());
        server.shutdown();
    }
}

#[test]
fn over_window_queries_are_rejected_saturated() {
    // Window of one: two back-to-back queries in a single write arrive
    // in one read pump, so the second is over-window before the first
    // completes.
    for reactor in test_backends() {
        let server = spawn(
            reactor,
            ServerConfig {
                pipeline_depth: 1,
                ..ServerConfig::default()
            },
        );
        let (mut stream, advertised) = open(&server.addr().to_string());
        assert_eq!(advertised, 1);
        let mix = LoadConfig {
            seed: 0xA11,
            ..LoadConfig::default()
        };
        let mut bytes = Vec::new();
        for index in 0..2u64 {
            bytes.extend_from_slice(&Frame::Query(nth_request(&mix, 0, index)).encode());
        }
        use std::io::Write as _;
        stream.write_all(&bytes).expect("both frames in one write");

        let mut served = Vec::new();
        let mut rejected = Vec::new();
        for _ in 0..2 {
            match next_frame(&mut stream) {
                Frame::Result(record) => served.push(record.id),
                Frame::Error(e) => {
                    assert_eq!(e.code, ErrorCode::Saturated, "window reject: {e:?}");
                    assert!(e.retry_after_ms.is_some(), "reject carries a retry hint");
                    rejected.push(e.id);
                }
                other => panic!("{reactor}: unexpected reply {other:?}"),
            }
        }
        assert_eq!(served, vec![1], "{reactor}: the in-window query serves");
        assert_eq!(
            rejected,
            vec![2],
            "{reactor}: the over-window query is rejected"
        );

        let metrics = server.metrics();
        assert_eq!(metrics.submitted(), 2);
        assert_eq!(metrics.rejected(), 1);
        assert!(metrics.conservation_holds());
        server.shutdown();
    }
}

#[test]
fn pipelined_and_sequential_loads_produce_the_same_digest() {
    for reactor in test_backends() {
        let server = spawn(reactor, ServerConfig::default());
        let addr = server.addr().to_string();
        let base = LoadConfig {
            addr,
            clients: 3,
            queries_per_client: Some(4),
            seed: 0x5EED,
            ..LoadConfig::default()
        };
        let sequential = run_load(&base).expect("stop-and-wait run");
        let pipelined = run_load(&LoadConfig {
            pipeline: 8,
            ..base.clone()
        })
        .expect("pipelined run");
        assert_eq!(sequential.queries, 12);
        assert_eq!(pipelined.queries, 12);
        assert_eq!(pipelined.errors, 0, "{pipelined:?}");
        assert_eq!(
            sequential.digest, pipelined.digest,
            "{reactor}: same seed, same results, any reply order"
        );
        server.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RESULT frames completing in any order re-associate to the right
    /// query by id: for every issue set and every shuffle of its
    /// completion order, each completion returns exactly the query
    /// issued under that id, and the window drains empty.
    #[test]
    fn shuffled_completion_orders_reassociate_by_id(
        n in 1usize..48,
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let mut window = PipelineWindow::new(n);
        let at = Instant::now();
        // Issue n queries with ids 1..=n (the load generator's id
        // scheme: id = index + 1).
        for index in 0..n as u64 {
            let q = IssuedQuery {
                index,
                policy: csqp_core::Policy::QueryShipping,
            };
            prop_assert!(window.issued(index + 1, q, at));
        }
        prop_assert!(!window.has_room() || window.len() < n);
        // Complete in a seeded random order.
        let mut order: Vec<u64> = (1..=n as u64).collect();
        let mut rng = SimRng::seed_from_u64(shuffle_seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i + 1));
        }
        for &id in &order {
            let (q, _) = window.complete(id).expect("every issued id completes");
            prop_assert_eq!(q.index, id - 1, "id {} answers query index {}", id, id - 1);
        }
        prop_assert!(window.is_empty(), "window drains after all completions");
        prop_assert_eq!(window.complete(1), None, "double completion is refused");
    }
}
