//! Pinned-golden byte-identity tests for the session engine.
//!
//! The digests below were recorded by running the *legacy threaded*
//! engine (thread-per-connection, removed per the ROADMAP plan) on the
//! exact same seeded traffic, twice, before its deletion. The event
//! engine must keep reproducing them bit for bit: the order-independent
//! digest folds `(client, index, record)` triples, so any change to a
//! reply payload — planning, costing, simulation, fault mangling —
//! shows up here regardless of scheduling. This preserves the
//! byte-identity guarantee the live two-engine comparison used to
//! provide.
//!
//! Every test here is additionally parameterized over every reactor
//! backend the host supports (`csqp_net::poll::test_backends`, which
//! honors a `CSQP_REACTOR=poll|epoll` override): the same goldens must
//! reproduce bit for bit under `poll` and `epoll`, which is what makes
//! backend equivalence a tested invariant instead of a hope.

// Tests panic on broken setup by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use csqp_net::poll::{test_backends, Backend};
use csqp_serve::{run_chaos, run_load, ChaosConfig, LoadConfig, Server, ServerConfig};

/// Golden digests recorded from the threaded engine: seeded load runs
/// (4 clients × 4 queries), by load seed.
const LOAD_GOLDENS: [(u64, u64, [u64; 3]); 2] = [
    (7, 0x8dba_1e00_4c2d_98c6, [8, 4, 4]),
    (0xC59D, 0x2a65_35a7_c16c_9c83, [3, 8, 5]),
];

/// Golden digests recorded from the threaded engine: chaos soaks
/// (2 schedules × 8 queries, intensity 0.5) — `(seed, digest, replies,
/// dropped)`.
const CHAOS_GOLDENS: [(u64, u64, u64, u64); 2] = [
    (1, 0x1b4b_c7c6_8467_a33c, 14, 2),
    (13, 0xe731_b98f_a94b_5720, 9, 7),
];

/// Golden digest recorded from the threaded engine with reply-path
/// faults at intensity 0.6, seed 0xFEED: `(digest, replies, dropped,
/// mangled, sent)`.
const FAULT_GOLDEN: (u64, u64, u64, u64, u64) = (0xf28f_4038_7ac6_6102, 3, 7, 6, 16);

fn spawn(reactor: Backend) -> csqp_serve::ServerHandle {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        reactor,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
    .spawn()
    .expect("spawn server")
}

#[test]
fn seeded_load_digests_match_the_threaded_goldens() {
    for reactor in test_backends() {
        let server = spawn(reactor);
        for (seed, digest, per_policy) in LOAD_GOLDENS {
            let r = run_load(&LoadConfig {
                addr: server.addr().to_string(),
                clients: 4,
                queries_per_client: Some(4),
                seed,
                ..LoadConfig::default()
            })
            .expect("load run");
            assert_eq!(r.queries, 16, "engine answers everything: {r:?}");
            assert_eq!(r.errors, 0);
            assert_eq!(
                r.digest, digest,
                "seed {seed} on {reactor}: digest must stay byte-identical to \
                 the recorded threaded-engine golden (got {:#x})",
                r.digest
            );
            assert_eq!(
                r.per_policy, per_policy,
                "{reactor}: same mix, same policy split"
            );
        }
        let m = server.metrics();
        assert!(m.conservation_holds());
        assert_eq!(m.queries_served(), 32);
        server.shutdown();
    }
}

#[test]
fn chaos_soak_digests_match_the_threaded_goldens() {
    // The soak is sequential (one outstanding query), so every reply is
    // pure in (seed, schedule, index) — fault recovery included.
    for reactor in test_backends() {
        for (seed, digest, replies, dropped) in CHAOS_GOLDENS {
            let server = spawn(reactor);
            let r = run_chaos(&ChaosConfig {
                addr: server.addr().to_string(),
                seed,
                schedules: 2,
                queries_per_schedule: 8,
                intensity: 0.5,
                ..ChaosConfig::default()
            })
            .expect("chaos soak");
            assert!(r.healthy(), "engine healthy:\n{}", r.render());
            assert_eq!(
                r.digest,
                digest,
                "seed {seed} on {reactor}: chaos digest must match the \
                 recorded golden (got {:#x})\n{}",
                r.digest,
                r.render()
            );
            assert_eq!(r.replies, replies);
            assert_eq!(r.dropped, dropped);
            server.shutdown();
        }
    }
}

#[test]
fn reply_faults_mangle_identically_to_the_threaded_golden() {
    // Reply-path faults key on the request's own seed, so the mangle
    // schedule is reproducible without any session state.
    let seed = 0xFEED;
    let intensity = 0.6;
    for reactor in test_backends() {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            reply_faults: Some(csqp_net::chaos::FaultPlan::new(seed, intensity)),
            reactor,
            ..ServerConfig::default()
        })
        .expect("bind loopback")
        .spawn()
        .expect("spawn server");
        let r = run_chaos(&ChaosConfig {
            addr: server.addr().to_string(),
            seed,
            schedules: 2,
            queries_per_schedule: 8,
            intensity,
            reply_faults: true,
            ..ChaosConfig::default()
        })
        .expect("chaos soak");
        let (digest, replies, dropped, mangled, sent) = FAULT_GOLDEN;
        assert!(r.healthy(), "engine healthy:\n{}", r.render());
        assert!(r.mangled > 0, "engine mangled replies");
        assert_eq!(
            r.replies + r.dropped + r.mangled,
            r.queries_sent,
            "every exchange accounted:\n{}",
            r.render()
        );
        assert_eq!(
            r.digest,
            digest,
            "{reactor}: mangled digest must match the recorded golden \
             (got {:#x})\n{}",
            r.digest,
            r.render()
        );
        assert_eq!(
            (r.replies, r.dropped, r.mangled, r.queries_sent),
            (replies, dropped, mangled, sent)
        );
        server.shutdown();
    }
}
